#include "workload/b2w_procedures.h"

#include <gtest/gtest.h>

#include "storage/fragment.h"

namespace pstore {
namespace {

/// Fixture with one fragment acting as the owning partition of all keys.
class B2wProceduresTest : public ::testing::Test {
 protected:
  B2wProceduresTest() {
    tables_ = *RegisterB2wTables(&catalog_);
    procs_ = *RegisterB2wProcedures(&registry_, tables_);
    fragment_ = std::make_unique<StorageFragment>(&catalog_, 64);
    ctx_ = std::make_unique<ExecutionContext>(fragment_.get());
  }

  TxnResult Run(ProcedureId proc, int64_t key,
                std::vector<Value> args = {}) {
    TxnRequest req;
    req.proc = proc;
    req.key = key;
    req.args = std::move(args);
    return registry_.Get(proc).body(*ctx_, req);
  }

  Catalog catalog_;
  ProcedureRegistry registry_;
  B2wTables tables_;
  B2wProcedures procs_;
  std::unique_ptr<StorageFragment> fragment_;
  std::unique_ptr<ExecutionContext> ctx_;
};

TEST_F(B2wProceduresTest, RegistersAll19Procedures) {
  EXPECT_EQ(registry_.size(), 19u);
}

TEST_F(B2wProceduresTest, AddLineToCartCreatesCart) {
  TxnResult r = Run(procs_.add_line_to_cart, 1,
                    {Value(int64_t{500}), Value(int64_t{101}),
                     Value(int64_t{2}), Value(10.0)});
  ASSERT_TRUE(r.status.ok());
  auto cart = fragment_->Get(tables_.cart, 1);
  ASSERT_TRUE(cart.ok());
  EXPECT_EQ(cart->at(b2w_cols::kCartStatus).as_string(), "ACTIVE");
  EXPECT_DOUBLE_EQ(cart->at(b2w_cols::kCartTotal).as_double(), 20.0);
}

TEST_F(B2wProceduresTest, AddLineToCartAppendsAndUpdatesTotal) {
  ASSERT_TRUE(Run(procs_.add_line_to_cart, 1,
                  {Value(int64_t{500}), Value(int64_t{101}),
                   Value(int64_t{1}), Value(10.0)})
                  .status.ok());
  ASSERT_TRUE(Run(procs_.add_line_to_cart, 1,
                  {Value(int64_t{500}), Value(int64_t{102}),
                   Value(int64_t{3}), Value(5.0)})
                  .status.ok());
  auto cart = fragment_->Get(tables_.cart, 1);
  ASSERT_TRUE(cart.ok());
  EXPECT_DOUBLE_EQ(cart->at(b2w_cols::kCartTotal).as_double(), 25.0);
  auto lines = DecodeLines(cart->at(b2w_cols::kCartLines).as_string());
  ASSERT_TRUE(lines.ok());
  EXPECT_EQ(lines->size(), 2u);
}

TEST_F(B2wProceduresTest, AddLineToCartRejectsBadArity) {
  EXPECT_TRUE(Run(procs_.add_line_to_cart, 1, {Value(int64_t{1})})
                  .status.IsInvalidArgument());
}

TEST_F(B2wProceduresTest, DeleteLineFromCart) {
  ASSERT_TRUE(Run(procs_.add_line_to_cart, 1,
                  {Value(int64_t{500}), Value(int64_t{101}),
                   Value(int64_t{1}), Value(10.0)})
                  .status.ok());
  ASSERT_TRUE(Run(procs_.add_line_to_cart, 1,
                  {Value(int64_t{500}), Value(int64_t{102}),
                   Value(int64_t{1}), Value(4.0)})
                  .status.ok());
  ASSERT_TRUE(Run(procs_.delete_line_from_cart, 1, {Value(int64_t{101})})
                  .status.ok());
  auto cart = fragment_->Get(tables_.cart, 1);
  EXPECT_DOUBLE_EQ(cart->at(b2w_cols::kCartTotal).as_double(), 4.0);
  // Deleting an absent sku aborts.
  EXPECT_TRUE(Run(procs_.delete_line_from_cart, 1, {Value(int64_t{999})})
                  .status.IsNotFound());
}

TEST_F(B2wProceduresTest, GetCartReturnsRowOrAborts) {
  EXPECT_TRUE(Run(procs_.get_cart, 77).status.IsNotFound());
  ASSERT_TRUE(Run(procs_.add_line_to_cart, 77,
                  {Value(int64_t{1}), Value(int64_t{2}), Value(int64_t{1}),
                   Value(1.0)})
                  .status.ok());
  TxnResult r = Run(procs_.get_cart, 77);
  ASSERT_TRUE(r.status.ok());
  ASSERT_EQ(r.rows.size(), 1u);
}

TEST_F(B2wProceduresTest, DeleteCart) {
  ASSERT_TRUE(Run(procs_.add_line_to_cart, 5,
                  {Value(int64_t{1}), Value(int64_t{2}), Value(int64_t{1}),
                   Value(1.0)})
                  .status.ok());
  ASSERT_TRUE(Run(procs_.delete_cart, 5).status.ok());
  EXPECT_FALSE(fragment_->Contains(tables_.cart, 5));
  EXPECT_TRUE(Run(procs_.delete_cart, 5).status.IsNotFound());
}

TEST_F(B2wProceduresTest, ReserveCartSetsStatus) {
  ASSERT_TRUE(Run(procs_.add_line_to_cart, 9,
                  {Value(int64_t{1}), Value(int64_t{2}), Value(int64_t{1}),
                   Value(1.0)})
                  .status.ok());
  ASSERT_TRUE(Run(procs_.reserve_cart, 9).status.ok());
  EXPECT_EQ(fragment_->Get(tables_.cart, 9)
                ->at(b2w_cols::kCartStatus)
                .as_string(),
            "RESERVED");
}

TEST_F(B2wProceduresTest, StockLifecycle) {
  // Seed stock of 10 units.
  ASSERT_TRUE(fragment_
                  ->Insert(tables_.stock,
                           Row({Value(int64_t{42}), Value(int64_t{10}),
                                Value(int64_t{0}), Value(int64_t{0})}))
                  .ok());
  // GetStockQuantity returns availability.
  TxnResult q = Run(procs_.get_stock_quantity, 42);
  ASSERT_TRUE(q.status.ok());
  EXPECT_EQ(q.rows[0].at(1).as_int64(), 10);

  // Reserve 4.
  ASSERT_TRUE(Run(procs_.reserve_stock, 42, {Value(int64_t{4})}).status.ok());
  auto stock = fragment_->Get(tables_.stock, 42);
  EXPECT_EQ(stock->at(b2w_cols::kStockAvailable).as_int64(), 6);
  EXPECT_EQ(stock->at(b2w_cols::kStockReserved).as_int64(), 4);

  // Purchase 3 of the reserved.
  ASSERT_TRUE(Run(procs_.purchase_stock, 42, {Value(int64_t{3})}).status.ok());
  stock = fragment_->Get(tables_.stock, 42);
  EXPECT_EQ(stock->at(b2w_cols::kStockReserved).as_int64(), 1);
  EXPECT_EQ(stock->at(b2w_cols::kStockPurchased).as_int64(), 3);

  // Cancel the remaining reservation.
  ASSERT_TRUE(Run(procs_.cancel_stock_reservation, 42, {Value(int64_t{1})})
                  .status.ok());
  stock = fragment_->Get(tables_.stock, 42);
  EXPECT_EQ(stock->at(b2w_cols::kStockAvailable).as_int64(), 7);
  EXPECT_EQ(stock->at(b2w_cols::kStockReserved).as_int64(), 0);
}

TEST_F(B2wProceduresTest, ReserveStockInsufficientAborts) {
  ASSERT_TRUE(fragment_
                  ->Insert(tables_.stock,
                           Row({Value(int64_t{1}), Value(int64_t{2}),
                                Value(int64_t{0}), Value(int64_t{0})}))
                  .ok());
  EXPECT_TRUE(Run(procs_.reserve_stock, 1, {Value(int64_t{5})})
                  .status.IsFailedPrecondition());
  // Unchanged on abort.
  EXPECT_EQ(fragment_->Get(tables_.stock, 1)
                ->at(b2w_cols::kStockAvailable)
                .as_int64(),
            2);
}

TEST_F(B2wProceduresTest, PurchaseUnreservedAborts) {
  ASSERT_TRUE(fragment_
                  ->Insert(tables_.stock,
                           Row({Value(int64_t{1}), Value(int64_t{5}),
                                Value(int64_t{0}), Value(int64_t{0})}))
                  .ok());
  EXPECT_TRUE(Run(procs_.purchase_stock, 1, {Value(int64_t{1})})
                  .status.IsFailedPrecondition());
  EXPECT_TRUE(Run(procs_.cancel_stock_reservation, 1, {Value(int64_t{1})})
                  .status.IsFailedPrecondition());
}

TEST_F(B2wProceduresTest, StockTransactionLifecycle) {
  ASSERT_TRUE(Run(procs_.create_stock_transaction, 900,
                  {Value(int64_t{77}), Value(int64_t{42}), Value(int64_t{2})})
                  .status.ok());
  TxnResult got = Run(procs_.get_stock_transaction, 900);
  ASSERT_TRUE(got.status.ok());
  EXPECT_EQ(got.rows[0].at(b2w_cols::kStockTxStatus).as_string(), "RESERVED");

  ASSERT_TRUE(Run(procs_.update_stock_transaction, 900, {Value("PURCHASED")})
                  .status.ok());
  EXPECT_EQ(fragment_->Get(tables_.stock_transaction, 900)
                ->at(b2w_cols::kStockTxStatus)
                .as_string(),
            "PURCHASED");
  // Duplicate creation aborts.
  EXPECT_TRUE(Run(procs_.create_stock_transaction, 900,
                  {Value(int64_t{1}), Value(int64_t{1}), Value(int64_t{1})})
                  .status.IsAlreadyExists());
}

TEST_F(B2wProceduresTest, CheckoutLifecycle) {
  ASSERT_TRUE(
      Run(procs_.create_checkout, 300, {Value(int64_t{1})}).status.ok());
  ASSERT_TRUE(Run(procs_.add_line_to_checkout, 300,
                  {Value(int64_t{101}), Value(int64_t{2}), Value(7.5)})
                  .status.ok());
  ASSERT_TRUE(Run(procs_.add_line_to_checkout, 300,
                  {Value(int64_t{102}), Value(int64_t{1}), Value(5.0)})
                  .status.ok());
  auto checkout = fragment_->Get(tables_.checkout, 300);
  EXPECT_DOUBLE_EQ(checkout->at(b2w_cols::kCheckoutAmountDue).as_double(),
                   20.0);

  ASSERT_TRUE(Run(procs_.create_checkout_payment, 300, {Value("VISA-1")})
                  .status.ok());
  checkout = fragment_->Get(tables_.checkout, 300);
  EXPECT_EQ(checkout->at(b2w_cols::kCheckoutPayment).as_string(), "VISA-1");
  EXPECT_EQ(checkout->at(b2w_cols::kCheckoutStatus).as_string(), "PAYMENT");

  ASSERT_TRUE(Run(procs_.delete_line_from_checkout, 300,
                  {Value(int64_t{101})})
                  .status.ok());
  checkout = fragment_->Get(tables_.checkout, 300);
  EXPECT_DOUBLE_EQ(checkout->at(b2w_cols::kCheckoutAmountDue).as_double(),
                   5.0);

  TxnResult got = Run(procs_.get_checkout, 300);
  ASSERT_TRUE(got.status.ok());
  ASSERT_TRUE(Run(procs_.delete_checkout, 300).status.ok());
  EXPECT_TRUE(Run(procs_.get_checkout, 300).status.IsNotFound());
}

TEST_F(B2wProceduresTest, CreateCheckoutDuplicateAborts) {
  ASSERT_TRUE(
      Run(procs_.create_checkout, 1, {Value(int64_t{2})}).status.ok());
  EXPECT_TRUE(Run(procs_.create_checkout, 1, {Value(int64_t{2})})
                  .status.IsAlreadyExists());
}

TEST_F(B2wProceduresTest, OperationsOnMissingKeysAbort) {
  EXPECT_TRUE(Run(procs_.get_stock, 404).status.IsNotFound());
  EXPECT_TRUE(Run(procs_.get_checkout, 404).status.IsNotFound());
  EXPECT_TRUE(Run(procs_.get_stock_transaction, 404).status.IsNotFound());
  EXPECT_TRUE(Run(procs_.reserve_cart, 404).status.IsNotFound());
  EXPECT_TRUE(Run(procs_.add_line_to_checkout, 404,
                  {Value(int64_t{1}), Value(int64_t{1}), Value(1.0)})
                  .status.IsNotFound());
  EXPECT_TRUE(Run(procs_.create_checkout_payment, 404, {Value("X")})
                  .status.IsNotFound());
  EXPECT_TRUE(Run(procs_.update_stock_transaction, 404, {Value("X")})
                  .status.IsNotFound());
}

TEST_F(B2wProceduresTest, ReadProceduresAreLighterThanWrites) {
  EXPECT_LT(registry_.Get(procs_.get_cart).service_weight,
            registry_.Get(procs_.add_line_to_cart).service_weight);
}

}  // namespace
}  // namespace pstore
