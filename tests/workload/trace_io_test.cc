#include "workload/trace_io.h"

#include <cstdio>
#include <filesystem>

#include <gtest/gtest.h>

namespace pstore {
namespace {

TEST(TraceIoTest, ParsesSingleColumn) {
  auto series = ParseLoadCsv("1.5\n2\n3.25\n");
  ASSERT_TRUE(series.ok());
  EXPECT_EQ(*series, (std::vector<double>{1.5, 2.0, 3.25}));
}

TEST(TraceIoTest, SkipsHeader) {
  auto series = ParseLoadCsv("load\n10\n20\n");
  ASSERT_TRUE(series.ok());
  EXPECT_EQ(*series, (std::vector<double>{10.0, 20.0}));
}

TEST(TraceIoTest, SelectsColumn) {
  auto series = ParseLoadCsv("minute,load\n0,100\n1,200\n2,300\n", 1);
  ASSERT_TRUE(series.ok());
  EXPECT_EQ(*series, (std::vector<double>{100.0, 200.0, 300.0}));
}

TEST(TraceIoTest, HandlesCrlfAndBlankLines) {
  auto series = ParseLoadCsv("5\r\n\n6\r\n");
  ASSERT_TRUE(series.ok());
  EXPECT_EQ(*series, (std::vector<double>{5.0, 6.0}));
}

TEST(TraceIoTest, RejectsMalformedNumbers) {
  EXPECT_FALSE(ParseLoadCsv("1\nabc\n2\n").ok());
  EXPECT_FALSE(ParseLoadCsv("1,x\n2,oops\n", 1).ok());
}

TEST(TraceIoTest, RejectsMissingColumn) {
  EXPECT_FALSE(ParseLoadCsv("1,2\n3\n", 1).ok());
  EXPECT_FALSE(ParseLoadCsv("1\n", -1).ok());
}

TEST(TraceIoTest, RejectsEmptyInput) {
  EXPECT_FALSE(ParseLoadCsv("").ok());
  EXPECT_FALSE(ParseLoadCsv("header_only\n").ok());
}

TEST(TraceIoTest, FileRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "pstore_trace_io_test.csv")
          .string();
  const std::vector<double> series = {1.0, 2.5, 3.75, 100000.0};
  ASSERT_TRUE(WriteLoadCsv(path, series).ok());
  auto read = ReadLoadCsv(path, 1);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, series);
  std::remove(path.c_str());
}

TEST(TraceIoTest, MissingFileIsNotFound) {
  EXPECT_TRUE(ReadLoadCsv("/nonexistent/nope.csv").status().IsNotFound());
}

}  // namespace
}  // namespace pstore
