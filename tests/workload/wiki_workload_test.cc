#include "workload/wiki_workload.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "sim/simulator.h"
#include "workload/wiki_trace.h"

namespace pstore {
namespace {

class WikiWorkloadTest : public ::testing::Test {
 protected:
  WikiWorkloadTest() {
    workload_ = *RegisterWikiWorkload(&catalog_, &registry_);
  }

  EngineConfig EngineSmall() {
    EngineConfig config;
    config.num_buckets = 128;
    config.partitions_per_node = 2;
    config.max_nodes = 4;
    config.initial_nodes = 2;
    config.txn_service_us_mean = 500.0;
    config.txn_service_cv = 0.0;
    return config;
  }

  WikiClientConfig ClientSmall() {
    WikiClientConfig config;
    config.num_pages = 2000;
    config.seconds_per_slot = 5.0;
    return config;
  }

  Simulator sim_;
  Catalog catalog_;
  ProcedureRegistry registry_;
  WikiWorkload workload_;
};

TEST_F(WikiWorkloadTest, RegistersTableAndProcedures) {
  EXPECT_EQ(catalog_.num_tables(), 1u);
  EXPECT_EQ(registry_.size(), 4u);
  EXPECT_EQ(catalog_.GetSchema(workload_.page).name(), "PAGE");
}

TEST_F(WikiWorkloadTest, ProcedureSemantics) {
  StorageFragment frag(&catalog_, 128);
  ExecutionContext ctx(&frag);
  auto run = [&](ProcedureId proc, int64_t key, std::vector<Value> args) {
    TxnRequest req;
    req.proc = proc;
    req.key = key;
    req.args = std::move(args);
    return registry_.Get(proc).body(ctx, req);
  };

  // Create, read, view, edit.
  EXPECT_TRUE(run(workload_.create_page, 42,
                  {Value("Title"), Value("Body")})
                  .status.ok());
  EXPECT_TRUE(run(workload_.create_page, 42, {Value("T"), Value("B")})
                  .status.IsAlreadyExists());
  TxnResult read = run(workload_.get_page, 42, {});
  ASSERT_TRUE(read.status.ok());
  EXPECT_EQ(read.rows[0].at(wiki_cols::kPageTitle).as_string(), "Title");

  EXPECT_TRUE(run(workload_.record_view, 42, {}).status.ok());
  EXPECT_TRUE(run(workload_.record_view, 42, {}).status.ok());
  EXPECT_EQ(frag.Get(workload_.page, 42)
                ->at(wiki_cols::kPageViews)
                .as_int64(),
            2);

  EXPECT_TRUE(run(workload_.edit_page, 42, {Value("NewBody")}).status.ok());
  EXPECT_EQ(frag.Get(workload_.page, 42)
                ->at(wiki_cols::kPageContent)
                .as_string(),
            "NewBody");

  // Misses abort.
  EXPECT_TRUE(run(workload_.get_page, 404, {}).status.IsNotFound());
  EXPECT_TRUE(run(workload_.record_view, 404, {}).status.IsNotFound());
  EXPECT_TRUE(run(workload_.edit_page, 404, {Value("x")})
                  .status.IsNotFound());
}

TEST_F(WikiWorkloadTest, ClientConfigValidation) {
  WikiClientConfig c = ClientSmall();
  EXPECT_TRUE(c.Validate().ok());
  c.num_pages = 0;
  EXPECT_TRUE(c.Validate().IsInvalidArgument());
  c = ClientSmall();
  c.read_fraction = 0.9;
  c.view_fraction = 0.2;
  EXPECT_TRUE(c.Validate().IsInvalidArgument());
  c = ClientSmall();
  c.zipf_s = 0;
  EXPECT_TRUE(c.Validate().IsInvalidArgument());
}

TEST_F(WikiWorkloadTest, ReplayServesSkewedReads) {
  ClusterEngine engine(&sim_, catalog_, registry_, EngineSmall());
  auto trace = GenerateWikiTrace(WikiEnglish(2, 5));
  ASSERT_TRUE(trace.ok());
  WikiClient client(&engine, workload_, *trace, ClientSmall());
  ASSERT_TRUE(client.PreloadData().ok());
  EXPECT_EQ(engine.TotalRowCount(), 2000);

  client.Start(0, 12, /*peak_txn_rate=*/300.0);
  sim_.RunAll();
  EXPECT_GT(client.submitted(), 2000);
  const double commit_rate =
      static_cast<double>(engine.txns_committed()) /
      static_cast<double>(engine.txns_submitted());
  EXPECT_GT(commit_rate, 0.95);

  // Popularity skew: the hottest bucket should see far more traffic
  // than the median bucket (Zipf page popularity).
  auto counts = engine.bucket_access_counts();
  std::sort(counts.begin(), counts.end());
  const int64_t hottest = counts.back();
  const int64_t median = counts[counts.size() / 2];
  EXPECT_GT(hottest, 3 * std::max<int64_t>(1, median));
}

TEST_F(WikiWorkloadTest, ScaledTraceMapsPeak) {
  ClusterEngine engine(&sim_, catalog_, registry_, EngineSmall());
  std::vector<double> trace = {100.0, 400.0, 200.0};
  WikiClient client(&engine, workload_, trace, ClientSmall());
  const auto scaled = client.ScaledTrace(800.0);
  EXPECT_DOUBLE_EQ(scaled[1], 800.0);
  EXPECT_DOUBLE_EQ(scaled[0], 200.0);
}

}  // namespace
}  // namespace pstore
