#include "workload/b2w_schema.h"

#include <gtest/gtest.h>

namespace pstore {
namespace {

TEST(B2wSchemaTest, RegistersFourTables) {
  Catalog catalog;
  auto tables = RegisterB2wTables(&catalog);
  ASSERT_TRUE(tables.ok());
  EXPECT_EQ(catalog.num_tables(), 4u);
  EXPECT_EQ(catalog.GetSchema(tables->cart).name(), "CART");
  EXPECT_EQ(catalog.GetSchema(tables->checkout).name(), "CHECKOUT");
  EXPECT_EQ(catalog.GetSchema(tables->stock).name(), "STOCK");
  EXPECT_EQ(catalog.GetSchema(tables->stock_transaction).name(),
            "STOCK_TRANSACTION");
}

TEST(B2wSchemaTest, AllTablesPartitionedByFirstColumn) {
  Catalog catalog;
  auto tables = RegisterB2wTables(&catalog);
  ASSERT_TRUE(tables.ok());
  for (size_t t = 0; t < catalog.num_tables(); ++t) {
    EXPECT_EQ(catalog.GetSchema(static_cast<TableId>(t))
                  .partition_key_column(),
              0u);
    EXPECT_EQ(catalog.GetSchema(static_cast<TableId>(t)).columns()[0].type,
              ColumnType::kInt64);
  }
}

TEST(B2wSchemaTest, DoubleRegistrationFails) {
  Catalog catalog;
  ASSERT_TRUE(RegisterB2wTables(&catalog).ok());
  EXPECT_FALSE(RegisterB2wTables(&catalog).ok());
}

TEST(LineItemsTest, EncodeDecodeRoundTrip) {
  std::vector<LineItem> lines = {
      {100, 2, 19.99}, {200, 1, 5.50}, {300, 10, 0.25}};
  auto decoded = DecodeLines(EncodeLines(lines));
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->size(), 3u);
  EXPECT_EQ((*decoded)[0].sku, 100);
  EXPECT_EQ((*decoded)[0].quantity, 2);
  EXPECT_NEAR((*decoded)[0].unit_price, 19.99, 1e-9);
  EXPECT_EQ((*decoded)[2].sku, 300);
}

TEST(LineItemsTest, EmptyEncodesToEmpty) {
  EXPECT_EQ(EncodeLines({}), "");
  auto decoded = DecodeLines("");
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->empty());
}

TEST(LineItemsTest, MalformedInputRejected) {
  EXPECT_FALSE(DecodeLines("1:2:3").ok());       // unterminated
  EXPECT_FALSE(DecodeLines("1-2-3;").ok());      // wrong separators
  EXPECT_FALSE(DecodeLines("abc;").ok());
}

TEST(LineItemsTest, LinesTotal) {
  std::vector<LineItem> lines = {{1, 2, 10.0}, {2, 3, 1.5}};
  EXPECT_DOUBLE_EQ(LinesTotal(lines), 24.5);
  EXPECT_DOUBLE_EQ(LinesTotal({}), 0.0);
}

TEST(LineItemsTest, LargeSkusSurviveRoundTrip) {
  std::vector<LineItem> lines = {{int64_t{1} << 55, 1, 9.99}};
  auto decoded = DecodeLines(EncodeLines(lines));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ((*decoded)[0].sku, int64_t{1} << 55);
}

}  // namespace
}  // namespace pstore
