#include "txn/procedure.h"

#include <gtest/gtest.h>

namespace pstore {
namespace {

class ProcedureTest : public ::testing::Test {
 protected:
  ProcedureTest() {
    table_ = *catalog_.AddTable(Schema(
        "T", {{"id", ColumnType::kInt64}, {"v", ColumnType::kInt64}}, 0));
  }

  Catalog catalog_;
  TableId table_;
};

TEST_F(ProcedureTest, RegistryAssignsSequentialIds) {
  ProcedureRegistry reg;
  auto a = reg.Register(ProcedureDef{
      "A", [](ExecutionContext&, const TxnRequest&) { return TxnResult{}; },
      1.0});
  auto b = reg.Register(ProcedureDef{
      "B", [](ExecutionContext&, const TxnRequest&) { return TxnResult{}; },
      1.0});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, 0);
  EXPECT_EQ(*b, 1);
  EXPECT_EQ(reg.size(), 2u);
}

TEST_F(ProcedureTest, RegistryRejectsDuplicates) {
  ProcedureRegistry reg;
  ASSERT_TRUE(reg.Register(ProcedureDef{"A", nullptr, 1.0}).ok());
  EXPECT_TRUE(
      reg.Register(ProcedureDef{"A", nullptr, 1.0}).status().IsAlreadyExists());
}

TEST_F(ProcedureTest, IdByName) {
  ProcedureRegistry reg;
  ASSERT_TRUE(reg.Register(ProcedureDef{"X", nullptr, 1.0}).ok());
  auto id = reg.IdByName("X");
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, 0);
  EXPECT_EQ(reg.Get(*id).name, "X");
  EXPECT_TRUE(reg.IdByName("Y").status().IsNotFound());
}

TEST_F(ProcedureTest, ExecutionContextReadsAndWrites) {
  StorageFragment frag(&catalog_, 8);
  ExecutionContext ctx(&frag);
  const Row row({Value(int64_t{1}), Value(int64_t{10})});
  ASSERT_TRUE(ctx.Insert(table_, row).ok());
  EXPECT_TRUE(ctx.Contains(table_, 1));
  auto got = ctx.Get(table_, 1);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->at(1).as_int64(), 10);
  ASSERT_TRUE(ctx.Upsert(
                     table_, Row({Value(int64_t{1}), Value(int64_t{20})}))
                  .ok());
  EXPECT_EQ(ctx.Get(table_, 1)->at(1).as_int64(), 20);
  ASSERT_TRUE(ctx.Delete(table_, 1).ok());
  EXPECT_FALSE(ctx.Contains(table_, 1));
}

TEST_F(ProcedureTest, ProcedureBodyRunsAgainstContext) {
  StorageFragment frag(&catalog_, 8);
  ProcedureRegistry reg;
  TableId table = table_;
  auto id = reg.Register(ProcedureDef{
      "Incr",
      [table](ExecutionContext& ctx, const TxnRequest& req) {
        TxnResult result;
        auto row = ctx.Get(table, req.key);
        if (!row.ok()) {
          result.status = ctx.Insert(
              table, Row({Value(req.key), Value(int64_t{1})}));
          return result;
        }
        Row updated = std::move(row).MoveValueUnsafe();
        updated.Set(1, Value(updated.at(1).as_int64() + 1));
        result.status = ctx.Upsert(table, updated);
        result.rows.push_back(updated);
        return result;
      },
      1.0});
  ASSERT_TRUE(id.ok());

  ExecutionContext ctx(&frag);
  TxnRequest req;
  req.proc = *id;
  req.key = 42;
  // First call inserts, second increments.
  EXPECT_TRUE(reg.Get(*id).body(ctx, req).status.ok());
  TxnResult second = reg.Get(*id).body(ctx, req);
  EXPECT_TRUE(second.status.ok());
  ASSERT_EQ(second.rows.size(), 1u);
  EXPECT_EQ(second.rows[0].at(1).as_int64(), 2);
}

TEST_F(ProcedureTest, ServiceWeightDefaultsToOne) {
  ProcedureDef def{"W", nullptr, 1.0};
  EXPECT_DOUBLE_EQ(def.service_weight, 1.0);
}

}  // namespace
}  // namespace pstore
