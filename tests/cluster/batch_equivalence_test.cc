#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "../test_util.h"
#include "cluster/engine.h"
#include "common/rng.h"
#include "sim/simulator.h"

/// \file batch_equivalence_test.cc
/// Equivalence suite for batched transaction intake: SubmitBatch(reqs)
/// must be observably identical to calling Submit(req) per request in
/// order — same txn ids, same Rng draw sequence (service times), same
/// commit/abort trace, same completion order, same per-partition
/// counters. The batch path only amortizes allocation.

namespace pstore {
namespace {

using testing_util::KvDatabase;
using testing_util::MakeKvDatabase;
using testing_util::SmallEngineConfig;

/// One completion observation, in callback-firing order.
struct TraceEntry {
  int32_t request_index;
  bool committed;
  SimTime finished_at;

  bool operator==(const TraceEntry& other) const {
    return request_index == other.request_index &&
           committed == other.committed && finished_at == other.finished_at;
  }
};

/// Drives one engine with `reqs` (in `batch_size`-sized groups when
/// batched, per-request Submit otherwise) and returns the completion
/// trace. Requests in one group arrive at one virtual instant either
/// way; groups are spaced `gap` apart.
std::vector<TraceEntry> RunTrace(const KvDatabase& db, EngineConfig config,
                                 const std::vector<TxnRequest>& reqs,
                                 bool batched, size_t batch_size,
                                 SimDuration gap, ClusterEngine** out_engine,
                                 std::unique_ptr<ClusterEngine>* holder,
                                 Simulator* sim) {
  auto engine = std::make_unique<ClusterEngine>(sim, db.catalog, db.registry,
                                                config);
  std::vector<TraceEntry> trace;
  for (size_t start = 0; start < reqs.size(); start += batch_size) {
    const size_t end = std::min(start + batch_size, reqs.size());
    if (batched) {
      std::vector<TxnRequest> group(reqs.begin() + start, reqs.begin() + end);
      engine->SubmitBatch(
          std::move(group),
          [&trace, start, sim](size_t i, const TxnResult& r) {
            trace.push_back({static_cast<int32_t>(start + i), r.status.ok(),
                             sim->Now()});
          });
    } else {
      for (size_t i = start; i < end; ++i) {
        const int32_t index = static_cast<int32_t>(i);
        engine->Submit(reqs[i], [&trace, index, sim](const TxnResult& r) {
          trace.push_back({index, r.status.ok(), sim->Now()});
        });
      }
    }
    sim->RunUntil(sim->Now() + gap);
  }
  sim->RunAll();
  *out_engine = engine.get();
  *holder = std::move(engine);
  return trace;
}

/// Mixed Put/Get workload over a skewed key space: Gets on unloaded
/// keys abort, so the trace exercises both outcomes.
std::vector<TxnRequest> MakeWorkload(const KvDatabase& db, int32_t count,
                                     uint64_t seed) {
  Rng rng(seed);
  std::vector<TxnRequest> reqs;
  for (int32_t i = 0; i < count; ++i) {
    TxnRequest req;
    if (rng.NextBounded(3) == 0) {
      req.proc = db.get;
      req.key = static_cast<int64_t>(rng.NextBounded(400));
    } else {
      req.proc = db.put;
      req.key = static_cast<int64_t>(rng.NextBounded(200));
      req.args = {Value(static_cast<int64_t>(i))};
    }
    reqs.push_back(std::move(req));
  }
  return reqs;
}

class BatchEquivalenceTest : public ::testing::Test {
 protected:
  BatchEquivalenceTest() : db_(MakeKvDatabase()) {}
  KvDatabase db_;
};

TEST_F(BatchEquivalenceTest, BatchedTraceIdenticalToLoopedSubmit) {
  for (const uint64_t seed : {11ULL, 12ULL, 13ULL}) {
    EngineConfig config = SmallEngineConfig();
    config.txn_service_cv = 0.25;  // exercise the Rng draw sequence
    config.seed = seed;
    const std::vector<TxnRequest> reqs = MakeWorkload(db_, 300, seed);

    Simulator sim_a, sim_b;
    ClusterEngine* looped_engine = nullptr;
    ClusterEngine* batched_engine = nullptr;
    std::unique_ptr<ClusterEngine> hold_a, hold_b;
    const std::vector<TraceEntry> looped =
        RunTrace(db_, config, reqs, /*batched=*/false, 32, 10 * kMillisecond,
                 &looped_engine, &hold_a, &sim_a);
    const std::vector<TraceEntry> batched =
        RunTrace(db_, config, reqs, /*batched=*/true, 32, 10 * kMillisecond,
                 &batched_engine, &hold_b, &sim_b);

    ASSERT_EQ(looped.size(), reqs.size());
    ASSERT_EQ(batched.size(), looped.size());
    for (size_t i = 0; i < looped.size(); ++i) {
      EXPECT_EQ(batched[i], looped[i])
          << "seed " << seed << " completion " << i << ": req "
          << batched[i].request_index << " vs " << looped[i].request_index;
    }
    EXPECT_EQ(batched_engine->txns_committed(),
              looped_engine->txns_committed());
    EXPECT_EQ(batched_engine->txns_aborted(), looped_engine->txns_aborted());
    EXPECT_EQ(batched_engine->txns_submitted(),
              looped_engine->txns_submitted());
    EXPECT_EQ(batched_engine->partition_access_counts(),
              looped_engine->partition_access_counts());
    EXPECT_EQ(batched_engine->bucket_access_counts(),
              looped_engine->bucket_access_counts());
  }
}

TEST_F(BatchEquivalenceTest, BatchSizeDoesNotChangeTheTrace) {
  // Same requests, same arrival instants, different batch granularity:
  // one big SubmitBatch vs many small ones must agree because arrival
  // time — not grouping — is the only semantic input.
  EngineConfig config = SmallEngineConfig();
  config.txn_service_cv = 0.25;
  const std::vector<TxnRequest> reqs = MakeWorkload(db_, 128, 7);

  Simulator sim_a, sim_b;
  ClusterEngine* coarse_engine = nullptr;
  ClusterEngine* fine_engine = nullptr;
  std::unique_ptr<ClusterEngine> hold_a, hold_b;
  const std::vector<TraceEntry> coarse =
      RunTrace(db_, config, reqs, /*batched=*/true, 128, 0, &coarse_engine,
               &hold_a, &sim_a);
  // gap = 0: RunUntil(Now()) is a no-op, so all fine batches still
  // arrive at t = 0 exactly like the single coarse batch.
  const std::vector<TraceEntry> fine =
      RunTrace(db_, config, reqs, /*batched=*/true, 16, 0, &fine_engine,
               &hold_b, &sim_b);
  ASSERT_EQ(coarse.size(), fine.size());
  for (size_t i = 0; i < coarse.size(); ++i) {
    EXPECT_EQ(coarse[i], fine[i]) << "completion " << i;
  }
}

TEST_F(BatchEquivalenceTest, BatchWorksWithOverloadControlOn) {
  // With bounded queues the shed/admit decisions depend on queue depth
  // at arrival — identical either way since arrivals coincide.
  EngineConfig config = SmallEngineConfig();
  config.txn_service_cv = 0.25;
  config.overload.enabled = true;
  const std::vector<TxnRequest> reqs = MakeWorkload(db_, 300, 99);

  Simulator sim_a, sim_b;
  ClusterEngine* looped_engine = nullptr;
  ClusterEngine* batched_engine = nullptr;
  std::unique_ptr<ClusterEngine> hold_a, hold_b;
  const std::vector<TraceEntry> looped =
      RunTrace(db_, config, reqs, /*batched=*/false, 64, 5 * kMillisecond,
               &looped_engine, &hold_a, &sim_a);
  const std::vector<TraceEntry> batched =
      RunTrace(db_, config, reqs, /*batched=*/true, 64, 5 * kMillisecond,
               &batched_engine, &hold_b, &sim_b);
  ASSERT_EQ(batched.size(), looped.size());
  for (size_t i = 0; i < batched.size(); ++i) {
    EXPECT_EQ(batched[i], looped[i]) << "completion " << i;
  }
  EXPECT_EQ(batched_engine->txns_shed(), looped_engine->txns_shed());
  EXPECT_EQ(batched_engine->txns_committed(),
            looped_engine->txns_committed());
}

TEST_F(BatchEquivalenceTest, EmptyBatchIsANoop) {
  Simulator sim;
  auto engine = std::make_unique<ClusterEngine>(&sim, db_.catalog,
                                                db_.registry,
                                                SmallEngineConfig());
  engine->SubmitBatch({});
  sim.RunAll();
  EXPECT_EQ(engine->txns_submitted(), 0);
  EXPECT_EQ(engine->txns_in_flight(), 0);
}

}  // namespace
}  // namespace pstore
