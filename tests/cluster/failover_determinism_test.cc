#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "../test_util.h"
#include "common/murmur.h"

/// Failover determinism regression test. Promotion failover iterates
/// dead partitions and their buckets in ascending order and promotes the
/// lowest-id healthy replica; any change to that iteration order (e.g.
/// an unordered container sneaking into the loop) changes which
/// partitions inherit which buckets. This suite fingerprints the full
/// post-failover placement — primary owners, replica lists, and row
/// distribution — across 50 seeds and requires same-seed runs to match
/// bit for bit, legacy and k-safety mode both.

namespace pstore {
namespace {

using testing_util::MakeKvDatabase;
using testing_util::SmallEngineConfig;

/// Order-sensitive digest of placement + accounting after a crash.
uint64_t FailoverFingerprint(const ClusterEngine& engine) {
  uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](int64_t v) { h = MurmurHash64A(v, h); };
  const PartitionMap& map = engine.partition_map();
  for (BucketId b = 0; b < map.num_buckets(); ++b) {
    mix(map.PartitionOfBucket(b));
    if (engine.replication() != nullptr) {
      const auto& reps = engine.replication()->replicas(b);
      mix(static_cast<int64_t>(reps.size()));
      for (PartitionId q : reps) mix(q);
    }
  }
  for (PartitionId p = 0; p < engine.total_partitions(); ++p) {
    mix(engine.fragment(p)->TotalRowCount());
    if (engine.replication() != nullptr) {
      mix(engine.replication()->backup_fragment(p)->TotalRowCount());
    }
  }
  mix(map.version());
  mix(engine.failover_moves());
  mix(engine.rows_lost());
  if (engine.replication() != nullptr) {
    mix(engine.replication()->promotions());
    mix(engine.replication()->degraded_buckets());
  }
  return h;
}

/// Loads a seed-dependent row population, crashes the highest node, and
/// digests the result. `replicated` toggles k-safety vs legacy failover;
/// `settle` additionally runs re-replication to completion first.
uint64_t RunFailover(uint64_t seed, bool replicated, bool settle) {
  auto db = MakeKvDatabase();
  Simulator sim;
  EngineConfig config = SmallEngineConfig();
  config.initial_nodes = 3;
  if (replicated) {
    config.replication.enabled = true;
    config.replication.k = 1;
    config.replication.db_size_mb = 10.0;
    config.replication.rebuild_chunk_kb = 100.0;
    config.replication.rebuild_rate_kbps = 10000.0;
    config.replication.wire_kbps = 100000.0;
  }
  ClusterEngine engine(&sim, db.catalog, db.registry, config);
  Rng rng(seed);
  const int64_t rows = 100 + static_cast<int64_t>(rng.NextBounded(200));
  for (int64_t i = 0; i < rows; ++i) {
    const auto key = static_cast<int64_t>(rng.NextBounded(1 << 20));
    // Duplicate keys collide; ignore, the population just shrinks.
    (void)engine.LoadRow(db.table, Row({Value(key), Value(i)}));
  }
  EXPECT_TRUE(engine.CrashNode(2).ok());
  if (settle) sim.RunUntil(60 * kSecond);
  return FailoverFingerprint(engine);
}

// The 50-seed sweeps are sharded 5 seeds per ctest unit so `ctest -j`
// runs shards concurrently (and a failure names a 5-seed range, not a
// 50-seed monolith). The shard parameter is the first seed.
constexpr uint64_t kSeedsPerShard = 5;

class FailoverSeedShard : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FailoverSeedShard, ReplaysIdenticallyWithReplication) {
  const uint64_t first = GetParam();
  for (uint64_t seed = first; seed < first + kSeedsPerShard; ++seed) {
    const uint64_t a = RunFailover(seed, /*replicated=*/true, false);
    const uint64_t b = RunFailover(seed, /*replicated=*/true, false);
    EXPECT_EQ(a, b) << "promotion failover diverged for seed " << seed;
  }
}

TEST_P(FailoverSeedShard, ReplaysIdenticallyLegacy) {
  const uint64_t first = GetParam();
  for (uint64_t seed = first; seed < first + kSeedsPerShard; ++seed) {
    const uint64_t a = RunFailover(seed, /*replicated=*/false, false);
    const uint64_t b = RunFailover(seed, /*replicated=*/false, false);
    EXPECT_EQ(a, b) << "legacy failover diverged for seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(FiftySeeds, FailoverSeedShard,
                         ::testing::Range(uint64_t{1}, uint64_t{51},
                                          kSeedsPerShard));

TEST(FailoverDeterminismTest, RebuildSettlingIsDeterministicToo) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    const uint64_t a = RunFailover(seed, /*replicated=*/true, true);
    const uint64_t b = RunFailover(seed, /*replicated=*/true, true);
    EXPECT_EQ(a, b) << "re-replication diverged for seed " << seed;
  }
}

TEST(FailoverDeterminismTest, DifferentSeedsDiverge) {
  EXPECT_NE(RunFailover(7, true, false), RunFailover(8, true, false));
}

}  // namespace
}  // namespace pstore
