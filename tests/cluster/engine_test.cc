#include "cluster/engine.h"

#include <gtest/gtest.h>

#include "../test_util.h"

namespace pstore {
namespace {

using testing_util::MakeKvDatabase;
using testing_util::SmallEngineConfig;

class EngineTest : public ::testing::Test {
 protected:
  EngineTest() : db_(MakeKvDatabase()) {}

  std::unique_ptr<ClusterEngine> MakeEngine(EngineConfig config) {
    return std::make_unique<ClusterEngine>(&sim_, db_.catalog, db_.registry,
                                           config);
  }

  Simulator sim_;
  testing_util::KvDatabase db_;
};

TEST_F(EngineTest, ConfigValidation) {
  EngineConfig c = SmallEngineConfig();
  EXPECT_TRUE(c.Validate().ok());
  c.initial_nodes = 100;
  EXPECT_TRUE(c.Validate().IsInvalidArgument());
  c = SmallEngineConfig();
  c.num_buckets = 1;  // fewer than partitions at max scale
  EXPECT_TRUE(c.Validate().IsInvalidArgument());
  c = SmallEngineConfig();
  c.txn_service_us_mean = 0;
  EXPECT_TRUE(c.Validate().IsInvalidArgument());
}

TEST_F(EngineTest, TopologyAccessors) {
  auto engine = MakeEngine(SmallEngineConfig());
  EXPECT_EQ(engine->active_nodes(), 2);
  EXPECT_EQ(engine->total_partitions(), 16);
  EXPECT_EQ(engine->active_partitions(), 4);
  EXPECT_EQ(engine->NodeOfPartition(0), 0);
  EXPECT_EQ(engine->NodeOfPartition(3), 1);
}

TEST_F(EngineTest, LoadRowRoutesByKey) {
  auto engine = MakeEngine(SmallEngineConfig());
  for (int64_t k = 0; k < 100; ++k) {
    ASSERT_TRUE(
        engine->LoadRow(db_.table, Row({Value(k), Value(k * 10)})).ok());
  }
  EXPECT_EQ(engine->TotalRowCount(), 100);
  // Every row lives on the partition the map says owns its key.
  for (int64_t k = 0; k < 100; ++k) {
    const PartitionId p = engine->partition_map().PartitionOfKey(k);
    EXPECT_TRUE(engine->fragment(p)->Contains(db_.table, k));
  }
}

TEST_F(EngineTest, SubmitExecutesProcedure) {
  auto engine = MakeEngine(SmallEngineConfig());
  TxnResult result;
  bool done = false;
  TxnRequest put;
  put.proc = db_.put;
  put.key = 42;
  put.args = {Value(int64_t{7})};
  engine->Submit(put, [&](const TxnResult& r) {
    result = r;
    done = true;
  });
  sim_.RunAll();
  ASSERT_TRUE(done);
  EXPECT_TRUE(result.status.ok());
  EXPECT_EQ(engine->txns_committed(), 1);

  TxnRequest get;
  get.proc = db_.get;
  get.key = 42;
  engine->Submit(get, [&](const TxnResult& r) { result = r; });
  sim_.RunAll();
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0].at(1).as_int64(), 7);
}

TEST_F(EngineTest, AbortedTxnCountsSeparately) {
  auto engine = MakeEngine(SmallEngineConfig());
  TxnRequest get;
  get.proc = db_.get;
  get.key = 12345;  // missing
  engine->Submit(get);
  sim_.RunAll();
  EXPECT_EQ(engine->txns_committed(), 0);
  EXPECT_EQ(engine->txns_aborted(), 1);
  EXPECT_EQ(engine->txns_submitted(), 1);
}

TEST_F(EngineTest, LatencyIncludesQueueing) {
  EngineConfig config = SmallEngineConfig();
  config.txn_service_us_mean = 1000;
  auto engine = MakeEngine(config);
  // Two txns on the same key: the second queues behind the first.
  TxnRequest put;
  put.proc = db_.put;
  put.key = 1;
  put.args = {Value(int64_t{1})};
  engine->Submit(put);
  engine->Submit(put);
  sim_.RunAll();
  const Histogram& h = engine->latency_histogram();
  EXPECT_EQ(h.count(), 2);
  EXPECT_NEAR(static_cast<double>(h.max()), 2000.0, 100.0);
}

TEST_F(EngineTest, ActivateDeactivateNodes) {
  auto engine = MakeEngine(SmallEngineConfig());
  EXPECT_TRUE(engine->ActivateNodes(4).ok());
  EXPECT_EQ(engine->active_nodes(), 4);
  EXPECT_TRUE(engine->ActivateNodes(3).ok());  // no-op shrink
  EXPECT_EQ(engine->active_nodes(), 4);
  EXPECT_TRUE(engine->ActivateNodes(100).IsInvalidArgument());
  // New nodes are empty, so deactivation succeeds.
  EXPECT_TRUE(engine->DeactivateNodes(2).ok());
  EXPECT_EQ(engine->active_nodes(), 2);
  EXPECT_TRUE(engine->DeactivateNodes(0).IsInvalidArgument());
}

TEST_F(EngineTest, DeactivateRefusesNonEmptyNodes) {
  auto engine = MakeEngine(SmallEngineConfig());
  // Put data on node 1's partitions (initial nodes own all buckets).
  for (int64_t k = 0; k < 50; ++k) {
    ASSERT_TRUE(engine->LoadRow(db_.table, Row({Value(k), Value(k)})).ok());
  }
  EXPECT_TRUE(engine->DeactivateNodes(1).IsFailedPrecondition());
}

TEST_F(EngineTest, ApplyBucketMoveMovesRowsAndRemaps) {
  auto engine = MakeEngine(SmallEngineConfig());
  for (int64_t k = 0; k < 200; ++k) {
    ASSERT_TRUE(engine->LoadRow(db_.table, Row({Value(k), Value(k)})).ok());
  }
  ASSERT_TRUE(engine->ActivateNodes(3).ok());
  const BucketId bucket = 0;
  const PartitionId from = engine->partition_map().PartitionOfBucket(bucket);
  const PartitionId to = 4;  // node 2's first partition
  const int64_t rows_before = engine->TotalRowCount();
  ASSERT_TRUE(engine->ApplyBucketMove(BucketMove{bucket, from, to}).ok());
  EXPECT_EQ(engine->TotalRowCount(), rows_before);
  EXPECT_EQ(engine->partition_map().PartitionOfBucket(bucket), to);
  // Wrong owner is rejected.
  EXPECT_TRUE(engine->ApplyBucketMove(BucketMove{bucket, from, to})
                  .IsFailedPrecondition());
}

TEST_F(EngineTest, TxnForwardsAfterBucketMove) {
  EngineConfig config = SmallEngineConfig();
  config.txn_service_us_mean = 1000;
  auto engine = MakeEngine(config);
  const int64_t key = 7;
  ASSERT_TRUE(
      engine->LoadRow(db_.table, Row({Value(key), Value(int64_t{9})})).ok());
  ASSERT_TRUE(engine->ActivateNodes(3).ok());

  const BucketId bucket =
      KeyToBucket(key, engine->config().num_buckets);
  const PartitionId old_owner =
      engine->partition_map().PartitionOfBucket(bucket);

  // Queue a read behind a long work item, then move the bucket while
  // the read waits. The read must forward to the new owner and succeed.
  engine->executor(old_owner)->Enqueue(5000, nullptr);
  TxnResult result;
  TxnRequest get;
  get.proc = db_.get;
  get.key = key;
  engine->Submit(get, [&](const TxnResult& r) { result = r; });
  sim_.Schedule(1000, [&]() {
    ASSERT_TRUE(
        engine->ApplyBucketMove(BucketMove{bucket, old_owner, 4}).ok());
  });
  sim_.RunAll();
  EXPECT_TRUE(result.status.ok());
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0].at(1).as_int64(), 9);
}

TEST_F(EngineTest, ThroughputWindowsCountCompletions) {
  EngineConfig config = SmallEngineConfig();
  config.throughput_window = kSecond;
  auto engine = MakeEngine(config);
  TxnRequest put;
  put.proc = db_.put;
  put.key = 1;
  put.args = {Value(int64_t{1})};
  engine->Submit(put);
  sim_.RunUntil(2 * kSecond);
  engine->Submit(put);
  sim_.RunAll();
  const auto& windows = engine->throughput_windows();
  ASSERT_GE(windows.size(), 3u);
  EXPECT_EQ(windows[0], 1);
  EXPECT_EQ(windows[2], 1);
}

TEST_F(EngineTest, AllocationTimelineAndAverage) {
  auto engine = MakeEngine(SmallEngineConfig());
  sim_.RunUntil(100 * kSecond);
  ASSERT_TRUE(engine->ActivateNodes(4).ok());
  sim_.RunUntil(200 * kSecond);
  // 2 nodes for 100 s, 4 nodes for 100 s -> average 3.
  EXPECT_NEAR(engine->AverageNodesAllocated(), 3.0, 1e-9);
  ASSERT_EQ(engine->allocation_timeline().size(), 2u);
}

TEST_F(EngineTest, ServiceTimeJitterIsLognormalAroundMean) {
  EngineConfig config = SmallEngineConfig();
  config.txn_service_cv = 0.3;
  auto engine = MakeEngine(config);
  TxnRequest put;
  put.proc = db_.put;
  put.args = {Value(int64_t{1})};
  // Submit spaced-out txns (no queueing) on distinct keys.
  for (int i = 0; i < 2000; ++i) {
    put.key = i * 1000 + 17;
    sim_.Schedule(i * 10 * kMillisecond,
                  [&engine, put]() { engine->Submit(put); });
  }
  sim_.RunAll();
  const Histogram& h = engine->latency_histogram();
  EXPECT_EQ(h.count(), 2000);
  EXPECT_NEAR(h.Mean(), 1000.0, 60.0);
  EXPECT_GT(h.max(), 1200);
}

TEST_F(EngineTest, PartitionAccessCountsTrackExecutions) {
  auto engine = MakeEngine(SmallEngineConfig());
  TxnRequest put;
  put.proc = db_.put;
  put.args = {Value(int64_t{1})};
  for (int64_t k = 0; k < 400; ++k) {
    put.key = k;
    engine->Submit(put);
  }
  sim_.RunAll();
  const auto& counts = engine->partition_access_counts();
  int64_t total = 0;
  for (int32_t p = 0; p < engine->active_partitions(); ++p) {
    total += counts[static_cast<size_t>(p)];
    EXPECT_GT(counts[static_cast<size_t>(p)], 0);
  }
  EXPECT_EQ(total, 400);
}

}  // namespace
}  // namespace pstore
