#include "cluster/partition_executor.h"

#include <vector>

#include <gtest/gtest.h>

#include "sim/simulator.h"

namespace pstore {
namespace {

TEST(PartitionExecutorTest, SingleItemRunsForServiceTime) {
  Simulator sim;
  PartitionExecutor exec(&sim);
  SimTime started = -1, finished = -1;
  exec.Enqueue(100, [&](SimTime s, SimTime f) {
    started = s;
    finished = f;
  });
  sim.RunAll();
  EXPECT_EQ(started, 0);
  EXPECT_EQ(finished, 100);
  EXPECT_EQ(exec.completed(), 1);
  EXPECT_EQ(exec.busy_time(), 100);
  EXPECT_FALSE(exec.busy());
}

TEST(PartitionExecutorTest, FifoOrderAndQueueing) {
  Simulator sim;
  PartitionExecutor exec(&sim);
  std::vector<int> order;
  std::vector<SimTime> finish;
  for (int i = 0; i < 3; ++i) {
    exec.Enqueue(10, [&, i](SimTime, SimTime f) {
      order.push_back(i);
      finish.push_back(f);
    });
  }
  EXPECT_EQ(exec.queue_length(), 2u);  // one in service, two waiting
  sim.RunAll();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(finish, (std::vector<SimTime>{10, 20, 30}));
}

TEST(PartitionExecutorTest, QueueingDelayAccumulates) {
  Simulator sim;
  PartitionExecutor exec(&sim);
  // Saturate: 10 items of 100 each arriving at t=0.
  SimTime last_finish = 0;
  for (int i = 0; i < 10; ++i) {
    exec.Enqueue(100, [&](SimTime, SimTime f) { last_finish = f; });
  }
  sim.RunAll();
  EXPECT_EQ(last_finish, 1000);
  EXPECT_EQ(exec.busy_time(), 1000);
}

TEST(PartitionExecutorTest, IdleThenNewWork) {
  Simulator sim;
  PartitionExecutor exec(&sim);
  exec.Enqueue(10, nullptr);
  sim.RunAll();
  EXPECT_EQ(sim.Now(), 10);
  SimTime f2 = -1;
  exec.Enqueue(5, [&](SimTime, SimTime f) { f2 = f; });
  sim.RunAll();
  EXPECT_EQ(f2, 15);
  EXPECT_EQ(exec.completed(), 2);
}

TEST(PartitionExecutorTest, WorkEnqueuedFromCompletion) {
  Simulator sim;
  PartitionExecutor exec(&sim);
  int chain = 0;
  std::function<void(SimTime, SimTime)> next = [&](SimTime, SimTime) {
    if (++chain < 3) exec.Enqueue(7, next);
  };
  exec.Enqueue(7, next);
  sim.RunAll();
  EXPECT_EQ(chain, 3);
  EXPECT_EQ(sim.Now(), 21);
}

TEST(PartitionExecutorTest, ZeroServiceTimeCompletesImmediately) {
  Simulator sim;
  PartitionExecutor exec(&sim);
  SimTime f = -1;
  exec.Enqueue(0, [&](SimTime, SimTime fin) { f = fin; });
  sim.RunAll();
  EXPECT_EQ(f, 0);
}

}  // namespace
}  // namespace pstore
