#include "cluster/partition_executor.h"

#include <vector>

#include <gtest/gtest.h>

#include "sim/simulator.h"

namespace pstore {
namespace {

TEST(PartitionExecutorTest, SingleItemRunsForServiceTime) {
  Simulator sim;
  PartitionExecutor exec(&sim);
  SimTime started = -1, finished = -1;
  exec.Enqueue(100, [&](SimTime s, SimTime f) {
    started = s;
    finished = f;
  });
  sim.RunAll();
  EXPECT_EQ(started, 0);
  EXPECT_EQ(finished, 100);
  EXPECT_EQ(exec.completed(), 1);
  EXPECT_EQ(exec.busy_time(), 100);
  EXPECT_FALSE(exec.busy());
}

TEST(PartitionExecutorTest, FifoOrderAndQueueing) {
  Simulator sim;
  PartitionExecutor exec(&sim);
  std::vector<int> order;
  std::vector<SimTime> finish;
  for (int i = 0; i < 3; ++i) {
    exec.Enqueue(10, [&, i](SimTime, SimTime f) {
      order.push_back(i);
      finish.push_back(f);
    });
  }
  EXPECT_EQ(exec.queue_length(), 2u);  // one in service, two waiting
  sim.RunAll();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(finish, (std::vector<SimTime>{10, 20, 30}));
}

TEST(PartitionExecutorTest, QueueingDelayAccumulates) {
  Simulator sim;
  PartitionExecutor exec(&sim);
  // Saturate: 10 items of 100 each arriving at t=0.
  SimTime last_finish = 0;
  for (int i = 0; i < 10; ++i) {
    exec.Enqueue(100, [&](SimTime, SimTime f) { last_finish = f; });
  }
  sim.RunAll();
  EXPECT_EQ(last_finish, 1000);
  EXPECT_EQ(exec.busy_time(), 1000);
}

TEST(PartitionExecutorTest, IdleThenNewWork) {
  Simulator sim;
  PartitionExecutor exec(&sim);
  exec.Enqueue(10, nullptr);
  sim.RunAll();
  EXPECT_EQ(sim.Now(), 10);
  SimTime f2 = -1;
  exec.Enqueue(5, [&](SimTime, SimTime f) { f2 = f; });
  sim.RunAll();
  EXPECT_EQ(f2, 15);
  EXPECT_EQ(exec.completed(), 2);
}

TEST(PartitionExecutorTest, WorkEnqueuedFromCompletion) {
  Simulator sim;
  PartitionExecutor exec(&sim);
  int chain = 0;
  std::function<void(SimTime, SimTime)> next = [&](SimTime, SimTime) {
    if (++chain < 3) exec.Enqueue(7, next);
  };
  exec.Enqueue(7, next);
  sim.RunAll();
  EXPECT_EQ(chain, 3);
  EXPECT_EQ(sim.Now(), 21);
}

TEST(PartitionExecutorTest, ZeroServiceTimeCompletesImmediately) {
  Simulator sim;
  PartitionExecutor exec(&sim);
  SimTime f = -1;
  exec.Enqueue(0, [&](SimTime, SimTime fin) { f = fin; });
  sim.RunAll();
  EXPECT_EQ(f, 0);
}

PartitionExecutor::WorkItem Item(SimDuration service, SimTime deadline = -1,
                                 int8_t priority = 2,
                                 PartitionExecutor::ShedFn on_shed = nullptr) {
  PartitionExecutor::WorkItem item;
  item.service = service;
  item.deadline = deadline;
  item.priority = priority;
  item.on_shed = std::move(on_shed);
  return item;
}

TEST(PartitionExecutorTest, TryEnqueueRespectsLimit) {
  Simulator sim;
  PartitionExecutor exec(&sim);
  exec.set_queue_limit(2);
  exec.Enqueue(100, nullptr);  // in service; waiting queue empty
  EXPECT_TRUE(exec.TryEnqueue(Item(10)));
  EXPECT_TRUE(exec.TryEnqueue(Item(10)));
  EXPECT_TRUE(exec.AtLimit());
  EXPECT_FALSE(exec.TryEnqueue(Item(10)));
  sim.RunAll();
  EXPECT_EQ(exec.completed(), 3);
  EXPECT_EQ(exec.shed(), 0);
}

TEST(PartitionExecutorTest, LegacyEnqueueBypassesLimit) {
  Simulator sim;
  PartitionExecutor exec(&sim);
  exec.set_queue_limit(1);
  for (int i = 0; i < 5; ++i) exec.Enqueue(10, nullptr);
  sim.RunAll();
  EXPECT_EQ(exec.completed(), 5);
  EXPECT_EQ(exec.shed(), 0);
}

TEST(PartitionExecutorTest, DeadlineExpiryShedsAtDequeue) {
  Simulator sim;
  PartitionExecutor exec(&sim);
  exec.Enqueue(100, nullptr);  // serves until t=100
  SimTime shed_at = -1;
  PartitionExecutor::ShedCause cause = PartitionExecutor::ShedCause::kEvicted;
  ASSERT_TRUE(exec.TryEnqueue(
      Item(10, /*deadline=*/50, 2, [&](SimTime at,
                                       PartitionExecutor::ShedCause c) {
        shed_at = at;
        cause = c;
      })));
  sim.RunAll();
  EXPECT_EQ(exec.completed(), 1);
  EXPECT_EQ(exec.deadline_shed(), 1);
  EXPECT_EQ(exec.shed(), 1);
  EXPECT_EQ(shed_at, 100);  // shed when it would have started
  EXPECT_EQ(cause, PartitionExecutor::ShedCause::kDeadline);
}

TEST(PartitionExecutorTest, DeadlineStillAheadRuns) {
  Simulator sim;
  PartitionExecutor exec(&sim);
  exec.Enqueue(100, nullptr);
  SimTime finished = -1;
  auto item = Item(10, /*deadline=*/100);
  item.done = [&](SimTime, SimTime f) { finished = f; };
  ASSERT_TRUE(exec.TryEnqueue(std::move(item)));
  sim.RunAll();
  // Starts exactly at its deadline: not late, so it runs.
  EXPECT_EQ(finished, 110);
  EXPECT_EQ(exec.deadline_shed(), 0);
}

TEST(PartitionExecutorTest, EvictNewestDropsTail) {
  Simulator sim;
  PartitionExecutor exec(&sim);
  exec.Enqueue(100, nullptr);
  int shed_id = -1;
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(exec.TryEnqueue(
        Item(10, -1, 2,
             [&, i](SimTime, PartitionExecutor::ShedCause) { shed_id = i; })));
  }
  EXPECT_TRUE(exec.EvictNewest());
  EXPECT_EQ(shed_id, 1);  // newest goes first
  EXPECT_EQ(exec.evicted(), 1);
  EXPECT_EQ(exec.queue_length(), 1u);
  sim.RunAll();
  EXPECT_EQ(exec.completed(), 2);
}

TEST(PartitionExecutorTest, EvictLowestBelowPicksLowestThenNewest) {
  Simulator sim;
  PartitionExecutor exec(&sim);
  exec.Enqueue(100, nullptr);
  std::vector<int> shed_order;
  auto track = [&](int id) {
    return [&shed_order, id](SimTime, PartitionExecutor::ShedCause) {
      shed_order.push_back(id);
    };
  };
  ASSERT_TRUE(exec.TryEnqueue(Item(10, -1, 1, track(0))));  // low
  ASSERT_TRUE(exec.TryEnqueue(Item(10, -1, 0, track(1))));  // background
  ASSERT_TRUE(exec.TryEnqueue(Item(10, -1, 0, track(2))));  // background
  // Lowest priority below 2 is 0; newest among the tie is item 2.
  EXPECT_TRUE(exec.EvictLowestBelow(2));
  EXPECT_TRUE(exec.EvictLowestBelow(1));
  EXPECT_EQ(shed_order, (std::vector<int>{2, 1}));
  // Only the priority-1 item remains, which is not strictly below 1.
  EXPECT_FALSE(exec.EvictLowestBelow(1));
  EXPECT_EQ(exec.evicted(), 2);
}

TEST(PartitionExecutorTest, MaxQueueDepthIsHighWater) {
  Simulator sim;
  PartitionExecutor exec(&sim);
  exec.Enqueue(10, nullptr);
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(exec.TryEnqueue(Item(10)));
  EXPECT_EQ(exec.max_queue_depth(), 3u);
  sim.RunAll();
  EXPECT_EQ(exec.queue_length(), 0u);
  EXPECT_EQ(exec.max_queue_depth(), 3u);  // high-water survives the drain
}

}  // namespace
}  // namespace pstore
