#include "prediction/predictor.h"

#include <cmath>

#include <gtest/gtest.h>

#include "prediction/spar.h"

namespace pstore {
namespace {

TEST(OraclePredictorTest, ReturnsActualFuture) {
  OraclePredictor oracle;
  std::vector<double> series = {1, 2, 3, 4, 5, 6};
  auto forecast = oracle.Forecast(series, 1, 3);
  ASSERT_TRUE(forecast.ok());
  EXPECT_EQ(*forecast, (std::vector<double>{3, 4, 5}));
}

TEST(OraclePredictorTest, HoldsLastValueBeyondTrace) {
  OraclePredictor oracle;
  std::vector<double> series = {1, 2, 3};
  auto forecast = oracle.Forecast(series, 1, 4);
  ASSERT_TRUE(forecast.ok());
  EXPECT_EQ(*forecast, (std::vector<double>{3, 3, 3, 3}));
}

TEST(OraclePredictorTest, InflationApplies) {
  OraclePredictor oracle(0.5);
  std::vector<double> series = {10, 20};
  auto forecast = oracle.Forecast(series, 0, 1);
  ASSERT_TRUE(forecast.ok());
  EXPECT_DOUBLE_EQ((*forecast)[0], 30.0);
}

TEST(OraclePredictorTest, RejectsBadArgs) {
  OraclePredictor oracle;
  EXPECT_FALSE(oracle.Forecast({1.0}, -1, 1).ok());
  EXPECT_FALSE(oracle.Forecast({1.0}, 0, 0).ok());
}

TEST(InflatingPredictorTest, WrapsInnerForecast) {
  auto inner = std::make_unique<OraclePredictor>(0.0);
  InflatingPredictor inflating(std::move(inner), 0.15);
  std::vector<double> series = {100, 200, 300};
  auto forecast = inflating.Forecast(series, 0, 2);
  ASSERT_TRUE(forecast.ok());
  EXPECT_DOUBLE_EQ((*forecast)[0], 230.0);
  EXPECT_DOUBLE_EQ((*forecast)[1], 345.0);
  EXPECT_NE(inflating.name().find("Oracle"), std::string::npos);
}

TEST(EvaluateMreTest, PerfectOracleHasZeroError) {
  OraclePredictor oracle;
  std::vector<double> series(200, 0.0);
  for (size_t i = 0; i < series.size(); ++i) {
    series[i] = 100 + std::sin(static_cast<double>(i)) * 10;
  }
  auto mre = EvaluateMre(oracle, series, 0, 200, 5);
  ASSERT_TRUE(mre.ok());
  EXPECT_NEAR(*mre, 0.0, 1e-12);
}

TEST(EvaluateMreTest, InflatedOracleHasKnownError) {
  OraclePredictor oracle(0.1);
  std::vector<double> series(100, 50.0);
  auto mre = EvaluateMre(oracle, series, 0, 100, 3);
  ASSERT_TRUE(mre.ok());
  EXPECT_NEAR(*mre, 0.1, 1e-9);
}

TEST(EvaluateMreTest, RejectsEmptyRange) {
  OraclePredictor oracle;
  std::vector<double> series(10, 1.0);
  EXPECT_FALSE(EvaluateMre(oracle, series, 8, 9, 5).ok());
  EXPECT_FALSE(EvaluateMre(oracle, series, 0, 10, 0).ok());
}

TEST(EvaluateMreTest, RespectsMinHistory) {
  SparConfig config;
  config.period = 10;
  config.num_periods = 2;
  config.num_recent = 2;
  SparPredictor predictor(config);
  std::vector<double> series(400);
  for (size_t i = 0; i < series.size(); ++i) {
    series[i] = 100 + 10 * std::sin(2 * M_PI * i / 10.0);
  }
  ASSERT_TRUE(predictor.Fit(series, 2).ok());
  // Start below MinHistory; the evaluator should clamp, not fail.
  auto mre = EvaluateMre(predictor, series, 0, 400, 2);
  ASSERT_TRUE(mre.ok());
  EXPECT_LT(*mre, 0.05);
}

}  // namespace
}  // namespace pstore
