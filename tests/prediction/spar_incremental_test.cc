#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "prediction/spar.h"

/// \file spar_incremental_test.cc
/// Equivalence suite for the incremental SPAR refit: Refit() after
/// appending slots must produce coefficients bit-identical to a full
/// Fit() on the extended series (the accumulation mirrors
/// Matrix::Gram()'s summation order, so this is exact equality, not
/// just a tolerance).

namespace pstore {
namespace {

constexpr int32_t kPeriod = 48;
constexpr int32_t kHorizon = 4;

SparConfig SmallConfig() {
  SparConfig config;
  config.period = kPeriod;
  config.num_periods = 3;
  config.num_recent = 6;
  return config;
}

/// Periodic base + trend + seeded noise, the shape the controller sees.
std::vector<double> NoisySeries(int64_t slots, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> y(static_cast<size_t>(slots));
  for (int64_t t = 0; t < slots; ++t) {
    y[static_cast<size_t>(t)] =
        200.0 + 80.0 * std::sin(2 * M_PI * (t % kPeriod) / kPeriod) +
        0.01 * static_cast<double>(t) + 5.0 * rng.NextGaussian();
  }
  return y;
}

/// Asserts every coefficient of every tau model matches exactly.
void ExpectIdenticalModels(const SparPredictor& a, const SparPredictor& b) {
  ASSERT_EQ(a.models().size(), b.models().size());
  for (size_t i = 0; i < a.models().size(); ++i) {
    const SparModel& ma = a.models()[i];
    const SparModel& mb = b.models()[i];
    ASSERT_EQ(ma.periodic_coefficients().size(),
              mb.periodic_coefficients().size());
    for (size_t k = 0; k < ma.periodic_coefficients().size(); ++k) {
      EXPECT_EQ(ma.periodic_coefficients()[k], mb.periodic_coefficients()[k])
          << "tau " << i + 1 << " a_" << k + 1;
    }
    ASSERT_EQ(ma.recent_coefficients().size(),
              mb.recent_coefficients().size());
    for (size_t j = 0; j < ma.recent_coefficients().size(); ++j) {
      EXPECT_EQ(ma.recent_coefficients()[j], mb.recent_coefficients()[j])
          << "tau " << i + 1 << " b_" << j + 1;
    }
  }
}

TEST(SparIncrementalTest, RefitMatchesFullFitAfterOneAppendedSlot) {
  const std::vector<double> full = NoisySeries(kPeriod * 8, 1);
  std::vector<double> prefix(full.begin(), full.end() - 1);

  SparPredictor incremental(SmallConfig());
  ASSERT_TRUE(incremental.Fit(prefix, kHorizon).ok());
  ASSERT_TRUE(incremental.Refit(full, kHorizon).ok());

  SparPredictor reference(SmallConfig());
  ASSERT_TRUE(reference.Fit(full, kHorizon).ok());

  ExpectIdenticalModels(incremental, reference);
}

TEST(SparIncrementalTest, RepeatedTickRefitsStayIdentical) {
  // The controller's real cadence: one slot lands per tick, Refit runs
  // each time. Drift would compound across ticks if accumulation ever
  // diverged from the full solve.
  const std::vector<double> full = NoisySeries(kPeriod * 8, 2);
  const size_t start = full.size() - 12;

  SparPredictor incremental(SmallConfig());
  ASSERT_TRUE(
      incremental
          .Fit(std::vector<double>(full.begin(), full.begin() + start),
               kHorizon)
          .ok());
  for (size_t len = start + 1; len <= full.size(); ++len) {
    std::vector<double> series(full.begin(), full.begin() + len);
    ASSERT_TRUE(incremental.Refit(series, kHorizon).ok());

    SparPredictor reference(SmallConfig());
    ASSERT_TRUE(reference.Fit(series, kHorizon).ok());
    ExpectIdenticalModels(incremental, reference);
  }
}

TEST(SparIncrementalTest, ForecastsMatchFullFit) {
  const std::vector<double> full = NoisySeries(kPeriod * 8, 3);
  std::vector<double> prefix(full.begin(), full.end() - 6);

  SparPredictor incremental(SmallConfig());
  ASSERT_TRUE(incremental.Fit(prefix, kHorizon).ok());
  ASSERT_TRUE(incremental.Refit(full, kHorizon).ok());

  SparPredictor reference(SmallConfig());
  ASSERT_TRUE(reference.Fit(full, kHorizon).ok());

  const int64_t t = static_cast<int64_t>(full.size()) - 1;
  auto fa = incremental.Forecast(full, t, kHorizon);
  auto fb = reference.Forecast(full, t, kHorizon);
  ASSERT_TRUE(fa.ok());
  ASSERT_TRUE(fb.ok());
  ASSERT_EQ(fa->size(), fb->size());
  for (size_t i = 0; i < fa->size(); ++i) {
    EXPECT_EQ((*fa)[i], (*fb)[i]) << "tau " << i + 1;
  }
}

TEST(SparIncrementalTest, FlashCrowdStepStaysBitIdentical) {
  // A flash crowd is the worst case for incremental accumulation: the
  // appended slots jump discontinuously to 3x the seasonal base, so any
  // reordering of the Gram-matrix summation would surface as a bit
  // difference here long before it showed up on smooth series.
  std::vector<double> full = NoisySeries(kPeriod * 8, 6);
  const size_t onset = full.size() - 8;
  for (size_t t = onset; t < full.size(); ++t) full[t] *= 3.0;

  SparPredictor incremental(SmallConfig());
  ASSERT_TRUE(
      incremental
          .Fit(std::vector<double>(full.begin(), full.begin() + onset),
               kHorizon)
          .ok());
  // Slot-by-slot, exactly as the controller refits while the crowd
  // builds: each step must match a from-scratch fit on the same prefix.
  for (size_t len = onset + 1; len <= full.size(); ++len) {
    std::vector<double> series(full.begin(), full.begin() + len);
    ASSERT_TRUE(incremental.Refit(series, kHorizon).ok());

    SparPredictor reference(SmallConfig());
    ASSERT_TRUE(reference.Fit(series, kHorizon).ok());
    ExpectIdenticalModels(incremental, reference);
  }
}

TEST(SparIncrementalTest, HorizonChangeFallsBackToFullFit) {
  const std::vector<double> series = NoisySeries(kPeriod * 8, 4);
  SparPredictor incremental(SmallConfig());
  ASSERT_TRUE(incremental.Fit(series, kHorizon).ok());
  // A different horizon invalidates the per-tau statistics; Refit must
  // still produce a correct (full) fit rather than failing.
  ASSERT_TRUE(incremental.Refit(series, kHorizon + 2).ok());

  SparPredictor reference(SmallConfig());
  ASSERT_TRUE(reference.Fit(series, kHorizon + 2).ok());
  ExpectIdenticalModels(incremental, reference);
}

TEST(SparIncrementalTest, ShrunkSeriesFallsBackToFullFit) {
  const std::vector<double> full = NoisySeries(kPeriod * 8, 5);
  std::vector<double> shorter(full.begin(), full.end() - 10);

  SparPredictor incremental(SmallConfig());
  ASSERT_TRUE(incremental.Fit(full, kHorizon).ok());
  // A series shorter than the fitted length cannot extend the stats
  // (history rewrote itself); Refit must fall back to a full fit.
  ASSERT_TRUE(incremental.Refit(shorter, kHorizon).ok());

  SparPredictor reference(SmallConfig());
  ASSERT_TRUE(reference.Fit(shorter, kHorizon).ok());
  ExpectIdenticalModels(incremental, reference);
}

}  // namespace
}  // namespace pstore
