#include "prediction/spar.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "workload/b2w_trace.h"

namespace pstore {
namespace {

/// Noiseless periodic signal: SPAR should learn it exactly.
std::vector<double> PurePeriodic(int64_t slots, int32_t period) {
  std::vector<double> y(static_cast<size_t>(slots));
  for (int64_t t = 0; t < slots; ++t) {
    y[static_cast<size_t>(t)] =
        100.0 + 50.0 * std::sin(2 * M_PI * (t % period) / period);
  }
  return y;
}

TEST(SparConfigTest, Validation) {
  SparConfig c;
  EXPECT_TRUE(c.Validate().ok());
  c.period = 1;
  EXPECT_TRUE(c.Validate().IsInvalidArgument());
  c = SparConfig{};
  c.num_periods = 0;
  EXPECT_TRUE(c.Validate().IsInvalidArgument());
  c = SparConfig{};
  c.num_recent = -1;
  EXPECT_TRUE(c.Validate().IsInvalidArgument());
}

TEST(SparModelTest, FitRejectsBadTau) {
  SparConfig config;
  config.period = 24;
  std::vector<double> train(24 * 20, 1.0);
  EXPECT_FALSE(SparModel::Fit(train, 0, config).ok());
  EXPECT_FALSE(SparModel::Fit(train, 24, config).ok());
}

TEST(SparModelTest, FitRejectsShortTraining) {
  SparConfig config;
  config.period = 24;
  config.num_periods = 7;
  std::vector<double> train(24 * 6, 1.0);  // fewer than n periods
  EXPECT_TRUE(SparModel::Fit(train, 1, config).status().IsInvalidArgument());
}

TEST(SparModelTest, LearnsPurePeriodicSignalExactly) {
  SparConfig config;
  config.period = 24;
  config.num_periods = 3;
  config.num_recent = 4;
  config.ridge = 1e-9;
  const auto y = PurePeriodic(24 * 30, 24);
  auto model = SparModel::Fit(y, 2, config);
  ASSERT_TRUE(model.ok());
  // Out-of-sample continuation of the same signal.
  const auto test = PurePeriodic(24 * 40, 24);
  for (int64_t t = model->MinHistory(); t < 24 * 40 - 2; t += 7) {
    EXPECT_NEAR(model->Predict(test, t), test[static_cast<size_t>(t + 2)],
                0.5);
  }
}

TEST(SparModelTest, CoefficientLayout) {
  SparConfig config;
  config.period = 24;
  config.num_periods = 3;
  config.num_recent = 5;
  const auto y = PurePeriodic(24 * 20, 24);
  auto model = SparModel::Fit(y, 1, config);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model->periodic_coefficients().size(), 3u);
  EXPECT_EQ(model->recent_coefficients().size(), 5u);
  EXPECT_EQ(model->tau(), 1);
  EXPECT_EQ(model->MinHistory(), 3 * 24 + 5);
}

TEST(SparModelTest, PeriodicCoefficientsDominateForPeriodicSignal) {
  SparConfig config;
  config.period = 24;
  config.num_periods = 3;
  config.num_recent = 2;
  const auto y = PurePeriodic(24 * 30, 24);
  auto model = SparModel::Fit(y, 1, config);
  ASSERT_TRUE(model.ok());
  double periodic_weight = 0;
  for (double a : model->periodic_coefficients()) periodic_weight += a;
  // The periodic part should reconstruct the signal: weights sum to ~1.
  EXPECT_NEAR(periodic_weight, 1.0, 0.05);
}

TEST(SparModelTest, RecentOffsetsCaptureLevelShifts) {
  // Periodic signal plus a persistent level shift in the last hours:
  // the Delta-y terms should push predictions toward the shifted level.
  SparConfig config;
  config.period = 48;
  config.num_periods = 4;
  config.num_recent = 6;
  Rng rng(3);
  const int32_t period = 48;
  std::vector<double> y(static_cast<size_t>(period) * 60);
  double shift = 0;
  for (size_t t = 0; t < y.size(); ++t) {
    if (t % 17 == 0) shift = 0.9 * shift + rng.NextGaussian() * 5;
    y[t] = 100.0 + 30.0 * std::sin(2 * M_PI * (t % period) / period) + shift;
  }
  auto model = SparModel::Fit(y, 1, config);
  ASSERT_TRUE(model.ok());
  double recent_weight = 0;
  for (double b : model->recent_coefficients()) recent_weight += b;
  EXPECT_GT(recent_weight, 0.3);  // persistence is learned
}

TEST(SparPredictorTest, FitThenForecastShapes) {
  SparConfig config;
  config.period = 24;
  config.num_periods = 3;
  config.num_recent = 4;
  SparPredictor predictor(config);
  EXPECT_FALSE(predictor.Forecast({}, 0, 1).ok());  // not fitted

  const auto y = PurePeriodic(24 * 30, 24);
  ASSERT_TRUE(predictor.Fit(y, 6).ok());
  auto forecast = predictor.Forecast(y, 24 * 20, 6);
  ASSERT_TRUE(forecast.ok());
  EXPECT_EQ(forecast->size(), 6u);
  EXPECT_FALSE(predictor.Forecast(y, 24 * 20, 7).ok());  // beyond horizon
  EXPECT_FALSE(predictor.Forecast(y, 10, 3).ok());       // thin history
}

TEST(SparPredictorTest, ForecastAtMatchesForecast) {
  SparConfig config;
  config.period = 24;
  config.num_periods = 2;
  config.num_recent = 3;
  SparPredictor predictor(config);
  const auto y = PurePeriodic(24 * 20, 24);
  ASSERT_TRUE(predictor.Fit(y, 4).ok());
  auto all = predictor.Forecast(y, 24 * 15, 4);
  ASSERT_TRUE(all.ok());
  for (int32_t tau = 1; tau <= 4; ++tau) {
    auto one = predictor.ForecastAt(y, 24 * 15, tau);
    ASSERT_TRUE(one.ok());
    EXPECT_DOUBLE_EQ(*one, (*all)[static_cast<size_t>(tau - 1)]);
  }
}

TEST(SparPredictorTest, AccurateOnSyntheticB2wTrace) {
  // The headline claim of Section 5: ~10% MRE at tau = 60 minutes on the
  // B2W load. Our synthetic trace should admit comparable accuracy.
  B2wTraceConfig trace_config = B2wRegularTraffic(42, 99);
  auto trace = GenerateB2wTrace(trace_config);
  ASSERT_TRUE(trace.ok());

  SparConfig config;  // paper settings: T=1440, n=7, m=30
  SparPredictor predictor(config);
  std::vector<double> train(trace->begin(), trace->begin() + 28 * 1440);
  ASSERT_TRUE(predictor.Fit(train, 60).ok());

  // Evaluate tau=60 over days 29-34.
  double total = 0;
  int64_t n = 0;
  for (int64_t t = 29 * 1440; t < 34 * 1440; t += 13) {
    auto pred = predictor.ForecastAt(*trace, t, 60);
    ASSERT_TRUE(pred.ok());
    const double actual = (*trace)[static_cast<size_t>(t + 60)];
    total += std::fabs(*pred - actual) / actual;
    ++n;
  }
  const double mre = total / static_cast<double>(n);
  EXPECT_LT(mre, 0.15) << "MRE " << mre;
}

TEST(SparPredictorTest, ErrorGrowsWithTau) {
  // Figure 5b: accuracy decays gracefully with the forecast window.
  B2wTraceConfig trace_config = B2wRegularTraffic(42, 7);
  auto trace = GenerateB2wTrace(trace_config);
  ASSERT_TRUE(trace.ok());
  SparConfig config;
  SparPredictor predictor(config);
  std::vector<double> train(trace->begin(), trace->begin() + 28 * 1440);
  ASSERT_TRUE(predictor.Fit(train, 60).ok());

  auto mre_at = [&](int32_t tau) {
    double total = 0;
    int64_t n = 0;
    for (int64_t t = 29 * 1440; t < 33 * 1440; t += 17) {
      auto pred = predictor.ForecastAt(*trace, t, tau);
      EXPECT_TRUE(pred.ok());
      const double actual = (*trace)[static_cast<size_t>(t + tau)];
      total += std::fabs(*pred - actual) / actual;
      ++n;
    }
    return total / static_cast<double>(n);
  };
  const double short_horizon = mre_at(5);
  const double long_horizon = mre_at(60);
  EXPECT_LT(short_horizon, long_horizon);
  EXPECT_LT(short_horizon, 0.06);
}

}  // namespace
}  // namespace pstore
