#include "prediction/ar.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace pstore {
namespace {

/// AR(1) process y(t) = c + phi * y(t-1) + eps.
std::vector<double> Ar1Series(int64_t n, double phi, double c, double sigma,
                              uint64_t seed) {
  Rng rng(seed);
  std::vector<double> y(static_cast<size_t>(n));
  double prev = c / (1 - phi);
  for (int64_t t = 0; t < n; ++t) {
    prev = c + phi * prev + sigma * rng.NextGaussian();
    y[static_cast<size_t>(t)] = prev;
  }
  return y;
}

TEST(ArPredictorTest, FitValidation) {
  ArPredictor predictor(0);
  EXPECT_TRUE(predictor.Fit({1, 2, 3}, 1).IsInvalidArgument());
  ArPredictor ok(2);
  EXPECT_TRUE(ok.Fit({1, 2, 3}, 0).IsInvalidArgument());
  std::vector<double> tiny(3, 1.0);
  EXPECT_FALSE(ok.Fit(tiny, 1).ok());
}

TEST(ArPredictorTest, LearnsAr1Process) {
  const auto y = Ar1Series(5000, 0.9, 10.0, 1.0, 11);
  ArPredictor predictor(5);
  ASSERT_TRUE(predictor.Fit(y, 1).ok());
  // One-step predictions should beat the naive last-value predictor.
  double model_err = 0, naive_err = 0;
  const auto test = Ar1Series(2000, 0.9, 10.0, 1.0, 13);
  for (int64_t t = 10; t + 1 < static_cast<int64_t>(test.size()); t += 3) {
    auto pred = predictor.ForecastAt(test, t, 1);
    ASSERT_TRUE(pred.ok());
    model_err += std::fabs(*pred - test[static_cast<size_t>(t + 1)]);
    naive_err += std::fabs(test[static_cast<size_t>(t)] -
                           test[static_cast<size_t>(t + 1)]);
  }
  EXPECT_LT(model_err, naive_err);
}

TEST(ArPredictorTest, ForecastLengthAndBounds) {
  const auto y = Ar1Series(2000, 0.8, 5.0, 0.5, 17);
  ArPredictor predictor(10);
  ASSERT_TRUE(predictor.Fit(y, 5).ok());
  auto forecast = predictor.Forecast(y, 1000, 5);
  ASSERT_TRUE(forecast.ok());
  EXPECT_EQ(forecast->size(), 5u);
  EXPECT_FALSE(predictor.Forecast(y, 1000, 6).ok());
  EXPECT_FALSE(predictor.ForecastAt(y, 1000, 0).ok());
  EXPECT_FALSE(predictor.ForecastAt(y, 3, 1).ok());  // below MinHistory
}

TEST(ArPredictorTest, NameAndMinHistory) {
  ArPredictor predictor(30);
  EXPECT_EQ(predictor.name(), "AR");
  EXPECT_EQ(predictor.MinHistory(), 29);
}

TEST(ArmaPredictorTest, FitValidation) {
  ArmaPredictor bad(0, 1);
  EXPECT_TRUE(bad.Fit({1, 2}, 1).IsInvalidArgument());
  ArmaPredictor bad2(1, 0);
  EXPECT_TRUE(bad2.Fit({1, 2}, 1).IsInvalidArgument());
}

TEST(ArmaPredictorTest, LearnsNoisyPeriodicBetterThanNaive) {
  Rng rng(23);
  std::vector<double> y(4000);
  for (size_t t = 0; t < y.size(); ++t) {
    y[t] = 100 + 20 * std::sin(2 * M_PI * t / 50.0) + rng.NextGaussian();
  }
  ArmaPredictor predictor(20, 5);
  ASSERT_TRUE(predictor.Fit(y, 3).ok());
  double model_err = 0, naive_err = 0;
  for (int64_t t = predictor.MinHistory(); t + 3 < 4000; t += 7) {
    auto pred = predictor.ForecastAt(y, t, 3);
    ASSERT_TRUE(pred.ok());
    model_err += std::fabs(*pred - y[static_cast<size_t>(t + 3)]);
    naive_err += std::fabs(y[static_cast<size_t>(t)] -
                           y[static_cast<size_t>(t + 3)]);
  }
  EXPECT_LT(model_err, naive_err * 0.8);
}

TEST(ArmaPredictorTest, ForecastShapes) {
  const auto y = Ar1Series(3000, 0.7, 1.0, 0.3, 29);
  ArmaPredictor predictor(5, 3);
  ASSERT_TRUE(predictor.Fit(y, 4).ok());
  auto forecast = predictor.Forecast(y, 2000, 4);
  ASSERT_TRUE(forecast.ok());
  EXPECT_EQ(forecast->size(), 4u);
  EXPECT_EQ(predictor.name(), "ARMA");
  EXPECT_FALSE(predictor.ForecastAt(y, 2000, 9).ok());
}

}  // namespace
}  // namespace pstore
