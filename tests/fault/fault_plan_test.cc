#include "fault/fault_plan.h"

#include <gtest/gtest.h>

#include <functional>
#include <set>
#include <string>
#include <vector>

#include "fault/event_trace.h"

namespace pstore {
namespace {

TEST(FaultPlanTest, ValidationRejectsBadEvents) {
  FaultPlan plan;
  EXPECT_TRUE(plan.Validate().ok());  // empty plan is fine

  FaultEvent e;
  e.at = -1;
  plan.events = {e};
  EXPECT_TRUE(plan.Validate().IsInvalidArgument());

  e = FaultEvent{};
  e.type = FaultType::kChunkFailure;
  e.probability = 1.5;
  plan.events = {e};
  EXPECT_TRUE(plan.Validate().IsInvalidArgument());

  e = FaultEvent{};
  e.type = FaultType::kMisforecast;
  e.forecast_scale = 0.0;
  plan.events = {e};
  EXPECT_TRUE(plan.Validate().IsInvalidArgument());

  e = FaultEvent{};
  e.type = FaultType::kMigrationStall;
  e.duration = -5;
  plan.events = {e};
  EXPECT_TRUE(plan.Validate().IsInvalidArgument());
}

TEST(FaultPlanTest, ChaosConfigValidation) {
  ChaosConfig config;
  EXPECT_TRUE(config.Validate().ok());
  config.horizon = 0;
  EXPECT_TRUE(config.Validate().IsInvalidArgument());
  config = ChaosConfig{};
  config.crash_weight = -1;
  EXPECT_TRUE(config.Validate().IsInvalidArgument());
  config = ChaosConfig{};
  config.crash_weight = config.restart_weight = config.stall_weight =
      config.chunk_failure_weight = config.misforecast_weight = 0;
  EXPECT_TRUE(config.Validate().IsInvalidArgument());
}

TEST(FaultPlanTest, RandomPlanIsSortedValidAndWithinHorizon) {
  Rng rng(7);
  ChaosConfig config;
  config.num_events = 40;
  const FaultPlan plan = RandomFaultPlan(&rng, config);
  ASSERT_EQ(plan.events.size(), 40u);
  EXPECT_TRUE(plan.Validate().ok());
  for (size_t i = 0; i < plan.events.size(); ++i) {
    EXPECT_GE(plan.events[i].at, 0);
    EXPECT_LT(plan.events[i].at, config.horizon);
    if (i > 0) EXPECT_LE(plan.events[i - 1].at, plan.events[i].at);
  }
}

TEST(FaultPlanTest, SameSeedSamePlan) {
  ChaosConfig config;
  config.num_events = 25;
  Rng a(123), b(123);
  EXPECT_EQ(RandomFaultPlan(&a, config).ToString(),
            RandomFaultPlan(&b, config).ToString());
}

TEST(FaultPlanTest, DifferentSeedsDifferentPlans) {
  ChaosConfig config;
  config.num_events = 25;
  Rng a(1), b(2);
  EXPECT_NE(RandomFaultPlan(&a, config).ToString(),
            RandomFaultPlan(&b, config).ToString());
}

TEST(FaultPlanTest, WeightsSteerEventMix) {
  ChaosConfig config;
  config.num_events = 30;
  config.crash_weight = 1.0;
  config.restart_weight = 0.0;
  config.stall_weight = 0.0;
  config.chunk_failure_weight = 0.0;
  config.misforecast_weight = 0.0;
  Rng rng(9);
  const FaultPlan plan = RandomFaultPlan(&rng, config);
  for (const FaultEvent& e : plan.events) {
    EXPECT_EQ(e.type, FaultType::kNodeCrash);
  }
}

TEST(FaultPlanTest, ReplicaLagWeightValidatesAndSteersMix) {
  ChaosConfig config;
  config.replica_lag_weight = -1;
  EXPECT_TRUE(config.Validate().IsInvalidArgument());

  config = ChaosConfig{};
  config.num_events = 30;
  config.crash_weight = 0.0;
  config.restart_weight = 0.0;
  config.stall_weight = 0.0;
  config.chunk_failure_weight = 0.0;
  config.misforecast_weight = 0.0;
  config.replica_lag_weight = 1.0;
  EXPECT_TRUE(config.Validate().ok());
  Rng rng(11);
  const FaultPlan plan = RandomFaultPlan(&rng, config);
  for (const FaultEvent& e : plan.events) {
    EXPECT_EQ(e.type, FaultType::kReplicaLag);
    EXPECT_GT(e.duration, 0);  // Lag window length.
    EXPECT_GT(e.stall, 0);     // Per-apply lag.
  }
  EXPECT_NE(plan.ToString().find("replica-lag"), std::string::npos);
  EXPECT_NE(plan.ToString().find("lag="), std::string::npos);
}

TEST(FaultPlanTest, DefaultWeightsNeverDrawReplicaLag) {
  // replica_lag_weight defaults to 0 in the trailing weight bucket, so
  // pre-existing seeded plans keep drawing exactly what they always did.
  ChaosConfig config;
  config.num_events = 200;
  Rng rng(5);
  const FaultPlan plan = RandomFaultPlan(&rng, config);
  for (const FaultEvent& e : plan.events) {
    EXPECT_NE(e.type, FaultType::kReplicaLag);
    EXPECT_EQ(e.scope, CrashScope::kAny);
  }
  EXPECT_EQ(plan.ToString().find("replica-lag"), std::string::npos);
  EXPECT_EQ(plan.ToString().find("scope="), std::string::npos);
}

TEST(FaultPlanTest, SpotRevocationWeightValidatesAndSteersMix) {
  ChaosConfig config;
  config.spot_revocation_weight = -1;
  EXPECT_TRUE(config.Validate().IsInvalidArgument());

  config = ChaosConfig{};
  config.num_events = 30;
  config.crash_weight = 0.0;
  config.restart_weight = 0.0;
  config.stall_weight = 0.0;
  config.chunk_failure_weight = 0.0;
  config.misforecast_weight = 0.0;
  config.spot_revocation_weight = 1.0;
  EXPECT_TRUE(config.Validate().ok());
  Rng rng(13);
  const FaultPlan plan = RandomFaultPlan(&rng, config);
  for (const FaultEvent& e : plan.events) {
    EXPECT_EQ(e.type, FaultType::kSpotRevocation);
    EXPECT_EQ(e.node, -1);     // Injector picks a spot node at fire time.
    EXPECT_GT(e.duration, 0);  // Advance-notice window.
  }
  EXPECT_NE(plan.ToString().find("spot-revocation"), std::string::npos);
  EXPECT_NE(plan.ToString().find("notice="), std::string::npos);
}

TEST(FaultPlanTest, DomainOutageWeightValidatesAndSteersMix) {
  ChaosConfig config;
  config.domain_outage_weight = -1;
  EXPECT_TRUE(config.Validate().IsInvalidArgument());

  config = ChaosConfig{};
  config.num_events = 30;
  config.crash_weight = 0.0;
  config.restart_weight = 0.0;
  config.stall_weight = 0.0;
  config.chunk_failure_weight = 0.0;
  config.misforecast_weight = 0.0;
  config.domain_outage_weight = 1.0;
  EXPECT_TRUE(config.Validate().ok());
  Rng rng(17);
  const FaultPlan plan = RandomFaultPlan(&rng, config);
  for (const FaultEvent& e : plan.events) {
    EXPECT_EQ(e.type, FaultType::kDomainOutage);
    EXPECT_EQ(e.node, -1);  // Injector picks the doomed domain.
    EXPECT_EQ(e.duration, 0);  // A point fault: the domain just dies.
  }
  EXPECT_NE(plan.ToString().find("domain-outage"), std::string::npos);
  EXPECT_NE(plan.ToString().find("domain=auto"), std::string::npos);
}

TEST(FaultPlanTest, FlashCrowdWeightValidatesAndSteersMix) {
  ChaosConfig config;
  config.flash_crowd_weight = -1;
  EXPECT_TRUE(config.Validate().IsInvalidArgument());

  config = ChaosConfig{};
  config.num_events = 30;
  config.crash_weight = 0.0;
  config.restart_weight = 0.0;
  config.stall_weight = 0.0;
  config.chunk_failure_weight = 0.0;
  config.misforecast_weight = 0.0;
  config.flash_crowd_weight = 1.0;
  EXPECT_TRUE(config.Validate().ok());
  Rng rng(19);
  const FaultPlan plan = RandomFaultPlan(&rng, config);
  for (const FaultEvent& e : plan.events) {
    EXPECT_EQ(e.type, FaultType::kFlashCrowd);
    EXPECT_GT(e.duration, 0);      // Surge window length.
    EXPECT_GE(e.load_scale, 2.0);  // 2x-8x, like kLoadSpike.
    EXPECT_LE(e.load_scale, 8.0);
    // The forecast path is untouched: reality moves, the model does not.
    EXPECT_EQ(e.forecast_scale, 1.0);
  }
  EXPECT_NE(plan.ToString().find("flash-crowd"), std::string::npos);
  EXPECT_NE(plan.ToString().find("xload="), std::string::npos);
}

TEST(FaultPlanTest, TraceDropoutWeightValidatesAndSteersMix) {
  ChaosConfig config;
  config.trace_dropout_weight = -1;
  EXPECT_TRUE(config.Validate().IsInvalidArgument());

  config = ChaosConfig{};
  config.num_events = 30;
  config.crash_weight = 0.0;
  config.restart_weight = 0.0;
  config.stall_weight = 0.0;
  config.chunk_failure_weight = 0.0;
  config.misforecast_weight = 0.0;
  config.trace_dropout_weight = 1.0;
  EXPECT_TRUE(config.Validate().ok());
  Rng rng(23);
  const FaultPlan plan = RandomFaultPlan(&rng, config);
  for (const FaultEvent& e : plan.events) {
    EXPECT_EQ(e.type, FaultType::kTraceDropout);
    EXPECT_GT(e.duration, 0);  // Telemetry-gap window length.
  }
  EXPECT_NE(plan.ToString().find("trace-dropout"), std::string::npos);
}

TEST(FaultPlanTest, DefaultWeightsNeverDrawControlPlaneFaults) {
  // Both control-plane weights default to 0 in the trailing weight
  // buckets, so pre-existing seeded plans keep drawing exactly what
  // they always did.
  ChaosConfig config;
  config.num_events = 200;
  Rng rng(5);
  const FaultPlan plan = RandomFaultPlan(&rng, config);
  for (const FaultEvent& e : plan.events) {
    EXPECT_NE(e.type, FaultType::kFlashCrowd);
    EXPECT_NE(e.type, FaultType::kTraceDropout);
  }
  EXPECT_EQ(plan.ToString().find("flash-crowd"), std::string::npos);
  EXPECT_EQ(plan.ToString().find("trace-dropout"), std::string::npos);
}

TEST(FaultPlanTest, DefaultWeightsNeverDrawTopologyFaults) {
  // Both topology weights default to 0 in the trailing weight buckets,
  // so pre-existing seeded plans keep drawing exactly what they always
  // did.
  ChaosConfig config;
  config.num_events = 200;
  Rng rng(5);
  const FaultPlan plan = RandomFaultPlan(&rng, config);
  for (const FaultEvent& e : plan.events) {
    EXPECT_NE(e.type, FaultType::kSpotRevocation);
    EXPECT_NE(e.type, FaultType::kDomainOutage);
  }
  EXPECT_EQ(plan.ToString().find("spot-revocation"), std::string::npos);
  EXPECT_EQ(plan.ToString().find("domain-outage"), std::string::npos);
}

TEST(FaultPlanTest, WindowFieldValidationTableDriven) {
  // Every field FaultPlan::Validate checks, one row each: the event
  // mutation and the error it must produce (mirroring the
  // ReplicationConfig table). A new FaultEvent field without a row
  // here ships unvalidated — add one alongside the Validate rule.
  struct Case {
    const char* what;
    std::function<void(FaultEvent*)> mutate;
    const char* error;
  };
  const std::vector<Case> cases = {
      {"negative time", [](FaultEvent* e) { e->at = -1; },
       "event time < 0"},
      {"negative duration", [](FaultEvent* e) { e->duration = -kSecond; },
       "duration < 0"},
      {"negative stall", [](FaultEvent* e) { e->stall = -1; },
       "stall < 0"},
      {"probability above one",
       [](FaultEvent* e) { e->probability = 1.5; },
       "probability outside [0, 1]"},
      {"probability negative",
       [](FaultEvent* e) { e->probability = -0.1; },
       "probability outside [0, 1]"},
      {"dup_probability above one",
       [](FaultEvent* e) { e->dup_probability = 2.0; },
       "dup_probability outside [0, 1]"},
      {"forecast_scale zero",
       [](FaultEvent* e) { e->forecast_scale = 0.0; },
       "forecast_scale <= 0"},
      {"load_scale zero", [](FaultEvent* e) { e->load_scale = 0.0; },
       "load_scale <= 0"},
      {"revocation without notice window",
       [](FaultEvent* e) {
         e->type = FaultType::kSpotRevocation;
         e->duration = 0;
       },
       "window fault with zero duration"},
      {"migration stall without window",
       [](FaultEvent* e) {
         e->type = FaultType::kMigrationStall;
         e->duration = 0;
       },
       "window fault with zero duration"},
      {"flash crowd without window",
       [](FaultEvent* e) {
         e->type = FaultType::kFlashCrowd;
         e->duration = 0;
       },
       "window fault with zero duration"},
      {"trace dropout without window",
       [](FaultEvent* e) {
         e->type = FaultType::kTraceDropout;
         e->duration = 0;
       },
       "window fault with zero duration"},
  };
  for (const Case& test : cases) {
    FaultEvent e;
    test.mutate(&e);
    FaultPlan plan;
    plan.events = {e};
    const Status status = plan.Validate();
    EXPECT_TRUE(status.IsInvalidArgument()) << test.what;
    EXPECT_NE(status.ToString().find(test.error), std::string::npos)
        << test.what << ": got " << status.ToString();
  }
}

TEST(FaultPlanTest, CrashScopePrintsOnlyWhenScoped) {
  FaultEvent e;
  e.type = FaultType::kNodeCrash;
  e.node = -1;
  // kAny prints the historical string exactly.
  EXPECT_EQ(e.ToString().find("scope="), std::string::npos);
  e.scope = CrashScope::kPrimaryHeavy;
  EXPECT_NE(e.ToString().find("scope=primary"), std::string::npos);
  e.scope = CrashScope::kBackupHeavy;
  EXPECT_NE(e.ToString().find("scope=backup"), std::string::npos);
}

// Exhaustiveness sweep over kAllFaultTypes: a new enum entry that is
// missing its name, its window classification, or a validation rule
// fails here instead of shipping half-wired.

TEST(FaultPlanTest, EveryFaultTypeHasADistinctName) {
  std::set<std::string> names;
  for (FaultType type : kAllFaultTypes) {
    const std::string name = FaultTypeName(type);
    EXPECT_FALSE(name.empty());
    EXPECT_NE(name, "unknown") << "unnamed fault type";
    EXPECT_TRUE(names.insert(name).second) << "duplicate name " << name;
  }
  EXPECT_EQ(names.size(),
            sizeof(kAllFaultTypes) / sizeof(kAllFaultTypes[0]));
}

TEST(FaultPlanTest, EveryFaultTypeRoundTripsValidation) {
  for (FaultType type : kAllFaultTypes) {
    FaultEvent e;
    e.type = type;
    if (IsWindowFault(type)) e.duration = kSecond;
    FaultPlan plan;
    plan.events = {e};
    EXPECT_TRUE(plan.Validate().ok()) << FaultTypeName(type);
    // Every event prints its type name (plans are golden-testable).
    EXPECT_NE(e.ToString().find(FaultTypeName(type)), std::string::npos)
        << FaultTypeName(type);
  }
}

TEST(FaultPlanTest, WindowFaultsRejectZeroAndNegativeWindows) {
  for (FaultType type : kAllFaultTypes) {
    FaultEvent e;
    e.type = type;
    FaultPlan plan;
    plan.events = {e};
    if (IsWindowFault(type)) {
      // A window fault with no window is a misarmed plan, not a no-op.
      EXPECT_TRUE(plan.Validate().IsInvalidArgument()) << FaultTypeName(type);
      plan.events[0].duration = -kSecond;
      EXPECT_TRUE(plan.Validate().IsInvalidArgument()) << FaultTypeName(type);
    } else {
      // Point faults carry no window: duration 0 is their normal shape.
      EXPECT_TRUE(plan.Validate().ok()) << FaultTypeName(type);
    }
  }
}

TEST(EventTraceTest, FingerprintIsOrderSensitive) {
  EventTrace a, b;
  a.Record(0, "x");
  a.Record(kSecond, "y");
  b.Record(kSecond, "y");
  b.Record(0, "x");
  EXPECT_NE(a.Fingerprint(), b.Fingerprint());
  EXPECT_EQ(a.size(), 2u);

  EventTrace c;
  c.Record(0, "x");
  c.Record(kSecond, "y");
  EXPECT_EQ(a.Fingerprint(), c.Fingerprint());
  EXPECT_EQ(a.ToString(), c.ToString());
}

}  // namespace
}  // namespace pstore
