#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "../test_util.h"
#include "core/reactive_controller.h"
#include "fault/fault_injector.h"
#include "fault/invariant_checker.h"

namespace pstore {
namespace {

using testing_util::MakeKvDatabase;
using testing_util::SmallEngineConfig;

/// Everything observable about one chaos run, for property and golden
/// (replay-identity) assertions.
struct ChaosOutcome {
  std::string plan;
  std::string trace;
  uint64_t trace_fingerprint = 0;
  std::vector<MoveRecord> history;
  std::vector<std::string> violations;
  int64_t events_executed = 0;
  int64_t committed = 0;
  int64_t checks_run = 0;
  int64_t crashes = 0;
  uint64_t rng_state = 0;
  double kb_moved = 0;
};

/// One fully seeded chaos run: a 3-node cluster with 200 preloaded rows
/// under a steady read-only load and a reactive controller, with a
/// random fault plan derived from `seed` and an invariant check every
/// virtual second. Deterministic: identical seeds must produce
/// byte-identical outcomes.
ChaosOutcome RunChaos(uint64_t seed) {
  auto db = MakeKvDatabase();
  Simulator sim;
  EngineConfig config = SmallEngineConfig();
  config.initial_nodes = 3;
  ClusterEngine engine(&sim, db.catalog, db.registry, config);
  const int64_t rows = 200;
  for (int64_t k = 0; k < rows; ++k) {
    EXPECT_TRUE(engine.LoadRow(db.table, Row({Value(k), Value(k)})).ok());
  }

  MigrationOptions migration;
  migration.chunk_kb = 100;
  migration.rate_kbps = 10000;
  migration.wire_kbps = 100000;
  migration.db_size_mb = 10;
  MigrationExecutor migrator(&engine, migration);

  ReactiveConfig reactive;
  reactive.q = 100.0;
  reactive.q_hat = 125.0;
  reactive.high_watermark = 0.9;
  reactive.headroom = 0.10;
  reactive.monitor_period = kSecond;
  reactive.scale_in_hold = 5 * kSecond;
  ReactiveController controller(&engine, &migrator, reactive);
  controller.Start();

  // The plan itself is drawn from the seed, so one integer reproduces
  // the entire run.
  Rng plan_rng(seed ^ 0x9e3779b97f4a7c15ULL);
  ChaosConfig chaos;
  chaos.horizon = 60 * kSecond;
  chaos.num_events = 8;
  chaos.max_window = 10 * kSecond;
  chaos.max_stall = 2 * kSecond;
  FaultPlan plan = RandomFaultPlan(&plan_rng, chaos);
  FaultInjector injector(&engine, &migrator, seed);
  EXPECT_TRUE(injector.Arm(plan).ok());

  InvariantChecker checker(&engine, &migrator);
  checker.set_expected_rows(rows);
  checker.StartPeriodic(kSecond);

  // Steady read-only load (conservation stays exact under Gets).
  const double rate = 40.0, seconds = 80.0;
  const int64_t n = static_cast<int64_t>(rate * seconds);
  for (int64_t i = 0; i < n; ++i) {
    TxnRequest get;
    get.proc = db.get;
    get.key = (i * 48271) % rows;
    sim.ScheduleAt(SecondsToDuration(i / rate),
                   [&engine, get]() { engine.Submit(get); });
  }

  sim.RunUntil(SecondsToDuration(seconds));
  checker.Stop();
  controller.Stop();
  sim.RunUntil(SecondsToDuration(seconds + 30));  // drain in-flight work

  Status final_check = checker.Check();
  EXPECT_TRUE(final_check.ok()) << final_check.ToString();

  ChaosOutcome out;
  out.plan = plan.ToString();
  out.trace = injector.trace().ToString();
  out.trace_fingerprint = injector.trace().Fingerprint();
  out.history = migrator.history();
  for (const InvariantViolation& v : checker.violations()) {
    out.violations.push_back(v.ToString());
  }
  out.events_executed = sim.events_executed();
  out.committed = engine.txns_committed();
  out.checks_run = checker.checks_run();
  out.crashes = injector.crashes();
  out.rng_state = injector.rng_state_hash();
  out.kb_moved = migrator.total_kb_moved();
  return out;
}

// The 50-seed sweep is sharded 5 seeds per ctest unit so `ctest -j`
// runs shards concurrently (and a failure names a 5-seed range, not a
// 50-seed monolith). The shard parameter is the first seed.
constexpr uint64_t kSeedsPerShard = 5;

class ChaosSeedShard : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChaosSeedShard, ZeroInvariantViolations) {
  const uint64_t first = GetParam();
  for (uint64_t seed = first; seed < first + kSeedsPerShard; ++seed) {
    const ChaosOutcome out = RunChaos(seed);
    EXPECT_TRUE(out.violations.empty())
        << "seed " << seed << ": " << out.violations.size()
        << " violations; first: " << out.violations[0] << "\nplan:\n"
        << out.plan << "\ntrace:\n"
        << out.trace;
    EXPECT_GT(out.checks_run, 60) << "seed " << seed;
    EXPECT_GT(out.committed, 0) << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(FiftySeeds, ChaosSeedShard,
                         ::testing::Range(uint64_t{1}, uint64_t{51},
                                          kSeedsPerShard));

TEST(ChaosPropertyTest, SweepExercisesFaultMachinery) {
  // Aggregate over the whole sweep (crashes are unevenly distributed
  // across seeds, so a prefix would be flaky): the plans must actually
  // crash nodes and trigger migrations, not skip the fault paths. The
  // per-seed invariants live in the shards; this unit only accumulates
  // counters, and runs concurrently with them under `ctest -j`.
  int64_t total_crashes = 0;
  int64_t runs_with_migration = 0;
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    const ChaosOutcome out = RunChaos(seed);
    total_crashes += out.crashes;
    if (!out.history.empty()) ++runs_with_migration;
  }
  EXPECT_GT(total_crashes, 10);
  EXPECT_GT(runs_with_migration, 10);
}

TEST(ChaosPropertyTest, GoldenSameSeedIdenticalReplay) {
  const ChaosOutcome a = RunChaos(42);
  const ChaosOutcome b = RunChaos(42);
  EXPECT_EQ(a.plan, b.plan);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.trace_fingerprint, b.trace_fingerprint);
  EXPECT_EQ(a.history, b.history);
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.committed, b.committed);
  EXPECT_EQ(a.crashes, b.crashes);
  EXPECT_EQ(a.rng_state, b.rng_state);
  EXPECT_DOUBLE_EQ(a.kb_moved, b.kb_moved);
  EXPECT_TRUE(a.violations.empty());
}

TEST(ChaosPropertyTest, DifferentSeedsDifferentRuns) {
  const ChaosOutcome a = RunChaos(1);
  const ChaosOutcome b = RunChaos(2);
  EXPECT_NE(a.plan, b.plan);
  EXPECT_NE(a.trace_fingerprint, b.trace_fingerprint);
}

}  // namespace
}  // namespace pstore
