#include "fault/invariant_checker.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "migration/migration_executor.h"

namespace pstore {
namespace {

using testing_util::MakeKvDatabase;
using testing_util::SmallEngineConfig;

class InvariantCheckerTest : public ::testing::Test {
 protected:
  InvariantCheckerTest() : db_(MakeKvDatabase()) {}

  void BuildEngine(EngineConfig config, int64_t rows = 200) {
    engine_ = std::make_unique<ClusterEngine>(&sim_, db_.catalog,
                                              db_.registry, config);
    for (int64_t k = 0; k < rows; ++k) {
      ASSERT_TRUE(
          engine_->LoadRow(db_.table, Row({Value(k), Value(k)})).ok());
    }
    rows_ = rows;
  }

  MigrationOptions FastOptions() {
    MigrationOptions opts;
    opts.chunk_kb = 100;
    opts.rate_kbps = 10000;
    opts.wire_kbps = 100000;
    opts.db_size_mb = 10;
    return opts;
  }

  Simulator sim_;
  testing_util::KvDatabase db_;
  std::unique_ptr<ClusterEngine> engine_;
  int64_t rows_ = 0;
};

TEST_F(InvariantCheckerTest, CleanEnginePasses) {
  BuildEngine(SmallEngineConfig());
  InvariantChecker checker(engine_.get(), nullptr);
  checker.set_expected_rows(rows_);
  EXPECT_TRUE(checker.Check().ok());
  EXPECT_TRUE(checker.violations().empty());
  EXPECT_EQ(checker.checks_run(), 1);
}

TEST_F(InvariantCheckerTest, CleanAfterMigration) {
  BuildEngine(SmallEngineConfig());
  MigrationExecutor migrator(engine_.get(), FastOptions());
  InvariantChecker checker(engine_.get(), &migrator);
  checker.set_expected_rows(rows_);
  ASSERT_TRUE(migrator.StartMove(4, nullptr).ok());
  sim_.RunAll();
  EXPECT_TRUE(checker.Check().ok());
  EXPECT_TRUE(checker.violations().empty());
}

TEST_F(InvariantCheckerTest, CleanAfterCrashFailover) {
  EngineConfig config = SmallEngineConfig();
  config.initial_nodes = 4;
  BuildEngine(config);
  InvariantChecker checker(engine_.get(), nullptr);
  checker.set_expected_rows(rows_);
  ASSERT_TRUE(engine_->CrashNode(3).ok());
  EXPECT_TRUE(checker.Check().ok()) << checker.violations().size()
                                    << " violations";
  EXPECT_EQ(engine_->live_nodes(), 3);
}

TEST_F(InvariantCheckerTest, DetectsBucketOwnedByDeadNode) {
  EngineConfig config = SmallEngineConfig();
  config.initial_nodes = 4;
  BuildEngine(config);
  ASSERT_TRUE(engine_->CrashNode(3).ok());
  // Corrupt the map: hand a bucket back to the dead node's partition.
  PartitionMap bad = engine_->partition_map();
  bad.Assign(0, 6);  // partition 6 lives on crashed node 3
  engine_->SetPartitionMap(bad);

  InvariantChecker checker(engine_.get(), nullptr);
  EXPECT_FALSE(checker.Check().ok());
  ASSERT_FALSE(checker.violations().empty());
  EXPECT_NE(checker.violations()[0].what.find("dead node"),
            std::string::npos);
}

TEST_F(InvariantCheckerTest, DetectsBucketOwnedByInactivePartition) {
  BuildEngine(SmallEngineConfig());  // 2 active nodes -> partitions 0..3
  PartitionMap bad = engine_->partition_map();
  bad.Assign(5, 7);  // partition 7 is not active
  engine_->SetPartitionMap(bad);

  InvariantChecker checker(engine_.get(), nullptr);
  EXPECT_FALSE(checker.Check().ok());
  ASSERT_FALSE(checker.violations().empty());
  EXPECT_NE(checker.violations()[0].what.find("inactive partition"),
            std::string::npos);
}

TEST_F(InvariantCheckerTest, DetectsOrphanRows) {
  BuildEngine(SmallEngineConfig());
  // Reassign a bucket in the map without moving its rows: the old owner
  // now holds rows of a bucket it does not own. Pick a bucket that
  // actually has rows (key->bucket hashing leaves some buckets empty).
  BucketId bucket = -1;
  PartitionId old_owner = -1;
  for (BucketId b = 0; b < 64 && bucket < 0; ++b) {
    const PartitionId p = engine_->partition_map().PartitionOfBucket(b);
    if (engine_->fragment(p)->BucketRowCount(b) > 0) {
      bucket = b;
      old_owner = p;
    }
  }
  ASSERT_GE(bucket, 0);
  const PartitionId new_owner = (old_owner + 1) % 4;
  PartitionMap bad = engine_->partition_map();
  bad.Assign(bucket, new_owner);
  engine_->SetPartitionMap(bad);

  InvariantChecker checker(engine_.get(), nullptr);
  EXPECT_FALSE(checker.Check().ok());
  ASSERT_FALSE(checker.violations().empty());
  EXPECT_NE(checker.violations()[0].what.find("orphan rows"),
            std::string::npos);
}

TEST_F(InvariantCheckerTest, DetectsRowConservationBreak) {
  BuildEngine(SmallEngineConfig());
  InvariantChecker checker(engine_.get(), nullptr);
  checker.set_expected_rows(rows_ + 1);  // claim one more row than loaded
  EXPECT_FALSE(checker.Check().ok());
  ASSERT_FALSE(checker.violations().empty());
  EXPECT_NE(checker.violations()[0].what.find("conservation"),
            std::string::npos);
}

TEST_F(InvariantCheckerTest, PeriodicChecksRunOnVirtualClock) {
  BuildEngine(SmallEngineConfig());
  InvariantChecker checker(engine_.get(), nullptr);
  checker.set_expected_rows(rows_);
  checker.StartPeriodic(kSecond);
  sim_.RunUntil(10 * kSecond + kMillisecond);
  checker.Stop();
  sim_.RunAll();
  EXPECT_GE(checker.checks_run(), 10);
  EXPECT_TRUE(checker.violations().empty());
}

TEST_F(InvariantCheckerTest, TxnAccountingStaysConsistentUnderLoad) {
  BuildEngine(SmallEngineConfig());
  InvariantChecker checker(engine_.get(), nullptr);
  checker.set_expected_rows(rows_);
  checker.StartPeriodic(100 * kMillisecond);
  for (int64_t i = 0; i < 100; ++i) {
    TxnRequest get;
    get.proc = db_.get;
    get.key = i % rows_;
    sim_.Schedule(i * 10 * kMillisecond,
                  [this, get]() { engine_->Submit(get); });
  }
  sim_.RunUntil(2 * kSecond);
  checker.Stop();
  sim_.RunAll();
  EXPECT_EQ(engine_->txns_committed(), 100);
  EXPECT_TRUE(checker.violations().empty());
}

}  // namespace
}  // namespace pstore
