#include "fault/fault_injector.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "fault/invariant_checker.h"

namespace pstore {
namespace {

using testing_util::MakeKvDatabase;
using testing_util::SmallEngineConfig;

class FaultInjectorTest : public ::testing::Test {
 protected:
  FaultInjectorTest() : db_(MakeKvDatabase()) {}

  void BuildEngine(EngineConfig config, int64_t rows = 200) {
    engine_ = std::make_unique<ClusterEngine>(&sim_, db_.catalog,
                                              db_.registry, config);
    for (int64_t k = 0; k < rows; ++k) {
      ASSERT_TRUE(
          engine_->LoadRow(db_.table, Row({Value(k), Value(k)})).ok());
    }
    rows_ = rows;
  }

  MigrationOptions FastOptions() {
    MigrationOptions opts;
    opts.chunk_kb = 100;
    opts.rate_kbps = 10000;
    opts.wire_kbps = 100000;
    opts.db_size_mb = 10;
    return opts;
  }

  Simulator sim_;
  testing_util::KvDatabase db_;
  std::unique_ptr<ClusterEngine> engine_;
  int64_t rows_ = 0;
};

TEST_F(FaultInjectorTest, CrashRedistributesBucketsAndRows) {
  EngineConfig config = SmallEngineConfig();
  config.initial_nodes = 3;
  BuildEngine(config);
  const auto counts_before = engine_->partition_map().BucketCounts();
  ASSERT_GT(counts_before[4] + counts_before[5], 0);

  ASSERT_TRUE(engine_->CrashNode(2).ok());
  EXPECT_EQ(engine_->live_nodes(), 2);
  EXPECT_EQ(engine_->active_nodes(), 3);  // crashed, not deactivated
  EXPECT_EQ(engine_->fault_epoch(), 1);
  EXPECT_GT(engine_->failover_moves(), 0);

  // The dead node's partitions hold nothing and own nothing.
  for (PartitionId p = 4; p < 6; ++p) {
    EXPECT_EQ(engine_->fragment(p)->TotalRowCount(), 0);
    EXPECT_TRUE(engine_->partition_map().BucketsOfPartition(p).empty());
  }
  EXPECT_EQ(engine_->TotalRowCount(), rows_);
  // Every key is reachable on a live node.
  for (int64_t k = 0; k < rows_; ++k) {
    const PartitionId p = engine_->partition_map().PartitionOfKey(k);
    EXPECT_TRUE(engine_->IsNodeUp(engine_->NodeOfPartition(p)));
    EXPECT_TRUE(engine_->fragment(p)->Contains(db_.table, k));
  }
}

TEST_F(FaultInjectorTest, CrashingLastLiveNodeRejected) {
  BuildEngine(SmallEngineConfig());
  ASSERT_TRUE(engine_->CrashNode(1).ok());
  EXPECT_TRUE(engine_->CrashNode(0).IsFailedPrecondition());
  EXPECT_EQ(engine_->live_nodes(), 1);
}

TEST_F(FaultInjectorTest, CrashValidation) {
  BuildEngine(SmallEngineConfig());
  EXPECT_TRUE(engine_->CrashNode(-1).IsFailedPrecondition());
  EXPECT_TRUE(engine_->CrashNode(5).IsFailedPrecondition());  // inactive
  ASSERT_TRUE(engine_->CrashNode(1).ok());
  EXPECT_TRUE(engine_->CrashNode(1).IsFailedPrecondition());  // already down
}

TEST_F(FaultInjectorTest, RestartRejoinsEmpty) {
  EngineConfig config = SmallEngineConfig();
  config.initial_nodes = 3;
  BuildEngine(config);
  ASSERT_TRUE(engine_->CrashNode(2).ok());
  EXPECT_TRUE(engine_->RestartNode(1).IsFailedPrecondition());  // still up
  ASSERT_TRUE(engine_->RestartNode(2).ok());
  EXPECT_EQ(engine_->live_nodes(), 3);
  EXPECT_EQ(engine_->fault_epoch(), 2);
  // Rejoined empty: buckets stay where failover put them until the
  // elasticity controllers rebalance.
  EXPECT_EQ(engine_->fragment(4)->TotalRowCount(), 0);
  EXPECT_EQ(engine_->TotalRowCount(), rows_);
}

TEST_F(FaultInjectorTest, ArmFiresScheduledCrash) {
  EngineConfig config = SmallEngineConfig();
  config.initial_nodes = 3;
  BuildEngine(config);
  FaultInjector injector(engine_.get(), nullptr, /*seed=*/1);

  FaultPlan plan;
  FaultEvent crash;
  crash.at = 5 * kSecond;
  crash.type = FaultType::kNodeCrash;  // node = -1: injector picks
  plan.events = {crash};
  ASSERT_TRUE(injector.Arm(plan).ok());
  EXPECT_TRUE(injector.Arm(plan).IsFailedPrecondition());  // armed once

  sim_.RunUntil(4 * kSecond);
  EXPECT_EQ(engine_->live_nodes(), 3);
  sim_.RunUntil(6 * kSecond);
  EXPECT_EQ(engine_->live_nodes(), 2);
  EXPECT_EQ(injector.crashes(), 1);
  // Picks the highest live node, never node 0.
  EXPECT_FALSE(engine_->IsNodeUp(2));
  EXPECT_TRUE(engine_->IsNodeUp(0));
  EXPECT_FALSE(injector.trace().empty());
}

TEST_F(FaultInjectorTest, CrashThenRestartViaPlan) {
  EngineConfig config = SmallEngineConfig();
  config.initial_nodes = 3;
  BuildEngine(config);
  FaultInjector injector(engine_.get(), nullptr, 1);

  FaultPlan plan;
  FaultEvent crash;
  crash.at = kSecond;
  crash.type = FaultType::kNodeCrash;
  FaultEvent restart;
  restart.at = 2 * kSecond;
  restart.type = FaultType::kNodeRestart;
  plan.events = {crash, restart};
  ASSERT_TRUE(injector.Arm(plan).ok());
  sim_.RunUntil(3 * kSecond);

  EXPECT_EQ(injector.crashes(), 1);
  EXPECT_EQ(injector.restarts(), 1);
  EXPECT_EQ(engine_->live_nodes(), 3);
  EXPECT_EQ(engine_->fault_epoch(), 2);

  InvariantChecker checker(engine_.get(), nullptr);
  checker.set_expected_rows(rows_);
  EXPECT_TRUE(checker.Check().ok());
}

TEST_F(FaultInjectorTest, RestartWithNoCrashedNodeIsSkipped) {
  BuildEngine(SmallEngineConfig());
  FaultInjector injector(engine_.get(), nullptr, 1);
  FaultPlan plan;
  FaultEvent restart;
  restart.at = kSecond;
  restart.type = FaultType::kNodeRestart;
  plan.events = {restart};
  ASSERT_TRUE(injector.Arm(plan).ok());
  sim_.RunUntil(2 * kSecond);
  EXPECT_EQ(injector.restarts(), 0);
  bool skipped = false;
  for (const std::string& line : injector.trace().lines()) {
    if (line.find("restart skipped") != std::string::npos) skipped = true;
  }
  EXPECT_TRUE(skipped);
}

TEST_F(FaultInjectorTest, MisforecastWindowScalesForecasts) {
  BuildEngine(SmallEngineConfig());
  FaultInjector injector(engine_.get(), nullptr, 1);
  FaultPlan plan;
  FaultEvent mis;
  mis.at = kSecond;
  mis.type = FaultType::kMisforecast;
  mis.duration = 5 * kSecond;
  mis.forecast_scale = 0.5;
  plan.events = {mis};
  ASSERT_TRUE(injector.Arm(plan).ok());

  OraclePredictor oracle;
  MisforecastPredictor faulty(&oracle, &injector);
  EXPECT_EQ(faulty.name(), "Oracle+faults");
  const std::vector<double> series = {100, 100, 100, 100, 100, 100};

  EXPECT_DOUBLE_EQ(injector.forecast_scale(), 1.0);
  auto before = faulty.Forecast(series, 1, 2);
  ASSERT_TRUE(before.ok());
  EXPECT_DOUBLE_EQ((*before)[0], 100.0);

  sim_.RunUntil(2 * kSecond);  // inside the window
  EXPECT_DOUBLE_EQ(injector.forecast_scale(), 0.5);
  auto during = faulty.Forecast(series, 1, 2);
  ASSERT_TRUE(during.ok());
  EXPECT_DOUBLE_EQ((*during)[0], 50.0);
  EXPECT_DOUBLE_EQ((*during)[1], 50.0);

  sim_.RunUntil(10 * kSecond);  // window closed
  EXPECT_DOUBLE_EQ(injector.forecast_scale(), 1.0);
  auto after = faulty.Forecast(series, 1, 2);
  ASSERT_TRUE(after.ok());
  EXPECT_DOUBLE_EQ((*after)[0], 100.0);
}

TEST_F(FaultInjectorTest, ChunkFailureWindowCausesRetriesThenCompletion) {
  BuildEngine(SmallEngineConfig());
  MigrationExecutor migrator(engine_.get(), FastOptions());
  FaultInjector injector(engine_.get(), &migrator, 7);

  FaultPlan plan;
  FaultEvent fail;
  fail.at = 0;
  fail.type = FaultType::kChunkFailure;
  fail.duration = 50 * kMillisecond;
  fail.probability = 1.0;  // every chunk attempt in the window fails
  plan.events = {fail};
  ASSERT_TRUE(injector.Arm(plan).ok());

  bool completed = false;
  ASSERT_TRUE(migrator.StartMove(4, [&]() { completed = true; }).ok());
  sim_.RunAll();

  EXPECT_TRUE(completed);
  EXPECT_GT(injector.chunk_faults(), 0);
  EXPECT_GT(migrator.chunk_retries(), 0);
  EXPECT_EQ(engine_->active_nodes(), 4);
  EXPECT_EQ(engine_->TotalRowCount(), rows_);

  InvariantChecker checker(engine_.get(), &migrator);
  checker.set_expected_rows(rows_);
  EXPECT_TRUE(checker.Check().ok());
}

TEST_F(FaultInjectorTest, StallWindowDelaysButCompletesMove) {
  BuildEngine(SmallEngineConfig());
  MigrationExecutor migrator(engine_.get(), FastOptions());
  FaultInjector injector(engine_.get(), &migrator, 7);

  FaultPlan plan;
  FaultEvent stall;
  stall.at = 0;
  stall.type = FaultType::kMigrationStall;
  stall.duration = 20 * kMillisecond;
  stall.stall = kSecond;  // well past the chunk timeout
  plan.events = {stall};
  ASSERT_TRUE(injector.Arm(plan).ok());

  bool completed = false;
  ASSERT_TRUE(migrator.StartMove(4, [&]() { completed = true; }).ok());
  sim_.RunAll();

  EXPECT_TRUE(completed);
  EXPECT_GT(injector.chunk_faults(), 0);
  EXPECT_EQ(engine_->TotalRowCount(), rows_);
}

}  // namespace
}  // namespace pstore
