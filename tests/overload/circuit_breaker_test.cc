#include "overload/circuit_breaker.h"

#include <tuple>
#include <vector>

#include <gtest/gtest.h>

namespace pstore {
namespace overload {
namespace {

BreakerConfig TestConfig() {
  BreakerConfig config;
  config.window = 1000;
  config.shed_threshold = 0.5;
  config.min_samples = 10;
  config.cooldown = 5000;
  return config;
}

TEST(CircuitBreakerTest, StartsClosed) {
  CircuitBreaker breaker(TestConfig());
  EXPECT_EQ(breaker.state(0), BreakerState::kClosed);
  EXPECT_FALSE(breaker.IsOpen(100));
  EXPECT_EQ(breaker.trips(), 0);
}

TEST(CircuitBreakerTest, TripsOnSustainedShedRate) {
  CircuitBreaker breaker(TestConfig());
  for (int i = 0; i < 8; ++i) breaker.RecordAdmitted(100);
  for (int i = 0; i < 12; ++i) breaker.RecordShed(200);
  // 12/20 shed > 0.5: the window closing at t=1000 trips the breaker.
  EXPECT_EQ(breaker.state(999), BreakerState::kClosed);
  EXPECT_EQ(breaker.state(1000), BreakerState::kOpen);
  EXPECT_EQ(breaker.trips(), 1);
}

TEST(CircuitBreakerTest, ThresholdIsStrict) {
  CircuitBreaker breaker(TestConfig());
  for (int i = 0; i < 10; ++i) breaker.RecordAdmitted(100);
  for (int i = 0; i < 10; ++i) breaker.RecordShed(200);
  // Exactly at the threshold (10/20 = 0.5) does not trip.
  EXPECT_EQ(breaker.state(2000), BreakerState::kClosed);
}

TEST(CircuitBreakerTest, MinSamplesSuppressesNoisyWindows) {
  CircuitBreaker breaker(TestConfig());
  for (int i = 0; i < 9; ++i) breaker.RecordShed(100);  // 100% shed, n=9
  EXPECT_EQ(breaker.state(5000), BreakerState::kClosed);
  EXPECT_EQ(breaker.trips(), 0);
}

TEST(CircuitBreakerTest, CooldownHalfOpensThenHealthyProbeCloses) {
  CircuitBreaker breaker(TestConfig());
  for (int i = 0; i < 20; ++i) breaker.RecordShed(100);
  ASSERT_EQ(breaker.state(1000), BreakerState::kOpen);
  // Open until window end (1000) + cooldown (5000).
  EXPECT_EQ(breaker.state(5999), BreakerState::kOpen);
  EXPECT_EQ(breaker.state(6000), BreakerState::kHalfOpen);
  // A healthy probe window closes the breaker at its boundary.
  for (int i = 0; i < 15; ++i) breaker.RecordAdmitted(6100);
  EXPECT_EQ(breaker.state(7000), BreakerState::kClosed);
  EXPECT_EQ(breaker.trips(), 1);
}

TEST(CircuitBreakerTest, UnhealthyProbeReopens) {
  CircuitBreaker breaker(TestConfig());
  for (int i = 0; i < 20; ++i) breaker.RecordShed(100);
  ASSERT_EQ(breaker.state(6000), BreakerState::kHalfOpen);
  for (int i = 0; i < 20; ++i) breaker.RecordShed(6100);
  EXPECT_EQ(breaker.state(7000), BreakerState::kOpen);
  EXPECT_EQ(breaker.trips(), 2);
}

TEST(CircuitBreakerTest, EmptyProbeWindowsKeepProbing) {
  CircuitBreaker breaker(TestConfig());
  for (int i = 0; i < 20; ++i) breaker.RecordShed(100);
  ASSERT_EQ(breaker.state(6000), BreakerState::kHalfOpen);
  // No traffic at all: closing on no evidence would mask a saturated
  // node whose clients have backed off, so the breaker stays half-open.
  EXPECT_EQ(breaker.state(20000), BreakerState::kHalfOpen);
}

TEST(CircuitBreakerTest, StateChangeObserverSeesLogicalTimes) {
  CircuitBreaker breaker(TestConfig());
  std::vector<std::tuple<SimTime, BreakerState, BreakerState>> changes;
  breaker.set_on_state_change(
      [&](SimTime at, BreakerState from, BreakerState to) {
        changes.emplace_back(at, from, to);
      });
  for (int i = 0; i < 20; ++i) breaker.RecordShed(100);
  // Observed late: the transitions still carry their logical times
  // (window boundary 1000, cooldown expiry 6000), not the call time.
  breaker.state(9000);
  ASSERT_EQ(changes.size(), 2u);
  EXPECT_EQ(changes[0], std::make_tuple(SimTime{1000}, BreakerState::kClosed,
                                        BreakerState::kOpen));
  EXPECT_EQ(changes[1], std::make_tuple(SimTime{6000}, BreakerState::kOpen,
                                        BreakerState::kHalfOpen));
}

TEST(CircuitBreakerTest, ConfigValidation) {
  BreakerConfig config = TestConfig();
  EXPECT_TRUE(config.Validate().ok());
  config.shed_threshold = 1.0;
  EXPECT_FALSE(config.Validate().ok());
  config = TestConfig();
  config.window = 0;
  EXPECT_FALSE(config.Validate().ok());
  config = TestConfig();
  config.cooldown = 0;
  EXPECT_FALSE(config.Validate().ok());
  config = TestConfig();
  config.min_samples = 0;
  EXPECT_FALSE(config.Validate().ok());
}

}  // namespace
}  // namespace overload
}  // namespace pstore
