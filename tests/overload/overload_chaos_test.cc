#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "../test_util.h"
#include "core/reactive_controller.h"
#include "fault/fault_injector.h"
#include "fault/invariant_checker.h"
#include "overload/retry_budget.h"

/// Chaos property tests for the overload-control stack: node crashes
/// and load spikes against a cluster running bounded queues, deadline
/// shedding, priority eviction, per-node breakers, breaker-aware
/// reactive scaling, and a client retry budget. Every seed must keep
/// every invariant (including shed conservation), and same-seed runs
/// must replay byte-identically.

namespace pstore {
namespace {

using testing_util::MakeKvDatabase;
using testing_util::SmallEngineConfig;

struct OverloadOutcome {
  std::string plan;
  std::string trace;
  uint64_t trace_fingerprint = 0;
  std::vector<std::string> violations;
  int64_t events_executed = 0;
  int64_t committed = 0;
  int64_t shed = 0;
  int64_t breaker_trips = 0;
  int64_t load_spikes = 0;
  int64_t crashes = 0;
  int64_t scale_outs = 0;
  int64_t retries = 0;
};

/// One seeded overload-chaos run: 3 nodes saturating at ~300 txn/s, a
/// 100 txn/s base load amplified live by kLoadSpike windows (2x-8x),
/// crash/restart faults in the same plan, and shed-aware retries.
OverloadOutcome RunOverloadChaos(uint64_t seed) {
  auto db = MakeKvDatabase();
  Simulator sim;
  EngineConfig config = SmallEngineConfig();
  config.initial_nodes = 3;
  config.txn_service_us_mean = 20000.0;  // ~50 txn/s per partition
  config.overload.enabled = true;
  config.overload.max_queue_depth = 16;
  config.overload.queue_deadline = 200 * kMillisecond;
  config.overload.policy = overload::AdmissionPolicy::kPriorityShed;
  config.overload.breaker.window = kSecond;
  config.overload.breaker.shed_threshold = 0.2;
  config.overload.breaker.min_samples = 20;
  config.overload.breaker.cooldown = 3 * kSecond;
  ClusterEngine engine(&sim, db.catalog, db.registry, config);
  const int64_t rows = 200;
  for (int64_t k = 0; k < rows; ++k) {
    EXPECT_TRUE(engine.LoadRow(db.table, Row({Value(k), Value(k)})).ok());
  }

  MigrationOptions migration;
  migration.chunk_kb = 100;
  migration.rate_kbps = 10000;
  migration.wire_kbps = 100000;
  migration.db_size_mb = 10;
  MigrationExecutor migrator(&engine, migration);

  ReactiveConfig reactive;
  reactive.q = 100.0;
  reactive.q_hat = 125.0;
  reactive.high_watermark = 0.9;
  reactive.headroom = 0.10;
  reactive.monitor_period = kSecond;
  reactive.scale_in_hold = 5 * kSecond;
  ReactiveController controller(&engine, &migrator, reactive);
  controller.set_overload(engine.admission());
  controller.Start();

  Rng plan_rng(seed ^ 0x9e3779b97f4a7c15ULL);
  ChaosConfig chaos;
  chaos.horizon = 40 * kSecond;
  chaos.num_events = 6;
  chaos.max_window = 10 * kSecond;
  chaos.max_stall = 2 * kSecond;
  // Crashes and load spikes dominate the mix: this suite is about
  // overload behaviour under failures, not migration faults.
  chaos.crash_weight = 2.0;
  chaos.restart_weight = 1.0;
  chaos.stall_weight = 0.5;
  chaos.chunk_failure_weight = 0.5;
  chaos.misforecast_weight = 0.5;
  chaos.load_spike_weight = 3.0;
  FaultPlan plan = RandomFaultPlan(&plan_rng, chaos);
  FaultInjector injector(&engine, &migrator, seed);
  EXPECT_TRUE(injector.Arm(plan).ok());

  InvariantChecker checker(&engine, &migrator);
  checker.set_expected_rows(rows);
  checker.StartPeriodic(kSecond);

  // Base 100 txn/s, amplified live by open load-spike windows; sheds
  // re-enter through a token-bucket retry budget with jittered backoff
  // on a dedicated Rng stream.
  overload::RetryPolicy retry_policy;
  overload::RetryBudget retry_budget(retry_policy);
  Rng retry_rng(seed ^ 0x94d049bb133111ebULL);
  int64_t retries = 0;
  const double seconds = 60.0;
  auto resubmit =
      std::make_shared<std::function<void(TxnRequest, int32_t)>>();
  *resubmit = [&](TxnRequest req, int32_t attempt) {
    if (attempt == 0) retry_budget.OnRequest();
    TxnRequest copy = req;
    engine.Submit(std::move(req), [&, copy = std::move(copy),
                                   attempt](const TxnResult& result) mutable {
      if (!result.shed) return;
      if (attempt + 1 >= retry_policy.max_attempts) return;
      if (!retry_budget.TrySpend()) return;
      ++retries;
      sim.Schedule(retry_budget.Backoff(attempt + 1, &retry_rng),
                   [&, copy = std::move(copy), attempt]() mutable {
                     (*resubmit)(std::move(copy), attempt + 1);
                   });
    });
  };
  auto generate = std::make_shared<std::function<void(int64_t)>>();
  *generate = [&](int64_t i) {
    if (sim.Now() >= SecondsToDuration(seconds)) return;
    TxnRequest get;
    get.proc = db.get;
    get.key = (i * 48271) % rows;
    (*resubmit)(std::move(get), 0);
    const double rate = 100.0 * injector.load_scale();
    const auto gap = static_cast<SimDuration>(1e6 / rate);
    sim.Schedule(gap < 1 ? 1 : gap, [&, i]() { (*generate)(i + 1); });
  };
  sim.Schedule(0, [&]() { (*generate)(0); });

  sim.RunUntil(SecondsToDuration(seconds));
  checker.Stop();
  controller.Stop();
  sim.RunUntil(SecondsToDuration(seconds + 30));

  Status final_check = checker.Check();
  EXPECT_TRUE(final_check.ok()) << final_check.ToString();

  OverloadOutcome out;
  out.plan = plan.ToString();
  out.trace = injector.trace().ToString();
  out.trace_fingerprint = injector.trace().Fingerprint();
  for (const InvariantViolation& v : checker.violations()) {
    out.violations.push_back(v.ToString());
  }
  out.events_executed = sim.events_executed();
  out.committed = engine.txns_committed();
  out.shed = engine.txns_shed();
  out.breaker_trips = engine.admission()->total_trips();
  out.load_spikes = injector.load_spikes();
  out.crashes = injector.crashes();
  out.scale_outs = controller.scale_outs();
  out.retries = retries;
  return out;
}

// The 50-seed sweep is sharded 5 seeds per ctest unit so `ctest -j`
// runs shards concurrently (and a failure names a 5-seed range, not a
// 50-seed monolith). The shard parameter is the first seed.
constexpr uint64_t kSeedsPerShard = 5;

class OverloadSeedShard : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OverloadSeedShard, ZeroViolationsWithActiveOverload) {
  const uint64_t first = GetParam();
  for (uint64_t seed = first; seed < first + kSeedsPerShard; ++seed) {
    const OverloadOutcome out = RunOverloadChaos(seed);
    EXPECT_TRUE(out.violations.empty())
        << "seed " << seed << ": " << out.violations.size()
        << " violations; first: " << out.violations[0] << "\nplan:\n"
        << out.plan << "\ntrace:\n"
        << out.trace;
    EXPECT_GT(out.committed, 0) << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(FiftySeeds, OverloadSeedShard,
                         ::testing::Range(uint64_t{1}, uint64_t{51},
                                          kSeedsPerShard));

TEST(OverloadChaosTest, SweepExercisesOverloadMachinery) {
  // Scaled-down aggregate over the first ten seeds: spikes fire, queues
  // shed, breakers trip, retries spend budget, and the breaker-aware
  // controller scales out as its safety net. (The per-seed invariants
  // live in the shards.)
  int64_t total_trips = 0, total_spikes = 0, total_crashes = 0;
  int64_t total_shed = 0, total_scale_outs = 0, total_retries = 0;
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    const OverloadOutcome out = RunOverloadChaos(seed);
    total_trips += out.breaker_trips;
    total_spikes += out.load_spikes;
    total_crashes += out.crashes;
    total_shed += out.shed;
    total_scale_outs += out.scale_outs;
    total_retries += out.retries;
  }
  EXPECT_GT(total_spikes, 4);
  EXPECT_GT(total_crashes, 2);
  EXPECT_GT(total_shed, 200);
  EXPECT_GT(total_trips, 2);
  EXPECT_GT(total_retries, 20);
  EXPECT_GT(total_scale_outs, 2);
}

TEST(OverloadChaosTest, SameSeedReplaysIdentically) {
  const OverloadOutcome a = RunOverloadChaos(42);
  const OverloadOutcome b = RunOverloadChaos(42);
  EXPECT_EQ(a.plan, b.plan);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.trace_fingerprint, b.trace_fingerprint);
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.committed, b.committed);
  EXPECT_EQ(a.shed, b.shed);
  EXPECT_EQ(a.breaker_trips, b.breaker_trips);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.scale_outs, b.scale_outs);
  EXPECT_TRUE(a.violations.empty());
}

TEST(OverloadChaosTest, DifferentSeedsDiverge) {
  const OverloadOutcome a = RunOverloadChaos(3);
  const OverloadOutcome b = RunOverloadChaos(4);
  EXPECT_NE(a.plan, b.plan);
  EXPECT_NE(a.trace_fingerprint, b.trace_fingerprint);
}

}  // namespace
}  // namespace pstore
