#include "overload/retry_budget.h"

#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace pstore {
namespace overload {
namespace {

TEST(RetryBudgetTest, StartsAtCapacityAndSpendsDown) {
  RetryPolicy policy;
  policy.token_cap = 2.0;
  policy.tokens_per_request = 0.1;
  RetryBudget budget(policy);
  EXPECT_DOUBLE_EQ(budget.tokens(), 2.0);
  EXPECT_TRUE(budget.TrySpend());
  EXPECT_TRUE(budget.TrySpend());
  EXPECT_FALSE(budget.TrySpend());  // empty
  EXPECT_EQ(budget.retries_granted(), 2);
  EXPECT_EQ(budget.retries_denied(), 1);
}

TEST(RetryBudgetTest, RequestsRefillUpToCap) {
  RetryPolicy policy;
  policy.token_cap = 1.0;
  policy.tokens_per_request = 0.5;
  RetryBudget budget(policy);
  ASSERT_TRUE(budget.TrySpend());
  EXPECT_FALSE(budget.TrySpend());
  budget.OnRequest();
  EXPECT_FALSE(budget.TrySpend());  // 0.5 tokens: not yet a whole retry
  budget.OnRequest();
  EXPECT_TRUE(budget.TrySpend());
  // The bucket clamps at the cap: a long healthy streak cannot bank an
  // unbounded retry burst.
  for (int i = 0; i < 100; ++i) budget.OnRequest();
  EXPECT_DOUBLE_EQ(budget.tokens(), 1.0);
}

TEST(RetryBudgetTest, BackoffIsExponentialAndCapped) {
  RetryPolicy policy;
  policy.base_backoff = 1000;
  policy.max_backoff = 6000;
  policy.jitter = 0.0;  // exact values
  RetryBudget budget(policy);
  Rng rng(1);
  EXPECT_EQ(budget.Backoff(1, &rng), 1000);
  EXPECT_EQ(budget.Backoff(2, &rng), 2000);
  EXPECT_EQ(budget.Backoff(3, &rng), 4000);
  EXPECT_EQ(budget.Backoff(4, &rng), 6000);  // clamped
  EXPECT_EQ(budget.Backoff(10, &rng), 6000);
}

TEST(RetryBudgetTest, JitterStaysInRangeAndNeverZero) {
  RetryPolicy policy;
  policy.base_backoff = 1000;
  policy.max_backoff = 1000000;
  policy.jitter = 0.5;
  RetryBudget budget(policy);
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const SimDuration b = budget.Backoff(2, &rng);  // nominal 2000
    EXPECT_GE(b, 1000);
    EXPECT_LE(b, 2000);
  }
  // Tiny base with full-range jitter still yields >= 1 microsecond.
  policy.base_backoff = 1;
  policy.jitter = 0.99;
  RetryBudget tiny(policy);
  for (int i = 0; i < 50; ++i) EXPECT_GE(tiny.Backoff(1, &rng), 1);
}

TEST(RetryBudgetTest, BackoffIsDeterministicPerSeed) {
  RetryPolicy policy;
  RetryBudget budget(policy);
  Rng a(123), b(123), c(124);
  std::vector<SimDuration> seq_a, seq_b, seq_c;
  for (int attempt = 1; attempt <= 8; ++attempt) {
    seq_a.push_back(budget.Backoff(attempt, &a));
    seq_b.push_back(budget.Backoff(attempt, &b));
    seq_c.push_back(budget.Backoff(attempt, &c));
  }
  EXPECT_EQ(seq_a, seq_b);  // same seed, same schedule
  EXPECT_NE(seq_a, seq_c);  // different seed diverges
}

TEST(RetryBudgetTest, PolicyValidation) {
  RetryPolicy policy;
  EXPECT_TRUE(policy.Validate().ok());
  policy.max_attempts = 0;
  EXPECT_FALSE(policy.Validate().ok());
  policy = RetryPolicy();
  policy.jitter = 1.5;
  EXPECT_FALSE(policy.Validate().ok());
  policy = RetryPolicy();
  policy.base_backoff = 0;
  EXPECT_FALSE(policy.Validate().ok());
  policy = RetryPolicy();
  policy.max_backoff = 5;
  policy.base_backoff = 10;
  EXPECT_FALSE(policy.Validate().ok());
  policy = RetryPolicy();
  policy.tokens_per_request = -0.1;
  EXPECT_FALSE(policy.Validate().ok());
}

}  // namespace
}  // namespace overload
}  // namespace pstore
