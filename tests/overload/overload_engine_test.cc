#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/engine.h"
#include "sim/simulator.h"
#include "storage/schema.h"
#include "txn/procedure.h"

/// End-to-end overload control through ClusterEngine: bounded queues,
/// admission decisions, deadline shedding, priority eviction, shed
/// results surfaced to on_done, and txn conservation.

namespace pstore {
namespace {

struct Harness {
  Catalog catalog;
  ProcedureRegistry registry;
  TableId table = -1;
  ProcedureId get = -1;
  Simulator sim;
  std::unique_ptr<ClusterEngine> engine;

  explicit Harness(const overload::OverloadConfig& overload) {
    table = *catalog.AddTable(Schema(
        "KV", {{"k", ColumnType::kInt64}, {"v", ColumnType::kInt64}}, 0));
    const TableId t = table;
    get = *registry.Register(ProcedureDef{
        "Get",
        [t](ExecutionContext& ctx, const TxnRequest& req) {
          TxnResult r;
          auto row = ctx.Get(t, req.key);
          if (!row.ok()) {
            r.status = row.status();
          } else {
            r.rows.push_back(std::move(row).MoveValueUnsafe());
          }
          return r;
        },
        1.0});
    EngineConfig config;
    config.num_buckets = 16;
    config.partitions_per_node = 2;
    config.max_nodes = 1;
    config.initial_nodes = 1;
    config.txn_service_us_mean = 1000.0;
    config.txn_service_cv = 0.0;  // deterministic 1 ms service
    config.overload = overload;
    engine = std::make_unique<ClusterEngine>(&sim, catalog, registry,
                                             config);
    for (int64_t k = 0; k < 16; ++k) {
      EXPECT_TRUE(
          engine->LoadRow(table, Row({Value(k), Value(k)})).ok());
    }
  }

  TxnRequest Req(int64_t key, int8_t priority = -1) {
    TxnRequest req;
    req.proc = get;
    req.key = key;
    req.priority = priority;
    return req;
  }
};

overload::OverloadConfig Limits(overload::AdmissionPolicy policy,
                                int32_t depth, SimDuration deadline = 0) {
  overload::OverloadConfig config;
  config.enabled = true;
  config.max_queue_depth = depth;
  config.queue_deadline = deadline;
  config.policy = policy;
  // Keep the breaker out of these tests: each exercises one mechanism.
  config.breaker.min_samples = 1 << 30;
  return config;
}

TEST(OverloadEngineTest, DisabledConfigHasNoAdmissionController) {
  Harness h{overload::OverloadConfig{}};
  EXPECT_EQ(h.engine->admission(), nullptr);
  for (int i = 0; i < 20; ++i) h.engine->Submit(h.Req(0));
  h.sim.RunAll();
  EXPECT_EQ(h.engine->txns_committed(), 20);
  EXPECT_EQ(h.engine->txns_shed(), 0);
  EXPECT_EQ(h.engine->txns_in_flight(), 0);
}

TEST(OverloadEngineTest, QueueFullShedsWithRejectNew) {
  Harness h{Limits(overload::AdmissionPolicy::kRejectNew, 4)};
  ASSERT_NE(h.engine->admission(), nullptr);
  int shed_results = 0;
  Status last_shed_status;
  for (int i = 0; i < 20; ++i) {
    h.engine->Submit(h.Req(0), [&](const TxnResult& result) {
      if (result.shed) {
        ++shed_results;
        last_shed_status = result.status;
      }
    });
  }
  // One in service + 4 queued survive; 15 are rejected synchronously.
  EXPECT_EQ(h.engine->txns_shed(), 15);
  EXPECT_EQ(h.engine->txns_in_flight(), 5);
  h.sim.RunAll();
  EXPECT_EQ(h.engine->txns_committed(), 5);
  EXPECT_EQ(shed_results, 15);
  EXPECT_TRUE(last_shed_status.IsUnavailable());
  // Conservation: submitted = committed + aborted + shed + in flight.
  EXPECT_EQ(h.engine->txns_submitted(),
            h.engine->txns_committed() + h.engine->txns_aborted() +
                h.engine->txns_shed() + h.engine->txns_in_flight());
}

TEST(OverloadEngineTest, DeadlineShedsStaleQueuedWork) {
  Harness h{Limits(overload::AdmissionPolicy::kRejectNew, 64,
                   /*deadline=*/2000)};
  for (int i = 0; i < 5; ++i) h.engine->Submit(h.Req(0));
  h.sim.RunAll();
  // Service starts at 0/1000/2000/3000/4000; deadline is arrival+2000.
  // The starts at 3000 and 4000 are past it and shed at dequeue.
  EXPECT_EQ(h.engine->txns_committed(), 3);
  EXPECT_EQ(h.engine->txns_shed(), 2);
  EXPECT_EQ(h.engine->txns_in_flight(), 0);
}

TEST(OverloadEngineTest, CriticalArrivalEvictsQueuedBackground) {
  Harness h{Limits(overload::AdmissionPolicy::kPriorityShed, 2)};
  int shed = 0;
  for (int i = 0; i < 3; ++i) {
    h.engine->Submit(h.Req(0), [&](const TxnResult& result) {
      if (result.shed) ++shed;
    });
  }
  EXPECT_EQ(h.engine->txns_shed(), 0);  // exactly at the limit
  bool critical_committed = false;
  h.engine->Submit(h.Req(0, kPriorityCritical),
                   [&](const TxnResult& result) {
                     critical_committed = result.status.ok();
                   });
  // The newest queued normal made way for the checkout-priority txn.
  EXPECT_EQ(h.engine->txns_shed(), 1);
  EXPECT_EQ(h.engine->admission()->evictions(), 1);
  EXPECT_EQ(shed, 1);
  h.sim.RunAll();
  EXPECT_TRUE(critical_committed);
  EXPECT_EQ(h.engine->txns_committed(), 3);
}

TEST(OverloadEngineTest, SustainedShedTripsNodeBreaker) {
  overload::OverloadConfig config =
      Limits(overload::AdmissionPolicy::kRejectNew, 2);
  config.breaker.window = kSecond;
  config.breaker.shed_threshold = 0.3;
  config.breaker.min_samples = 10;
  config.breaker.cooldown = 5 * kSecond;
  Harness h{config};
  // 2x capacity for 3 virtual seconds: shed rate ~0.5 per window.
  for (int i = 0; i < 6000; ++i) {
    h.sim.ScheduleAt(static_cast<SimTime>(i) * 500,
                     [&h]() { h.engine->Submit(h.Req(0)); });
  }
  h.sim.RunAll();
  EXPECT_GE(h.engine->admission()->total_trips(), 1);
  EXPECT_GT(h.engine->txns_shed(), 0);
  EXPECT_EQ(h.engine->txns_submitted(),
            h.engine->txns_committed() + h.engine->txns_aborted() +
                h.engine->txns_shed() + h.engine->txns_in_flight());
}

TEST(OverloadEngineTest, BoundedDepthNeverExceeded) {
  Harness h{Limits(overload::AdmissionPolicy::kDropTail, 4)};
  for (int i = 0; i < 200; ++i) {
    h.sim.ScheduleAt(static_cast<SimTime>(i) * 100,
                     [&h, i]() { h.engine->Submit(h.Req(i % 16)); });
  }
  h.sim.RunAll();
  for (PartitionId p = 0; p < h.engine->total_partitions(); ++p) {
    EXPECT_LE(h.engine->executor(p)->max_queue_depth(), 4u);
  }
  EXPECT_GT(h.engine->admission()->evictions(), 0);
}

}  // namespace
}  // namespace pstore
