#include "overload/admission_controller.h"

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

namespace pstore {
namespace overload {
namespace {

/// In-memory stand-in for a partition's waiting queue: just the
/// priorities, in arrival order, with the executor's eviction rules.
struct FakeQueue {
  std::vector<int8_t> priorities;

  QueueOps ops() {
    QueueOps o;
    o.queue_length = [this] { return priorities.size(); };
    o.evict_newest = [this] {
      if (priorities.empty()) return false;
      priorities.pop_back();
      return true;
    };
    o.evict_lowest_below = [this](int8_t priority) {
      int best = -1;
      for (size_t i = 0; i < priorities.size(); ++i) {
        if (priorities[i] >= priority) continue;
        if (best < 0 || priorities[i] <= priorities[best]) {
          best = static_cast<int>(i);  // <=: newest among ties
        }
      }
      if (best < 0) return false;
      priorities.erase(priorities.begin() + best);
      return true;
    };
    return o;
  }
};

OverloadConfig TestConfig(AdmissionPolicy policy) {
  OverloadConfig config;
  config.enabled = true;
  config.max_queue_depth = 3;
  config.policy = policy;
  return config;
}

TEST(AdmissionControllerTest, AdmitsBelowLimit) {
  AdmissionController admission(TestConfig(AdmissionPolicy::kRejectNew), 1);
  FakeQueue queue;
  queue.priorities = {2, 2};
  EXPECT_EQ(admission.Admit(queue.ops(), 0, 2, 0),
            AdmissionDecision::kAdmit);
  EXPECT_EQ(admission.evictions(), 0);
}

TEST(AdmissionControllerTest, RejectNewShedsArrival) {
  AdmissionController admission(TestConfig(AdmissionPolicy::kRejectNew), 1);
  FakeQueue queue;
  queue.priorities = {2, 2, 2};
  EXPECT_EQ(admission.Admit(queue.ops(), 0, 3, 0),
            AdmissionDecision::kRejectQueueFull);
  EXPECT_EQ(queue.priorities.size(), 3u);  // queue untouched
}

TEST(AdmissionControllerTest, DropTailEvictsNewest) {
  AdmissionController admission(TestConfig(AdmissionPolicy::kDropTail), 1);
  FakeQueue queue;
  queue.priorities = {2, 2, 2};
  EXPECT_EQ(admission.Admit(queue.ops(), 0, 2, 0),
            AdmissionDecision::kAdmit);
  EXPECT_EQ(queue.priorities.size(), 2u);
  EXPECT_EQ(admission.evictions(), 1);
}

TEST(AdmissionControllerTest, PriorityShedEvictsStrictlyLower) {
  AdmissionController admission(TestConfig(AdmissionPolicy::kPriorityShed),
                                1);
  FakeQueue queue;
  queue.priorities = {2, 0, 1};
  // Arrival at priority 2 may displace the priority-0 item.
  EXPECT_EQ(admission.Admit(queue.ops(), 0, 2, 0),
            AdmissionDecision::kAdmit);
  EXPECT_EQ(queue.priorities, (std::vector<int8_t>{2, 1}));
  // Queue refills with equal-priority work: no strictly-lower victim.
  queue.priorities = {2, 2, 2};
  EXPECT_EQ(admission.Admit(queue.ops(), 0, 2, 0),
            AdmissionDecision::kRejectQueueFull);
  EXPECT_EQ(admission.evictions(), 1);
}

TEST(AdmissionControllerTest, UnboundedDepthAlwaysAdmits) {
  OverloadConfig config = TestConfig(AdmissionPolicy::kRejectNew);
  config.max_queue_depth = 0;
  AdmissionController admission(config, 1);
  FakeQueue queue;
  queue.priorities.assign(1000, 2);
  EXPECT_EQ(admission.Admit(queue.ops(), 0, 0, 0),
            AdmissionDecision::kAdmit);
}

TEST(AdmissionControllerTest, OpenBreakerRejectsAllButCritical) {
  OverloadConfig config = TestConfig(AdmissionPolicy::kRejectNew);
  config.breaker.window = 1000;
  config.breaker.shed_threshold = 0.5;
  config.breaker.min_samples = 10;
  config.breaker.cooldown = 5000;
  AdmissionController admission(config, 2);
  for (int i = 0; i < 20; ++i) admission.RecordShed(0, 100);
  ASSERT_TRUE(admission.AnyBreakerOpen(1000));
  EXPECT_EQ(admission.OpenBreakerCount(1000), 1);
  EXPECT_EQ(admission.total_trips(), 1);

  FakeQueue queue;  // plenty of room: the breaker alone rejects
  EXPECT_EQ(admission.Admit(queue.ops(), 0, 2, 1500),
            AdmissionDecision::kRejectBreakerOpen);
  // Critical work (checkout path) passes an open breaker.
  EXPECT_EQ(admission.Admit(queue.ops(), 0, 3, 1500),
            AdmissionDecision::kAdmit);
  // Other nodes' breakers are independent.
  EXPECT_EQ(admission.Admit(queue.ops(), 1, 2, 1500),
            AdmissionDecision::kAdmit);
}

TEST(AdmissionControllerTest, DecisionNames) {
  EXPECT_STREQ(AdmissionDecisionName(AdmissionDecision::kAdmit), "admit");
  EXPECT_STREQ(AdmissionDecisionName(AdmissionDecision::kRejectQueueFull),
               "reject-queue-full");
  EXPECT_STREQ(AdmissionDecisionName(AdmissionDecision::kRejectBreakerOpen),
               "reject-breaker-open");
}

}  // namespace
}  // namespace overload
}  // namespace pstore
