#include "trace_analyze_lib.h"

#include <gtest/gtest.h>

#include <string>

#include "obs/exporter.h"
#include "obs/span_tracer.h"
#include "obs/txn_trace.h"

/// Round-trip of the trace toolchain: build traces with the recorder
/// and span tracer, export Chrome trace_event JSON, and check that
/// AnalyzeChromeTrace recovers per-phase attribution that sums to each
/// transaction's end-to-end latency, ranks the slowest transactions,
/// and reconstructs migration critical paths — plus rejection of
/// malformed inputs.

namespace pstore {
namespace trace {
namespace {

using obs::SpanTracer;
using obs::TxnPhase;
using obs::TxnTraceRecorder;

TxnTraceRecorder MakeRecorder() {
  TxnTraceRecorder::Config config;
  config.sample_rate = 1.0;
  config.seed = 7;
  return TxnTraceRecorder(config);
}

/// One committed txn: submitted at `t0`, admitted +10, executing +110,
/// committed +210 (total 210 us: 10 admission, 100 queued, 100
/// executing).
void AddTxn(TxnTraceRecorder* recorder, int64_t id, SimTime t0) {
  const int64_t h = recorder->Sample(id, "Get", 0, t0);
  ASSERT_GE(h, 0);
  recorder->Record(h, TxnPhase::kAdmitted, t0 + 10, 1);
  recorder->Record(h, TxnPhase::kExecuting, t0 + 110, 1);
  recorder->Record(h, TxnPhase::kCommitted, t0 + 210);
  recorder->Finalize(h, t0 + 210);
}

TEST(TraceAnalyzeTest, RoundTripAttributionSumsToLatency) {
  if (!obs::Enabled()) GTEST_SKIP() << "observability compiled out";
  TxnTraceRecorder recorder = MakeRecorder();
  AddTxn(&recorder, 1, 0);
  AddTxn(&recorder, 2, 1000);
  // A slower third txn: 500 us queued instead of 100.
  const int64_t h = recorder.Sample(3, "Put", 1, 2000);
  ASSERT_GE(h, 0);
  recorder.Record(h, TxnPhase::kAdmitted, 2010, 1);
  recorder.Record(h, TxnPhase::kExecuting, 2510, 1);
  recorder.Record(h, TxnPhase::kCommitted, 2610);
  recorder.Finalize(h, 2610);

  const std::string json = obs::ToChromeTraceJson(nullptr, &recorder);
  auto analysis = AnalyzeChromeTrace(json, 2);
  ASSERT_TRUE(analysis.ok()) << analysis.status().ToString();
  EXPECT_EQ(analysis->txns, 3);

  // Phase totals: admission 3x10, queued 100+100+500, executing 3x100.
  int64_t total = 0;
  for (const PhaseStat& p : analysis->attribution) total += p.total_us;
  EXPECT_EQ(total, 210 + 210 + 610);
  for (const PhaseStat& p : analysis->attribution) {
    if (p.phase == "admission") EXPECT_EQ(p.total_us, 30);
    if (p.phase == "queued") EXPECT_EQ(p.total_us, 700);
    if (p.phase == "executing") EXPECT_EQ(p.total_us, 300);
    EXPECT_EQ(p.count, 3);
  }
  // Attribution is sorted by total: queued dominates.
  ASSERT_FALSE(analysis->attribution.empty());
  EXPECT_EQ(analysis->attribution[0].phase, "queued");

  // top_k = 2 keeps the slowest two; txn 3 leads with its breakdown.
  ASSERT_EQ(analysis->slowest.size(), 2u);
  EXPECT_EQ(analysis->slowest[0].tid, 3);
  EXPECT_EQ(analysis->slowest[0].proc, "Put");
  EXPECT_EQ(analysis->slowest[0].total_us, 610);
  int64_t breakdown = 0;
  for (const PhaseStat& p : analysis->slowest[0].phases) {
    breakdown += p.total_us;
  }
  EXPECT_EQ(breakdown, analysis->slowest[0].total_us);

  const std::string report = RenderAnalysis(*analysis);
  EXPECT_NE(report.find("Per-phase latency attribution"),
            std::string::npos);
  EXPECT_NE(report.find("txn 3 (Put)"), std::string::npos);
  EXPECT_NE(report.find("(no migrations in trace)"), std::string::npos);
}

TEST(TraceAnalyzeTest, MigrationCriticalPathFromSpans) {
  if (!obs::Enabled()) GTEST_SKIP() << "observability compiled out";
  SpanTracer tracer;
  const auto move = tracer.BeginAt("migration.move 2->3", 1000);
  const auto r0 = tracer.BeginAt("migration.round 0", 1100);
  tracer.EndAt(r0, 4100);  // 3 ms: the critical round
  const auto r1 = tracer.BeginAt("migration.round 1", 4200);
  tracer.EndAt(r1, 4700);
  tracer.EndAt(move, 5000);

  const std::string json = obs::ToChromeTraceJson(&tracer, nullptr);
  auto analysis = AnalyzeChromeTrace(json, 10);
  ASSERT_TRUE(analysis.ok()) << analysis.status().ToString();
  EXPECT_EQ(analysis->txns, 0);
  ASSERT_EQ(analysis->migrations.size(), 1u);
  const MigrationCritical& mc = analysis->migrations[0];
  EXPECT_EQ(mc.name, "migration.move 2->3");
  EXPECT_EQ(mc.start_us, 1000);
  EXPECT_EQ(mc.duration_us, 4000);
  EXPECT_EQ(mc.rounds, 2);
  EXPECT_EQ(mc.longest_round, "migration.round 0");
  EXPECT_EQ(mc.longest_round_us, 3000);
}

TEST(TraceAnalyzeTest, RejectsMalformedInput) {
  EXPECT_FALSE(AnalyzeChromeTrace("not json", 10).ok());
  EXPECT_FALSE(AnalyzeChromeTrace("[]", 10).ok());
  EXPECT_FALSE(AnalyzeChromeTrace("{\"traceEvents\": 3}", 10).ok());
  // Unbalanced B/E pairs are a structural error, not silent data.
  const std::string unbalanced =
      "{\"traceEvents\": ["
      "{\"name\": \"queued\", \"ph\": \"E\", \"ts\": 5, \"pid\": 1, "
      "\"tid\": 9}]}";
  const auto result = AnalyzeChromeTrace(unbalanced, 10);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().ToString().find("unmatched E"),
            std::string::npos);
}

TEST(TraceAnalyzeTest, EmptyTraceAnalyzesToEmptyReport) {
  auto analysis = AnalyzeChromeTrace("{\"traceEvents\": []}", 10);
  ASSERT_TRUE(analysis.ok());
  EXPECT_EQ(analysis->txns, 0);
  EXPECT_TRUE(analysis->attribution.empty());
  EXPECT_TRUE(analysis->slowest.empty());
  // The renderer still produces the section scaffolding.
  const std::string report = RenderAnalysis(*analysis);
  EXPECT_NE(report.find("0 sampled txns"), std::string::npos);
}

}  // namespace
}  // namespace trace
}  // namespace pstore
