#include "bench_compare_lib.h"

#include <gtest/gtest.h>

#include <string>

namespace pstore {
namespace bench {
namespace {

/// Builds a single-run bench document with the given (name, ns) cases.
JsonValue MakeRun(const std::vector<std::pair<std::string, double>>& cases) {
  JsonValue doc = JsonValue::Object();
  doc.Set("schema_version", JsonValue(static_cast<int64_t>(1)));
  doc.Set("bench", JsonValue("synthetic"));
  doc.Set("kind", JsonValue("perf"));
  JsonValue arr = JsonValue::Array();
  for (const auto& [name, ns] : cases) {
    JsonValue c = JsonValue::Object();
    c.Set("name", JsonValue(name));
    c.Set("unit", JsonValue("ns/op"));
    c.Set("value", JsonValue(ns));
    arr.Append(std::move(c));
  }
  doc.Set("cases", std::move(arr));
  return doc;
}

const CaseComparison* FindCase(const CompareReport& report,
                               const std::string& name) {
  for (const CaseComparison& c : report.cases) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

TEST(BenchCompareTest, IdenticalRunsPass) {
  JsonValue run = MakeRun({{"a", 100.0}, {"b", 200.0}, {"c", 300.0}});
  auto report = CompareBenchDocs(run, run, CompareOptions{});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->pass);
  EXPECT_EQ(report->regressed, 0);
  EXPECT_EQ(report->missing, 0);
  EXPECT_DOUBLE_EQ(report->median_ratio, 1.0);
}

TEST(BenchCompareTest, ImprovementPassesAndIsFlagged) {
  JsonValue baseline = MakeRun({{"a", 100.0}, {"b", 200.0}, {"c", 300.0}});
  // "a" got 4x faster; the others are unchanged.
  JsonValue current = MakeRun({{"a", 25.0}, {"b", 200.0}, {"c", 300.0}});
  auto report = CompareBenchDocs(baseline, current, CompareOptions{});
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->pass);
  EXPECT_EQ(report->improved, 1);
  const CaseComparison* a = FindCase(*report, "a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->status, CaseStatus::kImproved);
}

TEST(BenchCompareTest, SingleCaseRegressionOverThresholdFails) {
  JsonValue baseline = MakeRun({{"a", 100.0}, {"b", 200.0}, {"c", 300.0}});
  // Injected 2x slowdown on one case. Median ratio stays 1.0 (the other
  // two cases are unchanged), so normalization cannot launder it:
  // 2.0 > 1.5 with the default 0.5 threshold.
  JsonValue current = MakeRun({{"a", 200.0}, {"b", 200.0}, {"c", 300.0}});
  auto report = CompareBenchDocs(baseline, current, CompareOptions{});
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->pass);
  EXPECT_EQ(report->regressed, 1);
  const CaseComparison* a = FindCase(*report, "a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->status, CaseStatus::kRegressed);
  EXPECT_NEAR(a->normalized_ratio, 2.0, 1e-12);
}

TEST(BenchCompareTest, UniformSlowdownCancelsUnderNormalization) {
  JsonValue baseline = MakeRun({{"a", 100.0}, {"b", 200.0}, {"c", 300.0}});
  // Everything 3x slower — a slower machine, not a regression.
  JsonValue current = MakeRun({{"a", 300.0}, {"b", 600.0}, {"c", 900.0}});
  auto report = CompareBenchDocs(baseline, current, CompareOptions{});
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->pass);
  EXPECT_NEAR(report->median_ratio, 3.0, 1e-12);

  // With normalization off the same pair fails everywhere.
  CompareOptions raw;
  raw.normalize = false;
  auto raw_report = CompareBenchDocs(baseline, current, raw);
  ASSERT_TRUE(raw_report.ok());
  EXPECT_FALSE(raw_report->pass);
  EXPECT_EQ(raw_report->regressed, 3);
}

TEST(BenchCompareTest, MissingCaseFails) {
  JsonValue baseline = MakeRun({{"a", 100.0}, {"b", 200.0}});
  JsonValue current = MakeRun({{"a", 100.0}});
  auto report = CompareBenchDocs(baseline, current, CompareOptions{});
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->pass);
  EXPECT_EQ(report->missing, 1);
  const CaseComparison* b = FindCase(*report, "b");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->status, CaseStatus::kMissing);
}

TEST(BenchCompareTest, NewCaseIsInformationalOnly) {
  JsonValue baseline = MakeRun({{"a", 100.0}});
  JsonValue current = MakeRun({{"a", 100.0}, {"z", 50.0}});
  auto report = CompareBenchDocs(baseline, current, CompareOptions{});
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->pass);
  EXPECT_EQ(report->added, 1);
  const CaseComparison* z = FindCase(*report, "z");
  ASSERT_NE(z, nullptr);
  EXPECT_EQ(z->status, CaseStatus::kNew);
}

TEST(BenchCompareTest, MetricsCasesAreNotGated) {
  JsonValue baseline = MakeRun({{"a", 100.0}});
  JsonValue current = MakeRun({{"a", 100.0}});
  // Add a non-ns/op metrics case to the baseline only; it must not
  // register as missing.
  JsonValue metrics = JsonValue::Object();
  metrics.Set("name", JsonValue("commit_rate"));
  metrics.Set("unit", JsonValue("txn/s"));
  metrics.Set("value", JsonValue(12345.0));
  JsonValue cases = *baseline.Get("cases");
  cases.Append(std::move(metrics));
  baseline.Set("cases", std::move(cases));
  auto report = CompareBenchDocs(baseline, current, CompareOptions{});
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->pass);
  EXPECT_EQ(report->missing, 0);
}

TEST(BenchCompareTest, TrajectoryBaselineUsesLastRun) {
  // runs[0] is the slow "before" snapshot; runs[1] is the accepted
  // optimized baseline. The gate must compare against runs[1].
  JsonValue doc = JsonValue::Object();
  doc.Set("schema_version", JsonValue(static_cast<int64_t>(1)));
  doc.Set("bench", JsonValue("synthetic"));
  doc.Set("kind", JsonValue("perf"));
  JsonValue runs = JsonValue::Array();
  JsonValue before = JsonValue::Object();
  before.Set("label", JsonValue("before"));
  before.Set("cases", *MakeRun({{"a", 1000.0}, {"b", 50.0}}).Get("cases"));
  runs.Append(std::move(before));
  JsonValue after = JsonValue::Object();
  after.Set("label", JsonValue("after"));
  after.Set("cases", *MakeRun({{"a", 100.0}, {"b", 50.0}}).Get("cases"));
  runs.Append(std::move(after));
  doc.Set("runs", std::move(runs));

  // Current matches the old "before" numbers: a 10x regression against
  // the accepted baseline ("b" anchors the median at 1.0), so the gate
  // fails.
  JsonValue current = MakeRun({{"a", 1000.0}, {"b", 50.0}});
  auto report = CompareBenchDocs(doc, current, CompareOptions{});
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->pass);
  EXPECT_EQ(report->regressed, 1);
}

TEST(BenchCompareTest, AppendRunConvertsAndExtends) {
  JsonValue baseline = MakeRun({{"a", 100.0}});
  JsonValue current = MakeRun({{"a", 80.0}});
  ASSERT_TRUE(AppendRunToBaseline(&baseline, current, "opt-1").ok());
  const JsonValue* runs = baseline.Get("runs");
  ASSERT_NE(runs, nullptr);
  ASSERT_EQ(runs->size(), 2u);
  EXPECT_EQ(runs->at(0).GetStringOr("label", ""), "baseline");
  EXPECT_EQ(runs->at(1).GetStringOr("label", ""), "opt-1");

  // The gate now compares against the appended run.
  auto latest = ExtractLatestCases(baseline);
  ASSERT_TRUE(latest.ok());
  EXPECT_DOUBLE_EQ(latest->at(0).GetNumberOr("value", 0.0), 80.0);

  // Appending again extends the trajectory without re-converting.
  ASSERT_TRUE(AppendRunToBaseline(&baseline, current, "opt-2").ok());
  EXPECT_EQ(baseline.Get("runs")->size(), 3u);
}

TEST(BenchCompareTest, MalformedInputIsAStatusErrorNotAFailVerdict) {
  JsonValue bad = JsonValue::Object();  // no schema_version
  JsonValue good = MakeRun({{"a", 100.0}});
  auto report = CompareBenchDocs(bad, good, CompareOptions{});
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.status().IsInvalidArgument());
}

TEST(BenchCompareTest, ToStringNamesTheVerdict) {
  JsonValue baseline = MakeRun({{"a", 100.0}, {"b", 200.0}});
  JsonValue current = MakeRun({{"a", 400.0}, {"b", 200.0}});
  auto report = CompareBenchDocs(baseline, current, CompareOptions{});
  ASSERT_TRUE(report.ok());
  const std::string text = report->ToString();
  EXPECT_NE(text.find("REGRESSED"), std::string::npos);
  EXPECT_NE(text.find("FAIL"), std::string::npos);
}

}  // namespace
}  // namespace bench
}  // namespace pstore
