#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "../test_util.h"
#include "core/reactive_controller.h"
#include "fault/fault_injector.h"
#include "fault/invariant_checker.h"

/// Chaos property tests for the network substrate: random partition /
/// loss / delay plans (with crashes mixed in) against a k=1 cluster
/// running a write workload while a scale-out migrates buckets through
/// the fault windows. Every seed must keep every invariant — no
/// dual-commit (split-brain), no double-applied chunk, conserved rows
/// and messages, row-set equality after heal — and same-seed runs must
/// replay byte-identically. A final pair of tests pins the opt-in
/// contract: with net.enabled=false no NetworkModel exists, net faults
/// draw nothing from any Rng stream, and runs are byte-identical across
/// arbitrary (disabled) NetConfig values.

namespace pstore {
namespace {

using testing_util::MakeKvDatabase;
using testing_util::SmallEngineConfig;

struct NetChaosOutcome {
  std::string plan;
  std::string trace;
  uint64_t trace_fingerprint = 0;
  std::vector<std::string> violations;
  int64_t events_executed = 0;
  int64_t committed = 0;
  int64_t net_partitions = 0;
  int64_t net_losses = 0;
  int64_t net_delays = 0;
  int64_t suspicions = 0;
  int64_t fenced_failovers = 0;
  int64_t fenced_rejections = 0;
  int64_t fenced_commits = 0;
  int64_t net_retransmits = 0;
  int64_t net_double_applies = 0;
  int64_t msgs_dropped = 0;
  int64_t degraded_at_end = 0;
  int64_t rows_at_end = 0;
  int64_t rows_lost = 0;
  int64_t rows_net_created = 0;
};

/// One seeded net-chaos run: 3 nodes, k=1, net enabled, mixed Put/Get
/// load, a 2 s scale-out racing the fault plan (partition-during-
/// migration), and a net-heavy random plan.
NetChaosOutcome RunNetChaos(uint64_t seed) {
  auto db = MakeKvDatabase();
  Simulator sim;
  EngineConfig config = SmallEngineConfig();
  config.initial_nodes = 3;
  config.txn_service_us_mean = 5000.0;
  config.replication.enabled = true;
  config.replication.k = 1;
  config.replication.db_size_mb = 10.0;
  config.replication.rebuild_chunk_kb = 100.0;
  config.replication.rebuild_rate_kbps = 10000.0;
  config.replication.wire_kbps = 100000.0;
  config.replication.checkpoint_period = 5 * kSecond;
  config.net.enabled = true;
  ClusterEngine engine(&sim, db.catalog, db.registry, config);
  const int64_t rows = 200;
  for (int64_t k = 0; k < rows; ++k) {
    EXPECT_TRUE(engine.LoadRow(db.table, Row({Value(k), Value(k)})).ok());
  }

  MigrationOptions migration;
  migration.chunk_kb = 100;
  migration.rate_kbps = 10000;
  migration.wire_kbps = 100000;
  migration.db_size_mb = 10;
  MigrationExecutor migrator(&engine, migration);

  ReactiveConfig reactive;
  reactive.q = 100.0;
  reactive.q_hat = 125.0;
  reactive.high_watermark = 0.9;
  reactive.monitor_period = kSecond;
  reactive.scale_in_hold = 5 * kSecond;
  ReactiveController controller(&engine, &migrator, reactive);
  controller.Start();

  Rng plan_rng(seed ^ 0x9e3779b97f4a7c15ULL);
  ChaosConfig chaos;
  chaos.horizon = 40 * kSecond;
  chaos.num_events = 6;
  chaos.max_window = 10 * kSecond;
  chaos.max_stall = 20 * kMillisecond;
  // Net faults dominate: this suite is about partitions, message loss
  // and fencing, with enough crash/restart mixed in to interleave the
  // two failure modes (a crash during a partition must still promote).
  chaos.crash_weight = 0.5;
  chaos.restart_weight = 0.5;
  chaos.stall_weight = 0.0;
  chaos.chunk_failure_weight = 0.0;
  chaos.misforecast_weight = 0.0;
  chaos.net_partition_weight = 2.0;
  chaos.net_loss_weight = 1.5;
  chaos.net_delay_weight = 1.0;
  const FaultPlan plan = RandomFaultPlan(&plan_rng, chaos);
  FaultInjector injector(&engine, &migrator, seed);
  EXPECT_TRUE(injector.Arm(plan).ok());

  InvariantChecker checker(&engine, &migrator);
  checker.set_expected_rows(rows);
  checker.StartPeriodic(kSecond);

  // A scale-out racing the whole plan: its chunk streams cross every
  // partition/loss window the plan opens (the titular scenario).
  sim.ScheduleAt(2 * kSecond,
                 [&migrator]() { (void)migrator.StartMove(5, nullptr); });

  // 100 txn/s, 1-in-4 writes.
  const double seconds = 60.0;
  auto generate = std::make_shared<std::function<void(int64_t)>>();
  *generate = [&](int64_t i) {
    if (sim.Now() >= SecondsToDuration(seconds)) return;
    TxnRequest req;
    req.key = (i * 48271) % rows;
    if (i % 4 == 0) {
      req.proc = db.put;
      req.args.push_back(Value(i));
    } else {
      req.proc = db.get;
    }
    engine.Submit(std::move(req));
    sim.Schedule(10 * kMillisecond, [&, i]() { (*generate)(i + 1); });
  };
  sim.Schedule(0, [&]() { (*generate)(0); });

  sim.RunUntil(SecondsToDuration(seconds));
  checker.Stop();
  controller.Stop();
  // Drain: every window expires, the cluster heals, rebuilds restore k.
  sim.RunUntil(SecondsToDuration(seconds + 60));

  Status final_check = checker.Check();
  EXPECT_TRUE(final_check.ok()) << final_check.ToString();

  NetChaosOutcome out;
  out.plan = plan.ToString();
  out.trace = injector.trace().ToString();
  out.trace_fingerprint = injector.trace().Fingerprint();
  for (const InvariantViolation& v : checker.violations()) {
    out.violations.push_back(v.ToString());
  }
  out.events_executed = sim.events_executed();
  out.committed = engine.txns_committed();
  out.net_partitions = injector.net_partitions();
  out.net_losses = injector.net_losses();
  out.net_delays = injector.net_delays();
  out.suspicions = engine.suspicions();
  out.fenced_failovers = engine.fenced_failovers();
  out.fenced_rejections = engine.fenced_rejections();
  out.fenced_commits = engine.fenced_commits();
  out.net_retransmits = migrator.net_retransmits();
  out.net_double_applies = migrator.net_double_applies();
  out.msgs_dropped = engine.net()->messages_dropped_partition() +
                     engine.net()->messages_dropped_loss();
  out.degraded_at_end = engine.replication()->degraded_buckets();
  out.rows_at_end = engine.TotalRowCount();
  out.rows_lost = engine.rows_lost();
  out.rows_net_created = engine.rows_net_created();
  return out;
}

// The 50-seed sweep is sharded 5 seeds per ctest unit so `ctest -j`
// runs shards concurrently (and a failure names a 5-seed range, not a
// 50-seed monolith). The shard parameter is the first seed.
constexpr uint64_t kSeedsPerShard = 5;

class NetSeedShard : public ::testing::TestWithParam<uint64_t> {};

TEST_P(NetSeedShard, NoSplitBrainNoDoubleApply) {
  const uint64_t first = GetParam();
  for (uint64_t seed = first; seed < first + kSeedsPerShard; ++seed) {
    const NetChaosOutcome out = RunNetChaos(seed);
    EXPECT_TRUE(out.violations.empty())
        << "seed " << seed << ": " << out.violations.size()
        << " violations; first: " << out.violations[0] << "\nplan:\n"
        << out.plan << "\ntrace:\n"
        << out.trace;
    // The two split-brain tripwires, per seed, unconditionally.
    EXPECT_EQ(out.fenced_commits, 0) << "seed " << seed;
    EXPECT_EQ(out.net_double_applies, 0) << "seed " << seed;
    // Row conservation after heal: crash losses are accounted, and the
    // write workload may legally re-create lost keys via upsert.
    EXPECT_EQ(out.rows_at_end, 200 - out.rows_lost + out.rows_net_created)
        << "seed " << seed;
    EXPECT_GT(out.committed, 0) << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(FiftySeeds, NetSeedShard,
                         ::testing::Range(uint64_t{1}, uint64_t{51},
                                          kSeedsPerShard));

TEST(NetChaosTest, SweepExercisesNetworkMachinery) {
  // Scaled-down aggregate over the first ten seeds: partitions open,
  // messages drop, nodes get suspected and fenced, failovers run, the
  // commit gate rejects, and the chunk protocol retransmits. (The
  // per-seed invariants live in the shards.)
  int64_t total_partitions = 0, total_losses = 0, total_delays = 0;
  int64_t total_suspicions = 0, total_failovers = 0, total_rejections = 0;
  int64_t total_retransmits = 0, total_dropped = 0;
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    const NetChaosOutcome out = RunNetChaos(seed);
    total_partitions += out.net_partitions;
    total_losses += out.net_losses;
    total_delays += out.net_delays;
    total_suspicions += out.suspicions;
    total_failovers += out.fenced_failovers;
    total_rejections += out.fenced_rejections;
    total_retransmits += out.net_retransmits;
    total_dropped += out.msgs_dropped;
  }
  EXPECT_GT(total_partitions, 6);
  EXPECT_GT(total_losses, 4);
  EXPECT_GT(total_delays, 3);
  EXPECT_GT(total_suspicions, 6);
  EXPECT_GT(total_failovers, 2);
  EXPECT_GT(total_rejections, 10);
  EXPECT_GT(total_retransmits, 2);
  EXPECT_GT(total_dropped, 200);
}

TEST(NetChaosTest, SameSeedReplaysIdentically) {
  const NetChaosOutcome a = RunNetChaos(42);
  const NetChaosOutcome b = RunNetChaos(42);
  EXPECT_EQ(a.plan, b.plan);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.trace_fingerprint, b.trace_fingerprint);
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.committed, b.committed);
  EXPECT_EQ(a.suspicions, b.suspicions);
  EXPECT_EQ(a.fenced_failovers, b.fenced_failovers);
  EXPECT_EQ(a.fenced_rejections, b.fenced_rejections);
  EXPECT_EQ(a.net_retransmits, b.net_retransmits);
  EXPECT_EQ(a.msgs_dropped, b.msgs_dropped);
  EXPECT_TRUE(a.violations.empty());
}

TEST(NetChaosTest, DifferentSeedsDiverge) {
  const NetChaosOutcome a = RunNetChaos(3);
  const NetChaosOutcome b = RunNetChaos(4);
  EXPECT_NE(a.plan, b.plan);
  EXPECT_NE(a.trace_fingerprint, b.trace_fingerprint);
}

// ---- The opt-in contract (Rng stream audit regressions) -------------

/// A baseline (net-off) run, parameterized by a NetConfig whose
/// `enabled` stays false: every field of the disabled config must be
/// inert, or toggling unrelated knobs would perturb golden traces.
std::pair<int64_t, int64_t> RunBaseline(net::NetConfig net) {
  auto db = MakeKvDatabase();
  Simulator sim;
  EngineConfig config = SmallEngineConfig();
  config.initial_nodes = 3;
  config.replication.enabled = true;
  config.replication.k = 1;
  config.replication.db_size_mb = 10.0;
  config.replication.rebuild_chunk_kb = 100.0;
  config.replication.rebuild_rate_kbps = 10000.0;
  config.replication.wire_kbps = 100000.0;
  config.net = net;
  ClusterEngine engine(&sim, db.catalog, db.registry, config);
  EXPECT_EQ(engine.net(), nullptr);
  const int64_t rows = 100;
  for (int64_t k = 0; k < rows; ++k) {
    EXPECT_TRUE(engine.LoadRow(db.table, Row({Value(k), Value(k)})).ok());
  }
  MigrationOptions opts;
  opts.chunk_kb = 100;
  opts.rate_kbps = 10000;
  opts.wire_kbps = 100000;
  opts.db_size_mb = 10;
  MigrationExecutor migrator(&engine, opts);
  (void)migrator.StartMove(5, nullptr);
  for (int64_t i = 0; i < 200; ++i) {
    TxnRequest req;
    req.key = i % rows;
    req.proc = i % 4 == 0 ? db.put : db.get;
    if (i % 4 == 0) req.args.push_back(Value(i));
    sim.ScheduleAt(i * 10 * kMillisecond,
                   [&engine, req]() { engine.Submit(req); });
  }
  sim.RunUntil(30 * kSecond);
  return {sim.events_executed(), engine.txns_committed()};
}

TEST(NetOffIdentityTest, DisabledNetConfigKnobsAreInert) {
  const auto base = RunBaseline(net::NetConfig{});
  net::NetConfig wild;
  wild.enabled = false;  // still off — but every other knob extreme
  wild.min_latency_us = 5000.0;
  wild.mean_latency_us = 50000.0;
  wild.heartbeat_period = kMillisecond;
  wild.suspicion_timeout = 2 * kMillisecond;
  wild.lease_timeout = 3 * kMillisecond;
  wild.failover_timeout = 4 * kMillisecond;
  wild.retransmit_timeout_factor = 100.0;
  EXPECT_EQ(base, RunBaseline(wild));
  EXPECT_GT(base.second, 0);
}

TEST(NetOffIdentityTest, NetFaultEventsDrawNothingWhenSubstrateOff) {
  auto db = MakeKvDatabase();
  Simulator sim;
  EngineConfig config = SmallEngineConfig();
  ClusterEngine engine(&sim, db.catalog, db.registry, config);
  MigrationOptions opts;
  opts.chunk_kb = 100;
  opts.rate_kbps = 10000;
  opts.wire_kbps = 100000;
  opts.db_size_mb = 10;
  MigrationExecutor migrator(&engine, opts);

  const uint64_t seed = 77;
  FaultPlan plan;
  for (int i = 0; i < 3; ++i) {
    FaultEvent e;
    e.at = (i + 1) * kSecond;
    e.type = i == 0 ? FaultType::kNetPartition
                    : i == 1 ? FaultType::kNetLoss : FaultType::kNetDelay;
    e.duration = kSecond;
    e.probability = 0.5;
    e.stall = kMillisecond;
    plan.events.push_back(e);
  }
  FaultInjector injector(&engine, &migrator, seed);
  ASSERT_TRUE(injector.Arm(plan).ok());
  sim.RunUntil(10 * kSecond);
  // Every event fired, was recorded as skipped, and consumed NOTHING
  // from the injector's Rng — the stream audit that keeps pre-existing
  // chaos traces byte-identical when this binary gains net fault types.
  EXPECT_EQ(injector.net_partitions(), 0);
  EXPECT_EQ(injector.net_losses(), 0);
  EXPECT_EQ(injector.net_delays(), 0);
  EXPECT_EQ(injector.rng_state_hash(), Rng(seed).StateHash());
  EXPECT_NE(injector.trace().ToString().find("skipped"), std::string::npos);
}

TEST(NetOffIdentityTest, DefaultChaosPlansContainNoNetFaults) {
  // The net weights sit in trailing zero-weight buckets: default plans
  // must never draw a net event (pre-existing seeds stay unchanged).
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    ChaosConfig chaos;
    chaos.num_events = 20;
    const FaultPlan plan = RandomFaultPlan(&rng, chaos);
    for (const FaultEvent& e : plan.events) {
      EXPECT_NE(e.type, FaultType::kNetPartition) << "seed " << seed;
      EXPECT_NE(e.type, FaultType::kNetLoss) << "seed " << seed;
      EXPECT_NE(e.type, FaultType::kNetDelay) << "seed " << seed;
    }
  }
}

}  // namespace
}  // namespace pstore
