#include "net/network_model.h"

#include <gtest/gtest.h>

#include <vector>

#include "net/channel.h"
#include "net/net_config.h"
#include "sim/simulator.h"

/// Unit tests for the simulated message substrate: latency bounds and
/// reordering, partition cuts, loss/duplication/delay windows, the
/// deterministic test fault hook, reliable-tier semantics, the message
/// conservation ledger, and same-seed determinism.

namespace pstore {
namespace net {
namespace {

NetConfig TestConfig() {
  NetConfig config;
  config.enabled = true;
  return config;
}

TEST(NetConfigTest, ValidateEnforcesTimerChain) {
  NetConfig config = TestConfig();
  EXPECT_TRUE(config.Validate().ok());
  config.suspicion_timeout = config.heartbeat_period;  // not strictly >
  EXPECT_FALSE(config.Validate().ok());
  config = TestConfig();
  config.lease_timeout = config.failover_timeout + kSecond;
  EXPECT_FALSE(config.Validate().ok());
  config = TestConfig();
  config.mean_latency_us = config.min_latency_us / 2;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(NetworkModelTest, LatencyRespectsMinimumAndVaries) {
  Simulator sim;
  NetworkModel net(&sim, TestConfig(), 7);
  std::vector<SimDuration> latencies;
  for (int i = 0; i < 200; ++i) latencies.push_back(net.DrawLatency());
  bool varied = false;
  for (SimDuration l : latencies) {
    EXPECT_GE(l, static_cast<SimDuration>(TestConfig().min_latency_us));
    if (l != latencies[0]) varied = true;
  }
  EXPECT_TRUE(varied) << "exponential excess should vary per message";
}

TEST(NetworkModelTest, DeliversWithLatencyAndCounts) {
  Simulator sim;
  NetworkModel net(&sim, TestConfig(), 7);
  int delivered = 0;
  SimTime at = -1;
  net.Send(0, 1, MessageKind::kHeartbeat, false, [&]() {
    ++delivered;
    at = sim.Now();
  });
  EXPECT_EQ(net.messages_in_flight(), 1);
  sim.RunUntil(kSecond);
  EXPECT_EQ(delivered, 1);
  EXPECT_GE(at, static_cast<SimTime>(TestConfig().min_latency_us));
  EXPECT_EQ(net.messages_sent(), 1);
  EXPECT_EQ(net.messages_delivered(), 1);
  EXPECT_EQ(net.messages_in_flight(), 0);
}

TEST(NetworkModelTest, PartitionDropsCrossCutTrafficThenHeals) {
  Simulator sim;
  NetworkModel net(&sim, TestConfig(), 7);
  net.OpenPartition({2}, kSecond);
  EXPECT_TRUE(net.PartitionActive());
  EXPECT_FALSE(net.Reachable(0, 2));
  EXPECT_FALSE(net.Reachable(2, NetworkModel::kController));
  EXPECT_TRUE(net.Reachable(0, 1));  // same side of the cut
  EXPECT_TRUE(net.Reachable(2, 2));  // loopback never cut

  int delivered = 0;
  net.Send(0, 2, MessageKind::kHeartbeat, false, [&]() { ++delivered; });
  net.Send(0, 1, MessageKind::kHeartbeat, false, [&]() { ++delivered; });
  sim.RunUntil(kSecond + kMillisecond);
  EXPECT_EQ(delivered, 1);  // only the same-side message landed
  EXPECT_EQ(net.messages_dropped_partition(), 1);

  // The window expired: the cut is healed without any explicit action.
  EXPECT_FALSE(net.PartitionActive());
  EXPECT_TRUE(net.Reachable(0, 2));
  net.Send(0, 2, MessageKind::kHeartbeat, false, [&]() { ++delivered; });
  sim.RunUntil(2 * kSecond);
  EXPECT_EQ(delivered, 2);
}

TEST(NetworkModelTest, ReliableTierIgnoresPartitionAndLoss) {
  Simulator sim;
  NetworkModel net(&sim, TestConfig(), 7);
  net.OpenPartition({1}, kSecond);
  net.OpenLoss(1.0, 0.0, kSecond);  // drop every best-effort message
  int delivered = 0;
  net.Send(0, 1, MessageKind::kReplApply, true, [&]() { ++delivered; });
  net.Send(0, 1, MessageKind::kHeartbeat, false, [&]() { ++delivered; });
  sim.RunUntil(kSecond);
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(net.messages_dropped_partition(), 1);
}

TEST(NetworkModelTest, LossWindowDropsAndDuplicates) {
  Simulator sim;
  NetworkModel net(&sim, TestConfig(), 7);
  net.OpenLoss(0.5, 0.3, 10 * kSecond);
  int delivered = 0;
  const int kSends = 400;
  for (int i = 0; i < kSends; ++i) {
    net.Send(0, 1, MessageKind::kChunkData, false, [&]() { ++delivered; });
  }
  sim.RunUntil(20 * kSecond);
  EXPECT_GT(net.messages_dropped_loss(), 0);
  EXPECT_GT(net.messages_duplicated(), 0);
  EXPECT_EQ(delivered,
            kSends - net.messages_dropped_loss() + net.messages_duplicated());
  // Conservation ledger: everything sent is accounted exactly once.
  EXPECT_EQ(net.messages_delivered() + net.messages_dropped_partition() +
                net.messages_dropped_loss() + net.messages_in_flight(),
            net.messages_sent() + net.messages_duplicated());
}

TEST(NetworkModelTest, DelayWindowStretchesLatency) {
  Simulator sim;
  NetworkModel net(&sim, TestConfig(), 7);
  const SimDuration extra = 50 * kMillisecond;
  net.OpenDelay(extra, kSecond);
  SimTime at = -1;
  net.Send(0, 1, MessageKind::kHeartbeat, false, [&](){ at = sim.Now(); });
  sim.RunUntil(kSecond);
  EXPECT_GE(at, extra);
}

TEST(NetworkModelTest, FaultHookDropsAndDuplicatesByKindIndex) {
  Simulator sim;
  NetworkModel net(&sim, TestConfig(), 7);
  net.set_message_fault_hook([](NodeId, NodeId, MessageKind kind,
                                int64_t kind_index) {
    MessageFault fault;
    if (kind != MessageKind::kChunkData) return fault;
    if (kind_index == 0) fault.kind = MessageFault::Kind::kDrop;
    if (kind_index == 1) fault.kind = MessageFault::Kind::kDuplicate;
    return fault;
  });
  int data = 0, acks = 0;
  for (int i = 0; i < 3; ++i) {
    net.Send(0, 1, MessageKind::kChunkData, false, [&]() { ++data; });
    net.Send(1, 0, MessageKind::kChunkAck, false, [&]() { ++acks; });
  }
  sim.RunUntil(kSecond);
  EXPECT_EQ(data, 3);  // send 0 dropped, send 1 doubled, send 2 plain
  EXPECT_EQ(acks, 3);  // the hook keyed on kind: acks untouched
  EXPECT_EQ(net.messages_dropped_loss(), 1);
  EXPECT_EQ(net.messages_duplicated(), 1);
}

TEST(NetworkModelTest, SameSeedIsByteIdentical) {
  auto run = [](uint64_t seed) {
    Simulator sim;
    NetworkModel net(&sim, TestConfig(), seed);
    net.OpenLoss(0.3, 0.2, 5 * kSecond);
    std::vector<SimTime> deliveries;
    for (int i = 0; i < 100; ++i) {
      net.Send(0, 1, MessageKind::kChunkData, false,
               [&]() { deliveries.push_back(sim.Now()); });
    }
    sim.RunUntil(10 * kSecond);
    return std::make_pair(deliveries, net.rng_state_hash());
  };
  const auto a = run(42);
  const auto b = run(42);
  const auto c = run(43);
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
  EXPECT_NE(a.first, c.first);
}

TEST(ChannelTest, SequenceDedupAndAckWatermarks) {
  Channel ch;
  const int64_t s1 = ch.NextSeq();
  const int64_t s2 = ch.NextSeq();
  EXPECT_EQ(s1, 1);
  EXPECT_EQ(s2, 2);
  EXPECT_TRUE(ch.Accept(s1));
  EXPECT_FALSE(ch.Accept(s1));  // retransmit of an applied seq
  EXPECT_EQ(ch.duplicates_suppressed(), 1);
  EXPECT_TRUE(ch.Accept(s2));
  EXPECT_TRUE(ch.AckReceived(s1));
  EXPECT_FALSE(ch.AckReceived(s1));  // duplicate ack
  EXPECT_EQ(ch.duplicate_acks(), 1);
  EXPECT_TRUE(ch.AckReceived(s2));
}

}  // namespace
}  // namespace net
}  // namespace pstore
