#include <gtest/gtest.h>

#include <memory>

#include "../test_util.h"
#include "core/reactive_controller.h"
#include "migration/migration_executor.h"
#include "net/network_model.h"

/// The lease/fencing control plane: heartbeats keep leases fresh; an
/// isolated node is suspected, then loses its lease (self-fences: no
/// commit without a lease, ever), then has its buckets promoted to
/// reachable backups by the fenced failover; healing the partition
/// un-suspects and un-fences it and k-safety is rebuilt. Controllers
/// must defer scale-ins while any node is suspected.

namespace pstore {
namespace {

using testing_util::MakeKvDatabase;
using testing_util::SmallEngineConfig;

EngineConfig NetEngineConfig() {
  EngineConfig config = SmallEngineConfig();
  config.initial_nodes = 3;
  config.replication.enabled = true;
  config.replication.k = 1;
  config.replication.db_size_mb = 10.0;
  config.replication.rebuild_chunk_kb = 100.0;
  config.replication.rebuild_rate_kbps = 10000.0;
  config.replication.wire_kbps = 100000.0;
  config.net.enabled = true;
  return config;
}

TEST(LeaseFencingTest, NetRequiresReplication) {
  EngineConfig config = SmallEngineConfig();
  config.net.enabled = true;  // without replication: invalid
  EXPECT_FALSE(config.Validate().ok());
}

TEST(LeaseFencingTest, HeartbeatsKeepLeasesFreshForever) {
  auto db = MakeKvDatabase();
  Simulator sim;
  ClusterEngine engine(&sim, db.catalog, db.registry, NetEngineConfig());
  sim.RunUntil(30 * kSecond);
  for (NodeId n = 0; n < engine.active_nodes(); ++n) {
    EXPECT_TRUE(engine.NodeHasLease(n)) << "node " << n;
    EXPECT_FALSE(engine.IsNodeSuspected(n)) << "node " << n;
    EXPECT_FALSE(engine.IsNodeFenced(n)) << "node " << n;
  }
  EXPECT_EQ(engine.suspicions(), 0);
  EXPECT_EQ(engine.fenced_failovers(), 0);
  EXPECT_GT(engine.net()->messages_sent(), 0);  // the heartbeat stream
}

TEST(LeaseFencingTest, IsolationSuspectsThenFencesThenFailsOver) {
  auto db = MakeKvDatabase();
  Simulator sim;
  const EngineConfig config = NetEngineConfig();
  ClusterEngine engine(&sim, db.catalog, db.registry, config);
  const int64_t rows = 200;
  for (int64_t k = 0; k < rows; ++k) {
    ASSERT_TRUE(engine.LoadRow(db.table, Row({Value(k), Value(k)})).ok());
  }
  sim.RunUntil(2 * kSecond);  // leases established by live heartbeats

  const NodeId victim = 2;
  engine.net()->OpenPartition({victim}, 10 * kSecond);

  // Silence > suspicion_timeout: suspected, still leased.
  sim.RunUntil(2 * kSecond + config.net.suspicion_timeout +
               2 * config.net.heartbeat_period);
  EXPECT_TRUE(engine.IsNodeSuspected(victim));
  EXPECT_GE(engine.nodes_suspected(), 1);
  EXPECT_FALSE(engine.IsNodeFenced(victim));

  // Silence > lease_timeout: the node self-fences before the controller
  // acts — the strict timer chain's whole point.
  sim.RunUntil(2 * kSecond + config.net.lease_timeout +
               2 * config.net.heartbeat_period);
  EXPECT_FALSE(engine.NodeHasLease(victim));
  EXPECT_EQ(engine.fenced_failovers(), 0) << "controller must act later";

  // Silence > failover_timeout: fenced failover promotes every bucket
  // of the victim to a reachable backup (k=1 on 3 nodes: one exists).
  sim.RunUntil(2 * kSecond + config.net.failover_timeout + kSecond);
  EXPECT_TRUE(engine.IsNodeFenced(victim));
  EXPECT_GE(engine.fenced_failovers(), 1);
  const PartitionMap& map = engine.partition_map();
  for (BucketId b = 0; b < map.num_buckets(); ++b) {
    EXPECT_NE(engine.NodeOfPartition(map.PartitionOfBucket(b)), victim)
        << "bucket " << b << " still owned by the fenced node";
  }
  EXPECT_EQ(engine.TotalRowCount(), rows) << "failover must not lose rows";

  // Heal: heartbeats resume, the node is un-suspected and un-fenced,
  // and re-replication restores full k.
  sim.RunUntil(60 * kSecond);
  EXPECT_FALSE(engine.IsNodeSuspected(victim));
  EXPECT_FALSE(engine.IsNodeFenced(victim));
  EXPECT_TRUE(engine.NodeHasLease(victim));
  EXPECT_EQ(engine.nodes_suspected(), 0);
  EXPECT_EQ(engine.replication()->degraded_buckets(), 0);
  EXPECT_EQ(engine.fenced_commits(), 0);
}

TEST(LeaseFencingTest, FencedNodeRejectsInsteadOfCommitting) {
  auto db = MakeKvDatabase();
  Simulator sim;
  const EngineConfig config = NetEngineConfig();
  ClusterEngine engine(&sim, db.catalog, db.registry, config);
  const int64_t rows = 200;
  for (int64_t k = 0; k < rows; ++k) {
    ASSERT_TRUE(engine.LoadRow(db.table, Row({Value(k), Value(k)})).ok());
  }
  sim.RunUntil(2 * kSecond);
  engine.net()->OpenPartition({2}, 8 * kSecond);
  // Submit a write to every key while the victim is lease-expired but
  // not yet failed over: writes landing on it must be rejected, not
  // executed (a commit there could diverge from a promoted backup).
  sim.RunUntil(2 * kSecond + config.net.lease_timeout +
               2 * config.net.heartbeat_period);
  for (int64_t k = 0; k < rows; ++k) {
    TxnRequest req;
    req.proc = db.put;
    req.key = k;
    req.args.push_back(Value(k + 1000));
    engine.Submit(std::move(req));
  }
  sim.RunUntil(2 * kSecond + config.net.failover_timeout);
  EXPECT_GT(engine.fenced_rejections(), 0);
  EXPECT_EQ(engine.fenced_commits(), 0);
  // After heal everything settles: rows conserved, tripwire still 0.
  sim.RunUntil(60 * kSecond);
  EXPECT_EQ(engine.TotalRowCount(), rows);
  EXPECT_EQ(engine.fenced_commits(), 0);
}

TEST(LeaseFencingTest, ReactiveScaleInDeferredWhileSuspected) {
  auto run = [](bool flap_partition) {
    auto db = MakeKvDatabase();
    Simulator sim;
    ClusterEngine engine(&sim, db.catalog, db.registry, NetEngineConfig());
    for (int64_t k = 0; k < 100; ++k) {
      EXPECT_TRUE(engine.LoadRow(db.table, Row({Value(k), Value(k)})).ok());
    }
    MigrationOptions opts;
    opts.chunk_kb = 100;
    opts.rate_kbps = 10000;
    opts.wire_kbps = 100000;
    opts.db_size_mb = 10;
    MigrationExecutor migrator(&engine, opts);
    ReactiveConfig reactive;
    reactive.q = 100.0;
    reactive.q_hat = 125.0;
    reactive.monitor_period = kSecond;
    reactive.scale_in_hold = 5 * kSecond;
    ReactiveController controller(&engine, &migrator, reactive);
    controller.Start();
    if (flap_partition) {
      // 2 s windows with 1 s heal gaps: the victim keeps getting
      // suspected but a heartbeat always lands before the lease dies,
      // so it is never fenced — only the scale-in gate is exercised.
      for (SimTime t = 2 * kSecond; t < 28 * kSecond; t += 3 * kSecond) {
        sim.ScheduleAt(t, [&engine]() {
          engine.net()->OpenPartition({2}, 2 * kSecond);
        });
      }
    }
    sim.RunUntil(30 * kSecond);
    controller.Stop();
    EXPECT_EQ(engine.fenced_failovers(), 0);
    return controller.scale_ins();
  };
  // Idle cluster: without suspicion churn the controller shrinks it;
  // with a node flapping in and out of suspicion the hold timer never
  // completes and the scale-in is deferred for the whole run.
  EXPECT_GT(run(false), 0);
  EXPECT_EQ(run(true), 0);
}

}  // namespace
}  // namespace pstore
