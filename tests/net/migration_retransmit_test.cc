#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "../test_util.h"
#include "migration/migration_executor.h"
#include "net/network_model.h"

/// The stop-and-wait chunk protocol under targeted message faults: a
/// duplicated DATA message must apply once, a lost DATA message must be
/// retransmitted with the same sequence number, and a lost ACK must
/// trigger a retransmission the receiver suppresses and re-acks — never
/// a second application. Each scenario is driven by the NetworkModel's
/// deterministic per-message fault hook, so there is no probability
/// involved: the exact message named by its per-kind send index fails.

namespace pstore {
namespace {

using testing_util::MakeKvDatabase;
using testing_util::SmallEngineConfig;

class MigrationRetransmitTest : public ::testing::Test {
 protected:
  MigrationRetransmitTest() : db_(MakeKvDatabase()) {}

  void BuildEngine(int64_t rows = 500) {
    EngineConfig config = SmallEngineConfig();
    config.replication.enabled = true;
    config.replication.k = 1;
    config.replication.db_size_mb = 10.0;
    config.replication.rebuild_chunk_kb = 100.0;
    config.replication.rebuild_rate_kbps = 10000.0;
    config.replication.wire_kbps = 100000.0;
    config.net.enabled = true;
    engine_ = std::make_unique<ClusterEngine>(&sim_, db_.catalog,
                                              db_.registry, config);
    for (int64_t k = 0; k < rows; ++k) {
      ASSERT_TRUE(
          engine_->LoadRow(db_.table, Row({Value(k), Value(k)})).ok());
    }
  }

  MigrationOptions FastOptions() {
    MigrationOptions opts;
    opts.chunk_kb = 100;
    opts.rate_kbps = 10000;
    opts.wire_kbps = 100000;
    opts.db_size_mb = 10;
    return opts;
  }

  Simulator sim_;
  testing_util::KvDatabase db_;
  std::unique_ptr<ClusterEngine> engine_;
};

TEST_F(MigrationRetransmitTest, CleanMoveCompletesOverTheSubstrate) {
  BuildEngine();
  MigrationExecutor migrator(engine_.get(), FastOptions());
  const int64_t rows_before = engine_->TotalRowCount();
  bool completed = false;
  ASSERT_TRUE(migrator.StartMove(4, [&]() { completed = true; }).ok());
  // Heartbeat loops run forever, so bound the run instead of RunAll().
  sim_.RunUntil(60 * kSecond);
  EXPECT_TRUE(completed);
  EXPECT_EQ(engine_->active_nodes(), 4);
  EXPECT_EQ(engine_->TotalRowCount(), rows_before);
  EXPECT_GT(engine_->net()->messages_sent(), 0);
  EXPECT_EQ(migrator.net_retransmits(), 0);
  EXPECT_EQ(migrator.net_double_applies(), 0);
}

TEST_F(MigrationRetransmitTest, DuplicatedChunkDataAppliesOnce) {
  BuildEngine();
  MigrationExecutor migrator(engine_.get(), FastOptions());
  const int64_t rows_before = engine_->TotalRowCount();
  engine_->net()->set_message_fault_hook(
      [](net::NodeId, net::NodeId, net::MessageKind kind,
         int64_t kind_index) {
        net::MessageFault fault;
        // Double every third DATA message of the move.
        if (kind == net::MessageKind::kChunkData && kind_index % 3 == 0) {
          fault.kind = net::MessageFault::Kind::kDuplicate;
        }
        return fault;
      });
  bool completed = false;
  ASSERT_TRUE(migrator.StartMove(4, [&]() { completed = true; }).ok());
  sim_.RunUntil(60 * kSecond);
  EXPECT_TRUE(completed);
  EXPECT_GT(migrator.net_duplicate_data(), 0);
  EXPECT_EQ(migrator.net_double_applies(), 0);
  EXPECT_EQ(engine_->TotalRowCount(), rows_before);
}

TEST_F(MigrationRetransmitTest, LostChunkDataIsRetransmitted) {
  BuildEngine();
  MigrationExecutor migrator(engine_.get(), FastOptions());
  const int64_t rows_before = engine_->TotalRowCount();
  engine_->net()->set_message_fault_hook(
      [](net::NodeId, net::NodeId, net::MessageKind kind,
         int64_t kind_index) {
        net::MessageFault fault;
        // Swallow the first two DATA sends; retransmissions get through
        // (they re-enter Send with fresh kind indices).
        if (kind == net::MessageKind::kChunkData && kind_index < 2) {
          fault.kind = net::MessageFault::Kind::kDrop;
        }
        return fault;
      });
  bool completed = false;
  ASSERT_TRUE(migrator.StartMove(4, [&]() { completed = true; }).ok());
  sim_.RunUntil(120 * kSecond);
  EXPECT_TRUE(completed);
  EXPECT_GE(migrator.net_retransmits(), 2);
  EXPECT_EQ(migrator.net_double_applies(), 0);
  EXPECT_EQ(engine_->TotalRowCount(), rows_before);
}

TEST_F(MigrationRetransmitTest, LostAckTriggersRetransmitNotDoubleApply) {
  BuildEngine();
  MigrationExecutor migrator(engine_.get(), FastOptions());
  const int64_t rows_before = engine_->TotalRowCount();
  engine_->net()->set_message_fault_hook(
      [](net::NodeId, net::NodeId, net::MessageKind kind,
         int64_t kind_index) {
        net::MessageFault fault;
        // The chunk applies, but its ACK dies: the sender must time out
        // and retransmit, and the receiver must suppress the duplicate
        // and re-ack instead of applying again.
        if (kind == net::MessageKind::kChunkAck && kind_index < 2) {
          fault.kind = net::MessageFault::Kind::kDrop;
        }
        return fault;
      });
  bool completed = false;
  ASSERT_TRUE(migrator.StartMove(4, [&]() { completed = true; }).ok());
  sim_.RunUntil(120 * kSecond);
  EXPECT_TRUE(completed);
  EXPECT_GE(migrator.net_retransmits(), 2);
  EXPECT_GT(migrator.net_duplicate_data(), 0);  // suppressed + re-acked
  EXPECT_EQ(migrator.net_double_applies(), 0);
  EXPECT_EQ(engine_->TotalRowCount(), rows_before);
}

TEST(MigrationRetransmitReplayTest, SameSeedSameRetransmissionSchedule) {
  auto run = []() {
    auto db = MakeKvDatabase();
    Simulator sim;
    EngineConfig config = SmallEngineConfig();
    config.replication.enabled = true;
    config.replication.k = 1;
    config.replication.db_size_mb = 10.0;
    config.replication.rebuild_chunk_kb = 100.0;
    config.replication.rebuild_rate_kbps = 10000.0;
    config.replication.wire_kbps = 100000.0;
    config.net.enabled = true;
    ClusterEngine engine(&sim, db.catalog, db.registry, config);
    for (int64_t k = 0; k < 500; ++k) {
      EXPECT_TRUE(engine.LoadRow(db.table, Row({Value(k), Value(k)})).ok());
    }
    MigrationOptions opts;
    opts.chunk_kb = 100;
    opts.rate_kbps = 10000;
    opts.wire_kbps = 100000;
    opts.db_size_mb = 10;
    MigrationExecutor migrator(&engine, opts);
    engine.net()->set_message_fault_hook(
        [](net::NodeId, net::NodeId, net::MessageKind kind,
           int64_t kind_index) {
          net::MessageFault fault;
          if (kind == net::MessageKind::kChunkData && kind_index % 5 == 1) {
            fault.kind = net::MessageFault::Kind::kDrop;
          }
          return fault;
        });
    bool completed = false;
    EXPECT_TRUE(migrator.StartMove(4, [&]() { completed = true; }).ok());
    sim.RunUntil(120 * kSecond);
    EXPECT_TRUE(completed);
    return std::make_tuple(migrator.net_retransmits(),
                           engine.net()->messages_sent(),
                           engine.net()->rng_state_hash(),
                           sim.events_executed());
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace pstore
