#include "net/net_config.h"

#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

namespace pstore {
namespace {

using net::NetConfig;

TEST(NetConfigTest, DefaultsValidate) {
  EXPECT_TRUE(NetConfig().Validate().ok());
}

TEST(NetConfigTest, ValidateRejectsBadKnobsTableDriven) {
  // Every field Validate checks, one row each: the mutation applied to
  // an otherwise-default config and the error it must produce. A new
  // knob without a row (and a rejection message) shows up as a gap
  // here before it ships unvalidated.
  struct Case {
    const char* what;
    std::function<void(NetConfig*)> mutate;
    const char* error;
  };
  const std::vector<Case> cases = {
      {"min_latency_us negative",
       [](NetConfig* c) { c->min_latency_us = -1; }, "min_latency_us < 0"},
      {"mean below min",
       [](NetConfig* c) {
         c->min_latency_us = 500;
         c->mean_latency_us = 200;
       },
       "mean_latency_us < min_latency_us"},
      {"heartbeat_period zero",
       [](NetConfig* c) { c->heartbeat_period = 0; },
       "heartbeat_period <= 0"},
      {"heartbeat_period negative",
       [](NetConfig* c) { c->heartbeat_period = -kSecond; },
       "heartbeat_period <= 0"},
      {"suspicion at heartbeat",
       [](NetConfig* c) { c->suspicion_timeout = c->heartbeat_period; },
       "need heartbeat_period < suspicion_timeout"},
      {"lease at suspicion",
       [](NetConfig* c) { c->lease_timeout = c->suspicion_timeout; },
       "need suspicion_timeout < lease_timeout"},
      {"lease below suspicion",
       [](NetConfig* c) { c->lease_timeout = c->suspicion_timeout / 2; },
       "need suspicion_timeout < lease_timeout"},
      {"failover at lease",
       [](NetConfig* c) { c->failover_timeout = c->lease_timeout; },
       "need lease_timeout < failover_timeout"},
      {"retransmit factor one",
       [](NetConfig* c) { c->retransmit_timeout_factor = 1.0; },
       "retransmit_timeout_factor must be > 1"},
      {"retransmit factor negative",
       [](NetConfig* c) { c->retransmit_timeout_factor = -4.0; },
       "retransmit_timeout_factor must be > 1"},
  };
  for (const Case& test : cases) {
    NetConfig config;
    test.mutate(&config);
    const Status status = config.Validate();
    EXPECT_TRUE(status.IsInvalidArgument()) << test.what;
    EXPECT_NE(status.ToString().find(test.error), std::string::npos)
        << test.what << ": got " << status.ToString();
  }
}

TEST(NetConfigTest, TimerChainValidatesWhenStrictlyOrdered) {
  // The safety argument rests on heartbeat < suspicion < lease <
  // failover; any strictly ordered chain must pass, however tight.
  NetConfig config;
  config.heartbeat_period = 100 * kMillisecond;
  config.suspicion_timeout = 101 * kMillisecond;
  config.lease_timeout = 102 * kMillisecond;
  config.failover_timeout = 103 * kMillisecond;
  EXPECT_TRUE(config.Validate().ok());
}

}  // namespace
}  // namespace pstore
