#include "core/experiment.h"

#include <gtest/gtest.h>

namespace pstore {
namespace {

/// Small, fast experiment configuration: one replay day at high
/// acceleration with modest transaction rates.
ExperimentConfig FastConfig(ElasticityStrategy strategy) {
  ExperimentConfig config;
  config.strategy = strategy;
  config.replay_days = 1;
  config.train_days = 10;
  config.speedup = 60.0;           // 1 trace-day in 24 virtual minutes
  config.peak_txn_rate = 600.0;    // ~2-3 nodes at peak
  config.trace = B2wRegularTraffic(11, 1234);
  config.engine.max_nodes = 6;
  config.static_nodes = 4;
  config.spar_recent = 4;
  // A smaller database keeps D (and hence the controller's forecast
  // horizon) proportionate to the strongly accelerated replay.
  config.migration.db_size_mb = 110.0;
  return config;
}

TEST(AggregateSlotsTest, MeansGroups) {
  const auto out = AggregateSlots({1, 2, 3, 4, 5, 6, 7}, 3);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[0], 2.0);
  EXPECT_DOUBLE_EQ(out[1], 5.0);
}

TEST(ExperimentConfigTest, Validation) {
  ExperimentConfig c = FastConfig(ElasticityStrategy::kStatic);
  EXPECT_TRUE(c.Validate().ok());
  c.static_nodes = 100;
  EXPECT_TRUE(c.Validate().IsInvalidArgument());
  c = FastConfig(ElasticityStrategy::kStatic);
  c.replay_days = 0;
  EXPECT_TRUE(c.Validate().IsInvalidArgument());
  c = FastConfig(ElasticityStrategy::kStatic);
  c.train_days = 2;
  EXPECT_TRUE(c.Validate().IsInvalidArgument());
}

TEST(ExperimentTest, StrategyNames) {
  EXPECT_STREQ(ElasticityStrategyName(ElasticityStrategy::kStatic),
               "Static");
  EXPECT_STREQ(ElasticityStrategyName(ElasticityStrategy::kReactive),
               "Reactive");
  EXPECT_STREQ(ElasticityStrategyName(ElasticityStrategy::kPStoreSpar),
               "P-Store (SPAR)");
  EXPECT_STREQ(ElasticityStrategyName(ElasticityStrategy::kPStoreOracle),
               "P-Store (Oracle)");
}

TEST(ExperimentTest, StaticRunCompletes) {
  auto result =
      RunElasticityExperiment(FastConfig(ElasticityStrategy::kStatic));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->strategy_name, "Static");
  EXPECT_GT(result->submitted, 10000);
  EXPECT_GT(result->committed, 0);
  EXPECT_DOUBLE_EQ(result->avg_machines, 4.0);
  EXPECT_TRUE(result->moves.empty());
  EXPECT_FALSE(result->latency_windows.empty());
  EXPECT_FALSE(result->throughput_txn_s.empty());
}

TEST(ExperimentTest, OracleRunScalesWithLoad) {
  auto result =
      RunElasticityExperiment(FastConfig(ElasticityStrategy::kPStoreOracle));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Elastic: the cluster changed size at least twice over the day and
  // used fewer machines on average than peak provisioning.
  EXPECT_GE(static_cast<int64_t>(result->moves.size()), 2);
  EXPECT_LT(result->avg_machines, 4.0);
  EXPECT_GT(result->avg_machines, 0.9);
}

TEST(ExperimentTest, ReactiveRunCompletes) {
  auto result =
      RunElasticityExperiment(FastConfig(ElasticityStrategy::kReactive));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->submitted, 10000);
  EXPECT_LT(result->avg_machines, 4.0);
}

TEST(ExperimentTest, SparRunCompletes) {
  ExperimentConfig config = FastConfig(ElasticityStrategy::kPStoreSpar);
  config.train_days = 10;
  auto result = RunElasticityExperiment(config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->submitted, 10000);
  EXPECT_FALSE(result->moves.empty());
}

TEST(ExperimentTest, DeterministicForSameConfig) {
  auto a = RunElasticityExperiment(FastConfig(ElasticityStrategy::kStatic));
  auto b = RunElasticityExperiment(FastConfig(ElasticityStrategy::kStatic));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->submitted, b->submitted);
  EXPECT_EQ(a->committed, b->committed);
  EXPECT_EQ(a->violations_p99, b->violations_p99);
}

TEST(ExperimentTest, UniformityStatReported) {
  auto result =
      RunElasticityExperiment(FastConfig(ElasticityStrategy::kStatic));
  ASSERT_TRUE(result.ok());
  // Section 8.1: most-accessed partition close to the mean.
  EXPECT_GT(result->max_partition_access_over_mean, 1.0);
  EXPECT_LT(result->max_partition_access_over_mean, 1.4);
}

}  // namespace
}  // namespace pstore
