#include "core/skew_manager.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "../test_util.h"

namespace pstore {
namespace {

using testing_util::MakeKvDatabase;

class SkewManagerTest : public ::testing::Test {
 protected:
  SkewManagerTest() : db_(MakeKvDatabase()) {}

  void Build() {
    EngineConfig config = testing_util::SmallEngineConfig();
    config.initial_nodes = 2;  // 4 partitions
    config.txn_service_us_mean = 1000.0;
    engine_ = std::make_unique<ClusterEngine>(&sim_, db_.catalog,
                                              db_.registry, config);
    for (int64_t k = 0; k < 400; ++k) {
      ASSERT_TRUE(
          engine_->LoadRow(db_.table, Row({Value(k), Value(k)})).ok());
    }
    MigrationOptions migration;
    migration.db_size_mb = 10;
    migration.rate_kbps = 5000;
    migrator_ = std::make_unique<MigrationExecutor>(engine_.get(),
                                                    migration);
  }

  SkewManagerConfig Config() {
    SkewManagerConfig config;
    config.monitor_period = 2 * kSecond;
    config.imbalance_threshold = 1.3;
    config.min_window_accesses = 50;
    config.max_buckets_per_cycle = 4;
    config.kb_per_bucket = 100;
    return config;
  }

  /// Sends `n` Get transactions for `key`, spaced every ms from `at`.
  void HammerKey(int64_t key, int64_t n, SimTime at) {
    for (int64_t i = 0; i < n; ++i) {
      TxnRequest get;
      get.proc = db_.get;
      get.key = key;
      sim_.ScheduleAt(at + i * kMillisecond,
                      [this, get]() { engine_->Submit(get); });
    }
  }

  /// Uniform background load over all keys.
  void BackgroundLoad(int64_t n, SimTime at) {
    for (int64_t i = 0; i < n; ++i) {
      TxnRequest get;
      get.proc = db_.get;
      get.key = (i * 31) % 400;
      sim_.ScheduleAt(at + i * 2 * kMillisecond,
                      [this, get]() { engine_->Submit(get); });
    }
  }

  Simulator sim_;
  testing_util::KvDatabase db_;
  std::unique_ptr<ClusterEngine> engine_;
  std::unique_ptr<MigrationExecutor> migrator_;
};

TEST_F(SkewManagerTest, ConfigValidation) {
  SkewManagerConfig c = Config();
  EXPECT_TRUE(c.Validate().ok());
  c.imbalance_threshold = 1.0;
  EXPECT_TRUE(c.Validate().IsInvalidArgument());
  c = Config();
  c.monitor_period = 0;
  EXPECT_TRUE(c.Validate().IsInvalidArgument());
  c = Config();
  c.max_buckets_per_cycle = 0;
  EXPECT_TRUE(c.Validate().IsInvalidArgument());
  c = Config();
  c.wire_kbps = 0;
  EXPECT_TRUE(c.Validate().IsInvalidArgument());
}

TEST_F(SkewManagerTest, NoActionOnUniformLoad) {
  Build();
  SkewManager manager(engine_.get(), migrator_.get(), Config());
  manager.Start();
  BackgroundLoad(2000, 0);
  sim_.RunUntil(10 * kSecond);
  EXPECT_EQ(manager.rebalances(), 0);
  EXPECT_EQ(manager.buckets_moved(), 0);
}

TEST_F(SkewManagerTest, RelocatesHotBucket) {
  Build();
  SkewManager manager(engine_.get(), migrator_.get(), Config());
  manager.Start();

  // One scorching key plus light background: its partition saturates.
  const int64_t hot_key = 7;
  const BucketId hot_bucket =
      KeyToBucket(hot_key, engine_->config().num_buckets);
  const PartitionId owner_before =
      engine_->partition_map().PartitionOfBucket(hot_bucket);
  HammerKey(hot_key, 3000, 0);
  BackgroundLoad(600, 0);
  sim_.RunUntil(12 * kSecond);

  EXPECT_GT(manager.rebalances(), 0);
  EXPECT_GT(manager.buckets_moved(), 0);
  // The hot bucket moved away from its original partition, and the row
  // is still reachable through the map.
  const PartitionId owner_after =
      engine_->partition_map().PartitionOfBucket(hot_bucket);
  EXPECT_NE(owner_after, owner_before);
  EXPECT_TRUE(engine_->fragment(owner_after)->Contains(db_.table, hot_key));
  EXPECT_EQ(engine_->TotalRowCount(), 400);
}

TEST_F(SkewManagerTest, RelocationImprovesBalance) {
  Build();
  SkewManagerConfig config = Config();
  SkewManager manager(engine_.get(), migrator_.get(), config);
  manager.Start();

  // Hot keys in distinct buckets, all initially on whatever partitions
  // they hash to; hammer them hard for several windows.
  for (int64_t key : {7, 19, 23}) {
    HammerKey(key, 2000, 0);
  }
  BackgroundLoad(1000, 0);
  sim_.RunUntil(8 * kSecond);
  engine_->ResetBucketAccessCounts();

  // Measure post-balance skew over a fresh window of the same load.
  for (int64_t key : {7, 19, 23}) {
    HammerKey(key, 2000, sim_.Now());
  }
  BackgroundLoad(1000, sim_.Now());
  manager.Stop();
  sim_.RunAll();

  const auto& buckets = engine_->bucket_access_counts();
  const PartitionMap& map = engine_->partition_map();
  std::vector<int64_t> load(static_cast<size_t>(
                                engine_->active_partitions()),
                            0);
  for (BucketId b = 0; b < map.num_buckets(); ++b) {
    load[static_cast<size_t>(map.PartitionOfBucket(b))] +=
        buckets[static_cast<size_t>(b)];
  }
  const int64_t hottest = *std::max_element(load.begin(), load.end());
  int64_t total = 0;
  for (int64_t v : load) total += v;
  const double mean =
      static_cast<double>(total) / static_cast<double>(load.size());
  // Three hot buckets over four partitions: after balancing no
  // partition should carry more than ~one hot bucket plus background.
  EXPECT_LT(static_cast<double>(hottest), 1.8 * mean);
}

TEST_F(SkewManagerTest, DefersToInFlightReconfiguration) {
  Build();
  SkewManagerConfig config = Config();
  config.monitor_period = kSecond;
  // Start a slow reconfiguration, then hammer: the manager must not
  // interfere while the move is in flight.
  MigrationOptions slow;
  slow.db_size_mb = 10;
  slow.rate_kbps = 3;  // glacial
  MigrationExecutor slow_migrator(engine_.get(), slow);
  SkewManager deferring(engine_.get(), &slow_migrator, config);
  deferring.Start();
  ASSERT_TRUE(slow_migrator.StartMove(4, nullptr).ok());
  HammerKey(7, 2000, 0);
  sim_.RunUntil(6 * kSecond);
  EXPECT_TRUE(slow_migrator.InProgress());
  EXPECT_EQ(deferring.rebalances(), 0);
}

TEST_F(SkewManagerTest, StopHaltsMonitoring) {
  Build();
  SkewManager manager(engine_.get(), migrator_.get(), Config());
  manager.Start();
  manager.Stop();
  HammerKey(7, 3000, 0);
  sim_.RunAll();
  EXPECT_EQ(manager.rebalances(), 0);
}

}  // namespace
}  // namespace pstore
