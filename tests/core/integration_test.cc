/// Cross-cutting integration tests: the pieces of the P-Store stack
/// working together, and the analytic capacity simulator agreeing with
/// the engine-level experiment on aggregate outcomes.

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "core/experiment.h"
#include "core/predictive_controller.h"
#include "core/skew_manager.h"
#include "prediction/spar.h"
#include "sim/strategies.h"
#include "workload/b2w_trace.h"

namespace pstore {
namespace {

TEST(IntegrationTest, AnalyticSimTracksEngineExperimentMachines) {
  // Run the same one-day trace through (a) the engine-level oracle
  // experiment and (b) the analytic capacity simulator with an oracle
  // strategy, using matched parameters. The average machine counts
  // should agree within ~25% — they model the same planner and move
  // dynamics at different fidelities.
  const uint64_t seed = 777;
  const int32_t train_days = 10;

  ExperimentConfig engine_config;
  engine_config.strategy = ElasticityStrategy::kPStoreOracle;
  engine_config.replay_days = 1;
  engine_config.train_days = train_days;
  engine_config.speedup = 60.0;
  engine_config.peak_txn_rate = 600.0;
  engine_config.trace = B2wRegularTraffic(train_days + 2, seed);
  engine_config.engine.max_nodes = 6;
  engine_config.static_nodes = 6;
  engine_config.migration.db_size_mb = 110.0;
  auto engine_result = RunElasticityExperiment(engine_config);
  ASSERT_TRUE(engine_result.ok()) << engine_result.status().ToString();

  // Analytic counterpart: same scaled trace, same Q/Q-hat, D matched to
  // the engine's migration options in *virtual* minutes.
  auto trace = GenerateB2wTrace(B2wRegularTraffic(train_days + 2, seed));
  ASSERT_TRUE(trace.ok());
  double peak = 0;
  for (double v : *trace) peak = std::max(peak, v);
  std::vector<double> load(trace->size());
  for (size_t i = 0; i < load.size(); ++i) {
    load[i] = (*trace)[i] / peak * 600.0;
  }

  CapacitySimConfig sim_config;
  sim_config.move_model.q = 285.0;
  sim_config.move_model.partitions_per_node = 6;
  // Virtual D equals the engine's: db/rate (plus the planner buffer);
  // but the analytic sim steps in *trace minutes*, which run 60x faster
  // than virtual time at speedup 60 -> convert.
  const double d_virtual_min = 110.0 * 1024.0 / 244.0 / 60.0 * 1.1;
  sim_config.move_model.d_minutes = d_virtual_min * 60.0;  // trace minutes
  sim_config.move_model.interval_minutes = 5;
  sim_config.q_hat = 350.0;
  sim_config.max_machines = 6;

  class SlotOracle : public LoadPredictor {
   public:
    SlotOracle(const std::vector<double>& minutes) {
      for (size_t i = 0; i + 5 <= minutes.size(); i += 5) {
        double acc = 0;
        for (size_t j = 0; j < 5; ++j) acc += minutes[i + j];
        slots_.push_back(acc / 5);
      }
    }
    std::string name() const override { return "Oracle"; }
    Status Fit(const std::vector<double>&, int32_t) override {
      return Status::OK();
    }
    int64_t MinHistory() const override { return 0; }
    Result<std::vector<double>> Forecast(const std::vector<double>&,
                                         int64_t t,
                                         int32_t horizon) const override {
      std::vector<double> out;
      for (int32_t h = 1; h <= horizon; ++h) {
        const int64_t idx = t + h;
        out.push_back(idx < static_cast<int64_t>(slots_.size())
                          ? slots_[static_cast<size_t>(idx)]
                          : slots_.back());
      }
      return out;
    }

   private:
    std::vector<double> slots_;
  };

  PStoreStrategyConfig ps;
  ps.move_model = sim_config.move_model;
  ps.horizon_intervals = 12;
  ps.prediction_inflation = 0.0;
  ps.max_machines = 6;
  PStoreStrategy strategy(ps, std::make_unique<SlotOracle>(load),
                          "P-Store Oracle");
  CapacitySimulator sim(sim_config);
  auto sim_result = sim.Run(load, &strategy,
                            static_cast<int64_t>(train_days) * 1440,
                            static_cast<int64_t>(train_days + 1) * 1440);
  ASSERT_TRUE(sim_result.ok());

  const double sim_avg_machines =
      sim_result->total_machine_minutes /
      static_cast<double>(sim_result->minutes_simulated);
  EXPECT_NEAR(engine_result->avg_machines, sim_avg_machines,
              0.25 * sim_avg_machines)
      << "engine=" << engine_result->avg_machines
      << " analytic=" << sim_avg_machines;
}

TEST(IntegrationTest, ControllerAndSkewManagerCoexist) {
  // P-Store elasticity and the skew manager running together on one
  // engine: a rising diurnal load plus a hot key. Both mechanisms act;
  // no data is lost; the final map is consistent.
  Simulator sim;
  Catalog catalog;
  const TableId table = *catalog.AddTable(Schema(
      "KV", {{"k", ColumnType::kInt64}, {"v", ColumnType::kInt64}}, 0));
  ProcedureRegistry registry;
  const ProcedureId get = *registry.Register(ProcedureDef{
      "Get",
      [table](ExecutionContext& ctx, const TxnRequest& req) {
        TxnResult r;
        auto row = ctx.Get(table, req.key);
        if (!row.ok()) {
          r.status = ctx.Upsert(table,
                                Row({Value(req.key), Value(int64_t{0})}));
        }
        return r;
      },
      1.0});

  EngineConfig engine_config;
  engine_config.num_buckets = 128;
  engine_config.partitions_per_node = 2;
  engine_config.max_nodes = 6;
  engine_config.initial_nodes = 1;
  engine_config.txn_service_us_mean = 1000.0;
  engine_config.txn_service_cv = 0.0;
  ClusterEngine engine(&sim, catalog, registry, engine_config);
  for (int64_t k = 0; k < 500; ++k) {
    ASSERT_TRUE(engine.LoadRow(table, Row({Value(k), Value(k)})).ok());
  }

  MigrationOptions migration;
  migration.db_size_mb = 12;
  migration.rate_kbps = 2000;
  MigrationExecutor migrator(&engine, migration);

  ControllerConfig controller_config;
  controller_config.move_model.q = 100.0;
  controller_config.move_model.partitions_per_node = 2;
  controller_config.move_model.d_minutes = 0.12;
  controller_config.move_model.interval_minutes = 2.0 / 60.0;
  controller_config.q_hat = 125.0;
  controller_config.horizon_intervals = 10;
  controller_config.prediction_inflation = 0.1;
  // The oracle here: a ramp from 80 to 380 txn/s over 30 slots.
  class Ramp : public LoadPredictor {
   public:
    std::string name() const override { return "Ramp"; }
    Status Fit(const std::vector<double>&, int32_t) override {
      return Status::OK();
    }
    int64_t MinHistory() const override { return 0; }
    Result<std::vector<double>> Forecast(const std::vector<double>&,
                                         int64_t t,
                                         int32_t horizon) const override {
      std::vector<double> out;
      for (int32_t h = 1; h <= horizon; ++h) {
        out.push_back(std::min(380.0, 80.0 + 10.0 * (t + h)));
      }
      return out;
    }
  } ramp;
  PredictiveController controller(&engine, &migrator, &ramp,
                                  controller_config);
  controller.Start();

  SkewManagerConfig skew_config;
  skew_config.monitor_period = 2 * kSecond;
  skew_config.imbalance_threshold = 1.3;
  skew_config.min_window_accesses = 50;
  skew_config.kb_per_bucket = 50;
  SkewManager skew(&engine, &migrator, skew_config);
  skew.Start();

  // Offered load: ramp matching the forecast, plus a hammered hot key.
  Rng rng(5);
  for (int64_t i = 0; i < 12000; ++i) {
    const double when = 60.0 * static_cast<double>(i) / 12000.0;
    const double rate_now = std::min(380.0, 80.0 + 10.0 * (when / 2.0));
    (void)rate_now;
    TxnRequest req;
    req.proc = get;
    req.key = rng.NextBernoulli(0.25) ? 7 : rng.NextInt(0, 499);
    sim.ScheduleAt(SecondsToDuration(when),
                   [&engine, req]() { engine.Submit(req); });
  }
  sim.RunUntil(SecondsToDuration(70.0));
  controller.Stop();
  skew.Stop();
  sim.RunAll();

  // Elasticity happened, data survived, and routing is consistent.
  EXPECT_GT(controller.moves_started(), 0);
  EXPECT_GE(engine.active_nodes(), 3);
  EXPECT_GE(engine.TotalRowCount(), 500);
  for (int64_t k = 0; k < 500; ++k) {
    const PartitionId p = engine.partition_map().PartitionOfKey(k);
    EXPECT_TRUE(engine.fragment(p)->Contains(table, k)) << "key " << k;
  }
}

TEST(IntegrationTest, SafetyNetPlusSkewSurviveBlackFridayStyleSurge) {
  // Experiment-level smoke: spike day with the safety net enabled and
  // default P-Store settings; the run completes, nodes reach max, and
  // violations remain bounded.
  ExperimentConfig config;
  config.strategy = ElasticityStrategy::kPStoreSpar;
  config.replay_days = 1;
  config.train_days = 10;
  config.speedup = 60.0;
  config.peak_txn_rate = 600.0;
  config.trace = B2wSpikeDay(10, 606);
  config.trace.spike_boost = 1.2;
  config.engine.max_nodes = 6;
  config.static_nodes = 6;
  config.migration.db_size_mb = 110.0;
  auto result = RunElasticityExperiment(config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->submitted, 10000);
  // The spike forced extra capacity beyond the diurnal need.
  EXPECT_GT(result->moves.size(), 2u);
}

}  // namespace
}  // namespace pstore
