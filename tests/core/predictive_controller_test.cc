#include "core/predictive_controller.h"

#include <cmath>

#include <gtest/gtest.h>

#include "../test_util.h"
#include "fault/fault_injector.h"
#include "prediction/spar.h"
#include "workload/b2w_client.h"

namespace pstore {
namespace {

using testing_util::MakeKvDatabase;

/// A scripted predictor anchored to absolute control slots: forecasting
/// from measured slot t returns script[t+1..t+horizon]. This makes the
/// scripted "future" actually arrive as ticks pass (a fixed
/// relative-future would recede forever and the receding-horizon
/// controller would rightly keep waiting).
class ScriptedPredictor : public LoadPredictor {
 public:
  explicit ScriptedPredictor(std::vector<double> script)
      : script_(std::move(script)) {}
  std::string name() const override { return "Scripted"; }
  Status Fit(const std::vector<double>&, int32_t) override {
    return Status::OK();
  }
  int64_t MinHistory() const override { return 0; }
  Result<std::vector<double>> Forecast(const std::vector<double>&, int64_t t,
                                       int32_t horizon) const override {
    std::vector<double> out;
    for (int32_t h = 1; h <= horizon; ++h) {
      const int64_t idx = t + h;
      out.push_back(idx < static_cast<int64_t>(script_.size())
                        ? script_[static_cast<size_t>(idx)]
                        : script_.back());
    }
    return out;
  }

 private:
  std::vector<double> script_;
};

class PredictiveControllerTest : public ::testing::Test {
 protected:
  PredictiveControllerTest() : db_(MakeKvDatabase()) {}

  void Build(int32_t initial_nodes) {
    EngineConfig config = testing_util::SmallEngineConfig();
    config.initial_nodes = initial_nodes;
    config.max_nodes = 8;
    engine_ = std::make_unique<ClusterEngine>(&sim_, db_.catalog,
                                              db_.registry, config);
    MigrationOptions migration;
    migration.chunk_kb = 200;
    migration.rate_kbps = 2000;
    migration.wire_kbps = 50000;
    migration.db_size_mb = 12;
    migrator_ = std::make_unique<MigrationExecutor>(engine_.get(), migration);
  }

  ControllerConfig Config() {
    ControllerConfig config;
    config.move_model.q = 100.0;              // txn/s per node
    config.move_model.partitions_per_node = 2;
    // D: 12 MB at 2000 kB/s = ~6.1 s -> ~0.102 "minutes"; use 0.12 with
    // buffer. Interval: 2 s of virtual time.
    config.move_model.d_minutes = 0.12;
    config.move_model.interval_minutes = 2.0 / 60.0;
    config.q_hat = 125.0;
    config.horizon_intervals = 10;
    config.prediction_inflation = 0.0;
    config.scale_in_confirmations = 3;
    return config;
  }

  /// Offers `rate` txn/s of Put load for `seconds`.
  void OfferLoad(double rate, double seconds) {
    const int64_t n = static_cast<int64_t>(rate * seconds);
    const SimTime start = sim_.Now();
    for (int64_t i = 0; i < n; ++i) {
      TxnRequest put;
      put.proc = db_.put;
      put.key = (i * 2654435761LL) % 100000;
      put.args = {Value(int64_t{1})};
      sim_.ScheduleAt(
          start + static_cast<SimTime>(i * seconds / n * kSecond),
          [this, put]() { engine_->Submit(put); });
    }
  }

  Simulator sim_;
  testing_util::KvDatabase db_;
  std::unique_ptr<ClusterEngine> engine_;
  std::unique_ptr<MigrationExecutor> migrator_;
};

TEST_F(PredictiveControllerTest, ConfigValidation) {
  ControllerConfig c = Config();
  EXPECT_TRUE(c.Validate().ok());
  c.q_hat = 10;  // below q
  EXPECT_TRUE(c.Validate().IsInvalidArgument());
  c = Config();
  c.horizon_intervals = 1;
  EXPECT_TRUE(c.Validate().IsInvalidArgument());
  c = Config();
  c.scale_in_confirmations = 0;
  EXPECT_TRUE(c.Validate().IsInvalidArgument());
  c = Config();
  c.infeasible_rate_multiplier = 0;
  EXPECT_TRUE(c.Validate().IsInvalidArgument());
}

TEST_F(PredictiveControllerTest, ScalesOutAheadOfPredictedRise) {
  Build(1);
  // Predictor (absolute script, one entry per 2-second control slot)
  // forecasts a rise to 250 txn/s (needs 3 nodes) at slot 6; current
  // load is light.
  std::vector<double> script(30, 250.0);
  for (size_t s = 0; s < 6; ++s) script[s] = 80.0;
  ScriptedPredictor predictor(std::move(script));
  PredictiveController controller(engine_.get(), migrator_.get(), &predictor,
                                  Config());
  controller.Start();
  OfferLoad(60.0, 20.0);
  sim_.RunUntil(SecondsToDuration(20.0));
  // The controller should have scaled out proactively.
  EXPECT_GE(engine_->active_nodes(), 3);
  EXPECT_GE(controller.moves_started(), 1);
  EXPECT_EQ(controller.infeasible_cycles(), 0);
}

TEST_F(PredictiveControllerTest, HoldsWhenForecastFlat) {
  Build(2);
  ScriptedPredictor predictor(std::vector<double>(10, 90.0));
  PredictiveController controller(engine_.get(), migrator_.get(), &predictor,
                                  Config());
  controller.Start();
  OfferLoad(90.0, 20.0);
  sim_.RunUntil(SecondsToDuration(20.0));
  // 90 txn/s fits one node, but scale-in to 1 is the expected endpoint;
  // what must NOT happen is a scale-out.
  EXPECT_LE(engine_->active_nodes(), 2);
}

TEST_F(PredictiveControllerTest, ScaleInRequiresConfirmationCycles) {
  Build(4);
  ScriptedPredictor predictor(std::vector<double>(10, 50.0));
  ControllerConfig config = Config();
  config.scale_in_confirmations = 3;
  PredictiveController controller(engine_.get(), migrator_.get(), &predictor,
                                  config);
  controller.Start();
  OfferLoad(50.0, 30.0);
  // After 2 intervals (4 s), no scale-in may have fired yet.
  sim_.RunUntil(SecondsToDuration(5.0));
  EXPECT_EQ(engine_->active_nodes(), 4);
  // Eventually it scales in.
  sim_.RunUntil(SecondsToDuration(30.0));
  EXPECT_LT(engine_->active_nodes(), 4);
}

TEST_F(PredictiveControllerTest, InfeasibleForecastTriggersFallback) {
  Build(1);
  // A 6-node spike predicted at the very next interval: no feasible
  // plan exists from 1 node, so the reactive fallback fires.
  ScriptedPredictor predictor(std::vector<double>(10, 550.0));
  ControllerConfig config = Config();
  config.infeasible_rate_multiplier = 8.0;
  PredictiveController controller(engine_.get(), migrator_.get(), &predictor,
                                  config);
  controller.Start();
  OfferLoad(80.0, 20.0);
  sim_.RunUntil(SecondsToDuration(20.0));
  EXPECT_GT(controller.infeasible_cycles(), 0);
  EXPECT_GE(engine_->active_nodes(), 6);
}

TEST_F(PredictiveControllerTest, MeasuresLoadSeries) {
  Build(2);
  ScriptedPredictor predictor(std::vector<double>(10, 90.0));
  PredictiveController controller(engine_.get(), migrator_.get(), &predictor,
                                  Config());
  controller.SeedHistory({10.0, 20.0});
  controller.Start();
  OfferLoad(100.0, 10.0);
  sim_.RunUntil(SecondsToDuration(10.0));
  const auto& series = controller.load_series();
  ASSERT_GT(series.size(), 3u);
  EXPECT_DOUBLE_EQ(series[0], 10.0);
  // Measured entries should be near the offered 100 txn/s.
  EXPECT_NEAR(series[3], 100.0, 25.0);
}

TEST_F(PredictiveControllerTest, SafetyNetCatchesUnpredictedOverload) {
  Build(1);
  // The predictor insists everything is calm, but the actual offered
  // load is far beyond one node: the composite strategy's reactive leg
  // must fire (measured overload), not the infeasible-plan path.
  ScriptedPredictor predictor(std::vector<double>(40, 80.0));
  ControllerConfig config = Config();
  config.enable_reactive_safety_net = true;
  config.safety_net_watermark = 0.95;
  PredictiveController controller(engine_.get(), migrator_.get(), &predictor,
                                  config);
  controller.Start();
  OfferLoad(300.0, 20.0);  // >> q_hat = 125
  sim_.RunUntil(SecondsToDuration(20.0));
  EXPECT_GT(controller.safety_net_activations(), 0);
  EXPECT_GE(engine_->active_nodes(), 3);
}

TEST_F(PredictiveControllerTest, SafetyNetCanBeDisabled) {
  Build(1);
  ScriptedPredictor predictor(std::vector<double>(40, 80.0));
  ControllerConfig config = Config();
  config.enable_reactive_safety_net = false;
  PredictiveController controller(engine_.get(), migrator_.get(), &predictor,
                                  config);
  controller.Start();
  OfferLoad(300.0, 10.0);
  sim_.RunUntil(SecondsToDuration(10.0));
  // With the net disabled the fast path never fires; recovery still
  // happens (slower) because the measured rate makes L[0] exceed
  // cap(1), driving the planner's infeasible fallback instead.
  EXPECT_EQ(controller.safety_net_activations(), 0);
  EXPECT_GT(controller.infeasible_cycles(), 0);
}

TEST_F(PredictiveControllerTest, ManualReservationProvisionsAhead) {
  Build(1);
  // Calm forecast and calm load, but operations booked a promotion
  // needing 4 machines from interval 8 (manual provisioning).
  ScriptedPredictor predictor(std::vector<double>(60, 60.0));
  PredictiveController controller(engine_.get(), migrator_.get(), &predictor,
                                  Config());
  controller.AddReservation(CapacityReservation{8, 20, 4});
  controller.Start();
  OfferLoad(60.0, 30.0);
  // By the reservation's start (interval 8 = 16 s), capacity is there.
  sim_.RunUntil(SecondsToDuration(16.5));
  EXPECT_GE(engine_->active_nodes(), 4);
}

TEST_F(PredictiveControllerTest, OnlineRefitRuns) {
  Build(2);
  // A real SPAR predictor being refit from measured data. Short period
  // so MinHistory is reachable within the test.
  SparConfig spar_config;
  spar_config.period = 10;
  spar_config.num_periods = 2;
  spar_config.num_recent = 3;
  SparPredictor spar(spar_config);
  ControllerConfig config = Config();
  config.horizon_intervals = 4;
  config.refit_interval = 30;
  PredictiveController controller(engine_.get(), migrator_.get(), &spar,
                                  config);
  controller.Start();
  OfferLoad(90.0, 140.0);
  sim_.RunUntil(SecondsToDuration(140.0));
  // 140 s / 2 s interval = 70 ticks -> refit attempts at ticks 30 and
  // 60; the first lacks history (SPAR needs n*period + m + tau slots),
  // the second succeeds.
  EXPECT_GE(controller.refits(), 1);
}

TEST_F(PredictiveControllerTest, StopPreventsFurtherMoves) {
  Build(2);
  ScriptedPredictor predictor(std::vector<double>(10, 700.0));
  PredictiveController controller(engine_.get(), migrator_.get(), &predictor,
                                  Config());
  controller.Start();
  controller.Stop();
  OfferLoad(50.0, 10.0);
  sim_.RunUntil(SecondsToDuration(10.0));
  EXPECT_EQ(controller.moves_started(), 0);
  EXPECT_EQ(engine_->active_nodes(), 2);
}

// --- Fault-handling regressions --------------------------------------

TEST_F(PredictiveControllerTest, MisforecastTripsSafetyNet) {
  Build(1);
  // The underlying predictor is perfectly accurate (flat 300 txn/s), but
  // an injected misforecast window scales its output to 75 txn/s: the
  // plan holds at 1 node while the real load is far beyond it, so the
  // reactive safety net must catch the overload.
  FaultInjector injector(engine_.get(), migrator_.get(), /*seed=*/3);
  FaultPlan plan;
  FaultEvent mis;
  mis.at = 0;
  mis.type = FaultType::kMisforecast;
  mis.duration = 60 * kSecond;
  mis.forecast_scale = 0.25;
  plan.events = {mis};
  ASSERT_TRUE(injector.Arm(plan).ok());

  ScriptedPredictor accurate(std::vector<double>(40, 300.0));
  MisforecastPredictor predictor(&accurate, &injector);
  ControllerConfig config = Config();
  config.enable_reactive_safety_net = true;
  config.safety_net_watermark = 0.95;
  PredictiveController controller(engine_.get(), migrator_.get(), &predictor,
                                  config);
  controller.Start();
  OfferLoad(300.0, 20.0);
  sim_.RunUntil(SecondsToDuration(20.0));

  EXPECT_GT(controller.safety_net_activations(), 0);
  EXPECT_GE(engine_->active_nodes(), 3);
}

TEST_F(PredictiveControllerTest, CrashDuringScaleInConfirmationResetsStreak) {
  // A scale-in needs 3 consecutive confirming cycles (ticks at 2/4/6 s).
  // A crash between the second and third tick must reset the streak: the
  // confirmation was established against a topology that no longer
  // exists. The control run (no crash) is free to scale in on schedule.
  auto run = [&](bool crash, int64_t* moves_by_7s, int32_t* nodes_at_7s) {
    Simulator sim;
    EngineConfig engine_config = testing_util::SmallEngineConfig();
    engine_config.initial_nodes = 4;
    engine_config.max_nodes = 8;
    ClusterEngine engine(&sim, db_.catalog, db_.registry, engine_config);
    MigrationOptions migration;
    migration.chunk_kb = 200;
    migration.rate_kbps = 2000;
    migration.wire_kbps = 50000;
    migration.db_size_mb = 12;
    MigrationExecutor migrator(&engine, migration);
    ScriptedPredictor predictor(std::vector<double>(30, 50.0));
    ControllerConfig config = Config();
    config.scale_in_confirmations = 3;
    PredictiveController controller(&engine, &migrator, &predictor, config);
    controller.Start();
    // 50 txn/s of Put load for 10 s.
    for (int64_t i = 0; i < 500; ++i) {
      TxnRequest put;
      put.proc = db_.put;
      put.key = (i * 2654435761LL) % 100000;
      put.args = {Value(int64_t{1})};
      sim.ScheduleAt(static_cast<SimTime>(i * 20 * kMillisecond),
                     [&engine, put]() { engine.Submit(put); });
    }
    if (crash) {
      sim.Schedule(5 * kSecond,
                   [&engine]() { ASSERT_TRUE(engine.CrashNode(3).ok()); });
    }
    sim.RunUntil(SecondsToDuration(7.0));
    *moves_by_7s = controller.moves_started();
    *nodes_at_7s = engine.active_nodes();
  };

  int64_t moves_control = 0, moves_crash = 0;
  int32_t nodes_control = 0, nodes_crash = 0;
  run(false, &moves_control, &nodes_control);
  run(true, &moves_crash, &nodes_crash);

  // Control: confirmations complete at the 6 s tick and scale-in starts.
  EXPECT_GE(moves_control, 1);
  // Crash at 5 s: the streak resets, so no scale-in may start by 7 s and
  // the allocation is untouched.
  EXPECT_EQ(moves_crash, 0);
  EXPECT_EQ(nodes_crash, 4);
}

}  // namespace
}  // namespace pstore
