#include "core/reactive_controller.h"

#include <gtest/gtest.h>

#include "../test_util.h"

namespace pstore {
namespace {

using testing_util::MakeKvDatabase;

class ReactiveControllerTest : public ::testing::Test {
 protected:
  ReactiveControllerTest() : db_(MakeKvDatabase()) {}

  void Build(int32_t initial_nodes) {
    EngineConfig config = testing_util::SmallEngineConfig();
    config.initial_nodes = initial_nodes;
    engine_ = std::make_unique<ClusterEngine>(&sim_, db_.catalog,
                                              db_.registry, config);
    MigrationOptions migration;
    migration.chunk_kb = 200;
    migration.rate_kbps = 5000;
    migration.wire_kbps = 50000;
    migration.db_size_mb = 10;
    migrator_ = std::make_unique<MigrationExecutor>(engine_.get(), migration);
  }

  ReactiveConfig Config() {
    ReactiveConfig config;
    config.q = 100.0;
    config.q_hat = 125.0;
    config.high_watermark = 0.9;  // tests exercise the knobs explicitly
    config.headroom = 0.10;
    config.monitor_period = kSecond;
    config.scale_in_hold = 5 * kSecond;
    return config;
  }

  void OfferLoad(double rate, double seconds, double start_s = 0) {
    const int64_t n = static_cast<int64_t>(rate * seconds);
    for (int64_t i = 0; i < n; ++i) {
      TxnRequest put;
      put.proc = db_.put;
      put.key = (i * 48271) % 100000;
      put.args = {Value(int64_t{1})};
      sim_.ScheduleAt(
          SecondsToDuration(start_s + i * seconds / n),
          [this, put]() { engine_->Submit(put); });
    }
  }

  Simulator sim_;
  testing_util::KvDatabase db_;
  std::unique_ptr<ClusterEngine> engine_;
  std::unique_ptr<MigrationExecutor> migrator_;
};

TEST_F(ReactiveControllerTest, ConfigValidation) {
  ReactiveConfig c = Config();
  EXPECT_TRUE(c.Validate().ok());
  c.q_hat = 50;
  EXPECT_TRUE(c.Validate().IsInvalidArgument());
  c = Config();
  c.high_watermark = 1.5;
  EXPECT_TRUE(c.Validate().IsInvalidArgument());
  c = Config();
  c.low_watermark = 0;
  EXPECT_TRUE(c.Validate().IsInvalidArgument());
  c = Config();
  c.smoothing = 0;
  EXPECT_TRUE(c.Validate().IsInvalidArgument());
}

TEST_F(ReactiveControllerTest, ScalesOutOnlyAfterOverload) {
  Build(1);
  ReactiveController controller(engine_.get(), migrator_.get(), Config());
  controller.Start();
  // Light load first: nothing happens.
  OfferLoad(50.0, 5.0);
  sim_.RunUntil(SecondsToDuration(5.0));
  EXPECT_EQ(engine_->active_nodes(), 1);
  EXPECT_EQ(controller.scale_outs(), 0);
  // Heavy load: 250 txn/s overloads one node (cap_hat 125).
  OfferLoad(250.0, 15.0, 5.0);
  sim_.RunUntil(SecondsToDuration(20.0));
  EXPECT_GT(controller.scale_outs(), 0);
  EXPECT_GE(engine_->active_nodes(), 3);
}

TEST_F(ReactiveControllerTest, ScalesInAfterSustainedLowLoad) {
  Build(4);
  ReactiveController controller(engine_.get(), migrator_.get(), Config());
  controller.Start();
  OfferLoad(60.0, 40.0);  // fits comfortably on 1 node
  sim_.RunUntil(SecondsToDuration(40.0));
  EXPECT_GT(controller.scale_ins(), 0);
  EXPECT_LT(engine_->active_nodes(), 4);
}

TEST_F(ReactiveControllerTest, ScaleInRespectsReplicationFloor) {
  // With k=1 replication the cluster must never shrink below k+1 = 2
  // nodes: dropping to 1 would strand every bucket at degraded k with
  // no node left to rebuild onto.
  EngineConfig config = testing_util::SmallEngineConfig();
  config.initial_nodes = 4;
  config.replication.enabled = true;
  config.replication.k = 1;
  config.replication.db_size_mb = 10.0;
  config.replication.rebuild_chunk_kb = 100.0;
  config.replication.rebuild_rate_kbps = 10000.0;
  config.replication.wire_kbps = 100000.0;
  engine_ = std::make_unique<ClusterEngine>(&sim_, db_.catalog, db_.registry,
                                            config);
  EXPECT_EQ(engine_->min_active_nodes(), 2);
  MigrationOptions migration;
  migration.chunk_kb = 200;
  migration.rate_kbps = 5000;
  migration.wire_kbps = 50000;
  migration.db_size_mb = 10;
  migrator_ = std::make_unique<MigrationExecutor>(engine_.get(), migration);
  ReactiveController controller(engine_.get(), migrator_.get(), Config());
  controller.Start();
  OfferLoad(20.0, 60.0);  // would fit on one node if not for the floor
  sim_.RunUntil(SecondsToDuration(90.0));
  EXPECT_GT(controller.scale_ins(), 0);
  EXPECT_EQ(engine_->active_nodes(), 2);
  EXPECT_EQ(engine_->replication()->degraded_buckets(), 0);
}

TEST_F(ReactiveControllerTest, ScaleInWaitsForHoldPeriod) {
  Build(2);
  ReactiveConfig config = Config();
  config.scale_in_hold = 30 * kSecond;
  ReactiveController controller(engine_.get(), migrator_.get(), config);
  controller.Start();
  OfferLoad(30.0, 10.0);
  sim_.RunUntil(SecondsToDuration(10.0));
  EXPECT_EQ(engine_->active_nodes(), 2);  // hold not yet elapsed
}

TEST_F(ReactiveControllerTest, StopHaltsDecisions) {
  Build(1);
  ReactiveController controller(engine_.get(), migrator_.get(), Config());
  controller.Start();
  controller.Stop();
  OfferLoad(400.0, 5.0);
  sim_.RunUntil(SecondsToDuration(6.0));
  EXPECT_EQ(controller.scale_outs(), 0);
  EXPECT_EQ(engine_->active_nodes(), 1);
}

// --- Fault-handling regressions --------------------------------------

TEST_F(ReactiveControllerTest, CrashedNodeCapacityLossTriggersScaleOut) {
  Build(2);
  ReactiveController controller(engine_.get(), migrator_.get(), Config());
  controller.Start();
  // 150 txn/s fits two live nodes (cap_hat 250, watermark 225): steady
  // state, no trigger.
  OfferLoad(150.0, 25.0);
  sim_.RunUntil(SecondsToDuration(10.0));
  EXPECT_EQ(controller.scale_outs(), 0);
  EXPECT_EQ(engine_->active_nodes(), 2);

  // Killing a node halves serving capacity at unchanged offered load:
  // 150 txn/s now exceeds 0.9 x 125, so the controller must scale out
  // even though the allocation count never dropped.
  ASSERT_TRUE(engine_->CrashNode(1).ok());
  sim_.RunUntil(SecondsToDuration(20.0));
  EXPECT_GE(controller.scale_outs(), 1);
  EXPECT_GT(engine_->active_nodes(), 2);
}

TEST_F(ReactiveControllerTest, CrashResetsScaleInHoldTimer) {
  Build(3);
  ReactiveConfig config = Config();
  config.scale_in_hold = 8 * kSecond;
  ReactiveController controller(engine_.get(), migrator_.get(), config);
  controller.Start();
  OfferLoad(30.0, 30.0);  // low: scale-in would fire at ~9-10 s
  sim_.Schedule(5 * kSecond,
                [this]() { ASSERT_TRUE(engine_->CrashNode(2).ok()); });
  sim_.RunUntil(SecondsToDuration(12.0));
  // The 5 s crash reset the hold timer, so the earliest scale-in is
  // ~14 s; nothing may have fired yet.
  EXPECT_EQ(controller.scale_ins(), 0);
  sim_.RunUntil(SecondsToDuration(30.0));
  EXPECT_GE(controller.scale_ins(), 1);  // re-established low period
}

}  // namespace
}  // namespace pstore
