#pragma once

#include <memory>

#include "cluster/engine.h"
#include "sim/simulator.h"
#include "storage/schema.h"
#include "txn/procedure.h"

/// \file test_util.h
/// Shared fixtures: a minimal key-value database (one table, Put/Get/
/// Delete procedures) on a ClusterEngine, for cluster/migration/core
/// tests that don't need the full B2W workload.

namespace pstore {
namespace testing_util {

struct KvDatabase {
  TableId table = -1;
  ProcedureId put = -1;
  ProcedureId get = -1;
  ProcedureId del = -1;
  Catalog catalog;
  ProcedureRegistry registry;
};

inline KvDatabase MakeKvDatabase() {
  KvDatabase db;
  db.table = *db.catalog.AddTable(Schema(
      "KV", {{"k", ColumnType::kInt64}, {"v", ColumnType::kInt64}}, 0));
  const TableId table = db.table;
  db.put = *db.registry.Register(ProcedureDef{
      "Put",
      [table](ExecutionContext& ctx, const TxnRequest& req) {
        TxnResult r;
        r.status = ctx.Upsert(
            table, Row({Value(req.key), req.args.empty()
                                            ? Value(int64_t{0})
                                            : req.args[0]}));
        return r;
      },
      1.0});
  db.get = *db.registry.Register(ProcedureDef{
      "Get",
      [table](ExecutionContext& ctx, const TxnRequest& req) {
        TxnResult r;
        auto row = ctx.Get(table, req.key);
        if (!row.ok()) {
          r.status = row.status();
        } else {
          r.rows.push_back(std::move(row).MoveValueUnsafe());
        }
        return r;
      },
      1.0});
  db.del = *db.registry.Register(ProcedureDef{
      "Del",
      [table](ExecutionContext& ctx, const TxnRequest& req) {
        TxnResult r;
        r.status = ctx.Delete(table, req.key);
        return r;
      },
      1.0});
  return db;
}

/// Engine with small, fast-to-test defaults (deterministic service
/// times unless overridden).
inline EngineConfig SmallEngineConfig() {
  EngineConfig config;
  config.num_buckets = 64;
  config.partitions_per_node = 2;
  config.max_nodes = 8;
  config.initial_nodes = 2;
  config.txn_service_us_mean = 1000.0;  // 1 ms
  config.txn_service_cv = 0.0;          // deterministic
  return config;
}

}  // namespace testing_util
}  // namespace pstore
