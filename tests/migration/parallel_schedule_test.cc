#include "migration/parallel_schedule.h"

#include <algorithm>
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "planner/move_model.h"

namespace pstore {
namespace {

/// Checks the structural invariants of Section 4.4.1 on a schedule:
///  - rounds = max(s, delta);
///  - every (small, delta) pair transfers exactly once;
///  - within a round, each small-side node and each delta-side node
///    participates in at most one transfer;
///  - scale-out allocation is non-decreasing, scale-in non-increasing.
void CheckScheduleInvariants(const MoveSchedule& schedule) {
  const int32_t s = schedule.small_side();
  const int32_t delta = schedule.delta();
  if (delta == 0) {
    EXPECT_TRUE(schedule.rounds.empty());
    return;
  }
  EXPECT_EQ(static_cast<int32_t>(schedule.rounds.size()),
            std::max(s, delta));

  std::map<std::pair<int32_t, int32_t>, int> pair_count;
  for (const auto& round : schedule.rounds) {
    std::set<int32_t> small_used, delta_used;
    for (const auto& t : round.transfers) {
      ASSERT_GE(t.small_index, 0);
      ASSERT_LT(t.small_index, s);
      ASSERT_GE(t.delta_index, 0);
      ASSERT_LT(t.delta_index, delta);
      EXPECT_TRUE(small_used.insert(t.small_index).second)
          << "small node used twice in a round";
      EXPECT_TRUE(delta_used.insert(t.delta_index).second)
          << "delta node used twice in a round";
      ++pair_count[{t.small_index, t.delta_index}];
    }
  }
  for (int32_t i = 0; i < s; ++i) {
    for (int32_t d = 0; d < delta; ++d) {
      EXPECT_EQ((pair_count[{i, d}]), 1)
          << "pair (" << i << "," << d << ") in " << schedule.from_nodes
          << "->" << schedule.to_nodes;
    }
  }

  int32_t prev = schedule.MachinesDuringRound(0);
  for (size_t r = 1; r < schedule.rounds.size(); ++r) {
    const int32_t cur = schedule.MachinesDuringRound(static_cast<int32_t>(r));
    if (schedule.scale_out()) {
      EXPECT_GE(cur, prev);
    } else {
      EXPECT_LE(cur, prev);
    }
    prev = cur;
  }
}

TEST(MoveScheduleTest, NoopMoveHasNoRounds) {
  auto schedule = BuildMoveSchedule(4, 4);
  ASSERT_TRUE(schedule.ok());
  EXPECT_TRUE(schedule->rounds.empty());
  EXPECT_DOUBLE_EQ(schedule->AverageMachines(), 4.0);
}

TEST(MoveScheduleTest, InvalidSizesRejected) {
  EXPECT_FALSE(BuildMoveSchedule(0, 3).ok());
  EXPECT_FALSE(BuildMoveSchedule(3, 0).ok());
}

TEST(MoveScheduleTest, Case1AllAtOnce) {
  // 3 -> 5: delta 2 <= s 3, all receivers join immediately, s rounds.
  auto schedule = BuildMoveSchedule(3, 5);
  ASSERT_TRUE(schedule.ok());
  EXPECT_EQ(schedule->rounds.size(), 3u);
  CheckScheduleInvariants(*schedule);
  for (size_t r = 0; r < schedule->rounds.size(); ++r) {
    EXPECT_EQ(schedule->MachinesDuringRound(static_cast<int32_t>(r)), 5);
  }
}

TEST(MoveScheduleTest, Case2PerfectMultipleBlocks) {
  // 3 -> 9: two blocks of 3, six rounds, machines 6 then 9.
  auto schedule = BuildMoveSchedule(3, 9);
  ASSERT_TRUE(schedule.ok());
  EXPECT_EQ(schedule->rounds.size(), 6u);
  CheckScheduleInvariants(*schedule);
  EXPECT_EQ(schedule->MachinesDuringRound(0), 6);
  EXPECT_EQ(schedule->MachinesDuringRound(2), 6);
  EXPECT_EQ(schedule->MachinesDuringRound(3), 9);
  EXPECT_EQ(schedule->MachinesDuringRound(5), 9);
  EXPECT_DOUBLE_EQ(schedule->AverageMachines(), 7.5);
}

TEST(MoveScheduleTest, Case3ThreePhasesTable1) {
  // Table 1's example: 3 -> 14 completes in 11 rounds (a naive
  // block-only schedule needs 12).
  auto schedule = BuildMoveSchedule(3, 14);
  ASSERT_TRUE(schedule.ok());
  EXPECT_EQ(schedule->rounds.size(), 11u);
  CheckScheduleInvariants(*schedule);
  // Phase 1: two blocks of 3 -> machines 6,6,6,9,9,9.
  EXPECT_EQ(schedule->MachinesDuringRound(0), 6);
  EXPECT_EQ(schedule->MachinesDuringRound(3), 9);
  // Phase 2: machines 12 for 2 rounds.
  EXPECT_EQ(schedule->MachinesDuringRound(6), 12);
  EXPECT_EQ(schedule->MachinesDuringRound(7), 12);
  // Phase 3: all 14.
  EXPECT_EQ(schedule->MachinesDuringRound(8), 14);
  EXPECT_EQ(schedule->MachinesDuringRound(10), 14);
  // Every sender busy in every phase-3 round (the point of the phases).
  for (int32_t r = 8; r <= 10; ++r) {
    EXPECT_EQ(schedule->rounds[static_cast<size_t>(r)].transfers.size(), 3u);
  }
}

TEST(MoveScheduleTest, ScaleInReversesAllocationTimeline) {
  auto schedule = BuildMoveSchedule(14, 3);
  ASSERT_TRUE(schedule.ok());
  EXPECT_EQ(schedule->rounds.size(), 11u);
  CheckScheduleInvariants(*schedule);
  // Mirror of scale-out: 14 first, 6 last.
  EXPECT_EQ(schedule->MachinesDuringRound(0), 14);
  EXPECT_EQ(schedule->MachinesDuringRound(10), 6);
}

TEST(MoveScheduleTest, AverageMachinesMatchesAlgorithm4ForTable1) {
  auto schedule = BuildMoveSchedule(3, 14);
  ASSERT_TRUE(schedule.ok());
  EXPECT_NEAR(schedule->AverageMachines(), 111.0 / 11.0, 1e-9);
}

TEST(MoveScheduleTest, ToStringMentionsRounds) {
  auto schedule = BuildMoveSchedule(3, 5);
  ASSERT_TRUE(schedule.ok());
  const std::string s = schedule->ToString();
  EXPECT_NE(s.find("3 -> 5"), std::string::npos);
  EXPECT_NE(s.find("round 0"), std::string::npos);
}

TEST(MoveScheduleTest, FirstAndLastAppearance) {
  auto schedule = BuildMoveSchedule(3, 9);
  ASSERT_TRUE(schedule.ok());
  // Block 0 delta nodes appear in rounds 0-2; block 1 in rounds 3-5.
  EXPECT_EQ(schedule->FirstAppearance(0), 0);
  EXPECT_EQ(schedule->LastAppearance(0), 2);
  EXPECT_EQ(schedule->FirstAppearance(3), 3);
  EXPECT_EQ(schedule->LastAppearance(5), 5);
  EXPECT_EQ(schedule->FirstAppearance(99), -1);
}

// Property sweep: invariants hold and the schedule's realized average
// machine count equals Algorithm 4's closed form for every (b, a).
class ScheduleSweepTest
    : public ::testing::TestWithParam<std::tuple<int32_t, int32_t>> {};

TEST_P(ScheduleSweepTest, InvariantsAndAlgorithm4Agreement) {
  const auto [b, a] = GetParam();
  auto schedule = BuildMoveSchedule(b, a);
  ASSERT_TRUE(schedule.ok());
  CheckScheduleInvariants(*schedule);

  MoveModelConfig config;
  config.q = 100;
  config.partitions_per_node = 1;
  config.d_minutes = 1;
  config.interval_minutes = 0.001;
  MoveModel model(config);
  EXPECT_NEAR(schedule->AverageMachines(), model.AvgMachinesAllocated(b, a),
              1e-9)
      << b << " -> " << a;
}

INSTANTIATE_TEST_SUITE_P(
    AllCases, ScheduleSweepTest,
    ::testing::Values(
        std::make_tuple(1, 2), std::make_tuple(2, 1), std::make_tuple(1, 10),
        std::make_tuple(10, 1), std::make_tuple(3, 5), std::make_tuple(5, 3),
        std::make_tuple(3, 9), std::make_tuple(9, 3), std::make_tuple(3, 14),
        std::make_tuple(14, 3), std::make_tuple(4, 14),
        std::make_tuple(14, 4), std::make_tuple(5, 23),
        std::make_tuple(23, 5), std::make_tuple(7, 8), std::make_tuple(8, 7),
        std::make_tuple(2, 9), std::make_tuple(9, 2), std::make_tuple(6, 40),
        std::make_tuple(40, 6), std::make_tuple(12, 30),
        std::make_tuple(30, 12)));

}  // namespace
}  // namespace pstore
