#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "../test_util.h"
#include "fault/invariant_checker.h"
#include "migration/migration_executor.h"

/// Crash-during-migration interleavings, pinned deterministically to the
/// middle of a move rather than drawn from a random plan: crash the
/// *destination* node while chunks are in flight toward it, and crash a
/// *source* node mid-drain. In both modes (legacy failover and k-safety
/// promotion) the move must abort or complete cleanly, every bucket must
/// stay owned by a live partition, and no row may silently disappear.

namespace pstore {
namespace {

using testing_util::MakeKvDatabase;
using testing_util::SmallEngineConfig;

struct CrashDuringMoveOutcome {
  bool move_completed = false;
  bool move_aborted = false;
  int64_t violations = 0;
  int64_t rows_lost = 0;
  std::string first_violation;
};

EngineConfig CrashTestConfig(bool replicated) {
  EngineConfig config = SmallEngineConfig();
  config.initial_nodes = 2;
  if (replicated) {
    config.replication.enabled = true;
    config.replication.k = 1;
    config.replication.db_size_mb = 10.0;
    config.replication.rebuild_chunk_kb = 100.0;
    config.replication.rebuild_rate_kbps = 10000.0;
    config.replication.wire_kbps = 100000.0;
  }
  return config;
}

/// Starts a 2 -> 3 scale-out and crashes `victim` once the move is
/// genuinely mid-flight (some chunks landed, more outstanding).
CrashDuringMoveOutcome RunCrashDuringMove(NodeId victim, bool replicated) {
  auto db = MakeKvDatabase();
  Simulator sim;
  ClusterEngine engine(&sim, db.catalog, db.registry,
                       CrashTestConfig(replicated));
  const int64_t rows = 200;
  for (int64_t k = 0; k < rows; ++k) {
    EXPECT_TRUE(engine.LoadRow(db.table, Row({Value(k), Value(k)})).ok());
  }

  MigrationOptions options;
  options.chunk_kb = 100;
  options.rate_kbps = 1000;   // Slow enough that the move spans seconds.
  options.wire_kbps = 100000;
  options.db_size_mb = 10;
  MigrationExecutor migrator(&engine, options);

  InvariantChecker checker(&engine, &migrator);
  checker.set_expected_rows(rows);
  checker.StartPeriodic(100 * kMillisecond);

  bool completed = false;
  EXPECT_TRUE(migrator.StartMove(3, [&]() { completed = true; }).ok());

  // Fire the crash mid-chunk: after some data moved, before the move
  // could have finished (10 MB at 1 MB/s per stream spans ~3 s).
  sim.Schedule(kSecond, [&]() {
    if (migrator.InProgress()) (void)engine.CrashNode(victim);
  });

  sim.RunUntil(120 * kSecond);
  checker.Stop();
  Status final_check = checker.Check();
  EXPECT_TRUE(final_check.ok()) << final_check.ToString();

  CrashDuringMoveOutcome out;
  out.move_completed = completed;
  for (const MoveRecord& rec : migrator.history()) {
    if (rec.aborted) out.move_aborted = true;
  }
  out.violations = static_cast<int64_t>(checker.violations().size());
  if (!checker.violations().empty()) {
    out.first_violation = checker.violations()[0].ToString();
  }
  out.rows_lost = engine.rows_lost();
  EXPECT_FALSE(migrator.InProgress());  // Never wedged.
  return out;
}

TEST(MigrationCrashTest, CrashDestinationMidChunkLegacy) {
  const CrashDuringMoveOutcome out =
      RunCrashDuringMove(/*victim=*/2, /*replicated=*/false);
  // The receiver died under the move: it must abort, not complete.
  EXPECT_TRUE(out.move_aborted);
  EXPECT_FALSE(out.move_completed);
  EXPECT_EQ(out.violations, 0) << out.first_violation;
  EXPECT_EQ(out.rows_lost, 0);
}

TEST(MigrationCrashTest, CrashDestinationMidChunkReplicated) {
  const CrashDuringMoveOutcome out =
      RunCrashDuringMove(/*victim=*/2, /*replicated=*/true);
  EXPECT_TRUE(out.move_aborted);
  EXPECT_FALSE(out.move_completed);
  EXPECT_EQ(out.violations, 0) << out.first_violation;
  EXPECT_EQ(out.rows_lost, 0);
}

TEST(MigrationCrashTest, CrashSourceMidDrainLegacy) {
  const CrashDuringMoveOutcome out =
      RunCrashDuringMove(/*victim=*/1, /*replicated=*/false);
  // The sender died: legacy failover teleports its remaining buckets;
  // whether the move aborts or rides through, no state is corrupted.
  EXPECT_TRUE(out.move_aborted || out.move_completed);
  EXPECT_EQ(out.violations, 0) << out.first_violation;
  EXPECT_EQ(out.rows_lost, 0);
}

TEST(MigrationCrashTest, CrashSourceMidDrainReplicated) {
  const CrashDuringMoveOutcome out =
      RunCrashDuringMove(/*victim=*/1, /*replicated=*/true);
  EXPECT_TRUE(out.move_aborted || out.move_completed);
  EXPECT_EQ(out.violations, 0) << out.first_violation;
  // k=1 and a single failure: promotion saves every committed row.
  EXPECT_EQ(out.rows_lost, 0);
}

TEST(MigrationCrashTest, CrashInterleavingsAreDeterministic) {
  for (const bool replicated : {false, true}) {
    for (const NodeId victim : {1, 2}) {
      const CrashDuringMoveOutcome a = RunCrashDuringMove(victim, replicated);
      const CrashDuringMoveOutcome b = RunCrashDuringMove(victim, replicated);
      EXPECT_EQ(a.move_completed, b.move_completed);
      EXPECT_EQ(a.move_aborted, b.move_aborted);
      EXPECT_EQ(a.violations, b.violations);
      EXPECT_EQ(a.rows_lost, b.rows_lost);
    }
  }
}

}  // namespace
}  // namespace pstore
