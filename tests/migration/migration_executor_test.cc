#include "migration/migration_executor.h"

#include <gtest/gtest.h>

#include "../test_util.h"

namespace pstore {
namespace {

using testing_util::MakeKvDatabase;
using testing_util::SmallEngineConfig;

class MigrationExecutorTest : public ::testing::Test {
 protected:
  MigrationExecutorTest() : db_(MakeKvDatabase()) {}

  void BuildEngine(EngineConfig config, int64_t rows = 500) {
    engine_ = std::make_unique<ClusterEngine>(&sim_, db_.catalog,
                                              db_.registry, config);
    for (int64_t k = 0; k < rows; ++k) {
      ASSERT_TRUE(
          engine_->LoadRow(db_.table, Row({Value(k), Value(k)})).ok());
    }
  }

  MigrationOptions FastOptions() {
    MigrationOptions opts;
    opts.chunk_kb = 100;
    opts.rate_kbps = 10000;   // fast so tests are cheap
    opts.wire_kbps = 100000;
    opts.db_size_mb = 10;
    return opts;
  }

  Simulator sim_;
  testing_util::KvDatabase db_;
  std::unique_ptr<ClusterEngine> engine_;
};

TEST_F(MigrationExecutorTest, OptionsValidation) {
  MigrationOptions opts;
  EXPECT_TRUE(opts.Validate().ok());
  opts.chunk_kb = 0;
  EXPECT_TRUE(opts.Validate().IsInvalidArgument());
  opts = MigrationOptions{};
  opts.rate_kbps = -1;
  EXPECT_TRUE(opts.Validate().IsInvalidArgument());
  opts = MigrationOptions{};
  opts.rate_multiplier = 0;
  EXPECT_TRUE(opts.Validate().IsInvalidArgument());
}

TEST_F(MigrationExecutorTest, ScaleOutMovesDataAndBalances) {
  BuildEngine(SmallEngineConfig());
  MigrationExecutor migrator(engine_.get(), FastOptions());
  const int64_t rows_before = engine_->TotalRowCount();

  bool completed = false;
  ASSERT_TRUE(migrator.StartMove(4, [&]() { completed = true; }).ok());
  EXPECT_TRUE(migrator.InProgress());
  sim_.RunAll();

  EXPECT_TRUE(completed);
  EXPECT_FALSE(migrator.InProgress());
  EXPECT_EQ(engine_->active_nodes(), 4);
  EXPECT_EQ(engine_->TotalRowCount(), rows_before);

  // Buckets spread evenly: 64 buckets over 8 partitions -> 8 each.
  const auto counts = engine_->partition_map().BucketCounts();
  for (int32_t p = 0; p < engine_->active_partitions(); ++p) {
    EXPECT_NEAR(counts[static_cast<size_t>(p)], 8, 3);
  }
  // Every row is where the map says.
  for (int64_t k = 0; k < rows_before; ++k) {
    const PartitionId p = engine_->partition_map().PartitionOfKey(k);
    EXPECT_TRUE(engine_->fragment(p)->Contains(db_.table, k));
  }
}

TEST_F(MigrationExecutorTest, ScaleInDrainsAndReleasesNodes) {
  EngineConfig config = SmallEngineConfig();
  config.initial_nodes = 4;
  BuildEngine(config);
  MigrationExecutor migrator(engine_.get(), FastOptions());

  bool completed = false;
  ASSERT_TRUE(migrator.StartMove(2, [&]() { completed = true; }).ok());
  sim_.RunAll();
  EXPECT_TRUE(completed);
  EXPECT_EQ(engine_->active_nodes(), 2);
  EXPECT_EQ(engine_->TotalRowCount(), 500);
  // Released nodes hold nothing.
  for (int32_t p = 4; p < 8; ++p) {
    EXPECT_EQ(engine_->fragment(p)->TotalRowCount(), 0);
  }
  // All keys still reachable.
  for (int64_t k = 0; k < 500; ++k) {
    const PartitionId p = engine_->partition_map().PartitionOfKey(k);
    EXPECT_TRUE(engine_->fragment(p)->Contains(db_.table, k));
    EXPECT_LT(p, 4);
  }
}

TEST_F(MigrationExecutorTest, RejectsConcurrentMoves) {
  BuildEngine(SmallEngineConfig());
  MigrationExecutor migrator(engine_.get(), FastOptions());
  ASSERT_TRUE(migrator.StartMove(4, nullptr).ok());
  EXPECT_TRUE(migrator.StartMove(6, nullptr).IsFailedPrecondition());
  sim_.RunAll();
  EXPECT_TRUE(migrator.StartMove(6, nullptr).ok());
  sim_.RunAll();
  EXPECT_EQ(engine_->active_nodes(), 6);
}

TEST_F(MigrationExecutorTest, TargetOutOfRangeRejected) {
  BuildEngine(SmallEngineConfig());
  MigrationExecutor migrator(engine_.get(), FastOptions());
  EXPECT_TRUE(migrator.StartMove(0, nullptr).IsInvalidArgument());
  EXPECT_TRUE(migrator.StartMove(100, nullptr).IsInvalidArgument());
}

TEST_F(MigrationExecutorTest, SameTargetCompletesImmediately) {
  BuildEngine(SmallEngineConfig());
  MigrationExecutor migrator(engine_.get(), FastOptions());
  bool completed = false;
  ASSERT_TRUE(migrator.StartMove(2, [&]() { completed = true; }).ok());
  sim_.RunAll();
  EXPECT_TRUE(completed);
  EXPECT_TRUE(migrator.history().empty());
}

TEST_F(MigrationExecutorTest, DurationMatchesMoveModel) {
  // 1 -> 2 with P=2: max parallelism 2, fraction 1/2. The sustained
  // per-stream rate R gives T = (db/2) / R / 2 seconds.
  EngineConfig config = SmallEngineConfig();
  config.initial_nodes = 1;
  BuildEngine(config);
  MigrationOptions opts;
  opts.chunk_kb = 64;
  opts.rate_kbps = 1000;
  opts.wire_kbps = 1e9;   // negligible burst time
  opts.db_size_mb = 100;  // 102400 kB
  MigrationExecutor migrator(engine_.get(), opts);

  ASSERT_TRUE(migrator.StartMove(2, nullptr).ok());
  sim_.RunAll();
  ASSERT_EQ(migrator.history().size(), 1u);
  const MoveRecord& record = migrator.history()[0];
  const double elapsed_s = DurationToSeconds(record.end - record.start);
  // Expected: total moved = half the DB = 51200 kB over 2 parallel
  // streams at 1000 kB/s -> ~25.6 s.
  EXPECT_NEAR(elapsed_s, 25.6, 3.0);
  EXPECT_NEAR(migrator.total_kb_moved(), 51200, 5200);
}

TEST_F(MigrationExecutorTest, RateMultiplierShortensMove) {
  auto run = [&](double multiplier) {
    Simulator sim;
    ClusterEngine engine(&sim, db_.catalog, db_.registry,
                         SmallEngineConfig());
    for (int64_t k = 0; k < 100; ++k) {
      EXPECT_TRUE(engine.LoadRow(db_.table, Row({Value(k), Value(k)})).ok());
    }
    MigrationOptions opts = FastOptions();
    opts.rate_kbps = 500;
    MigrationExecutor migrator(&engine, opts);
    EXPECT_TRUE(migrator.StartMove(4, nullptr, multiplier).ok());
    sim.RunAll();
    return migrator.history()[0].end - migrator.history()[0].start;
  };
  const SimDuration slow = run(1.0);
  const SimDuration fast = run(8.0);
  EXPECT_GT(static_cast<double>(slow) / static_cast<double>(fast), 4.0);
}

TEST_F(MigrationExecutorTest, MigrationOccupiesExecutors) {
  EngineConfig config = SmallEngineConfig();
  config.initial_nodes = 1;
  BuildEngine(config);
  MigrationOptions opts = FastOptions();
  opts.wire_kbps = 1000;  // slow wire: long bursts
  MigrationExecutor migrator(engine_.get(), opts);
  const SimDuration busy_before = engine_->executor(0)->busy_time();
  ASSERT_TRUE(migrator.StartMove(2, nullptr).ok());
  sim_.RunAll();
  EXPECT_GT(engine_->executor(0)->busy_time(), busy_before);
  EXPECT_GT(engine_->executor(2)->busy_time(), 0);  // receiver side
}

TEST_F(MigrationExecutorTest, TransactionsKeepCommittingDuringMigration) {
  BuildEngine(SmallEngineConfig());
  MigrationExecutor migrator(engine_.get(), FastOptions());
  ASSERT_TRUE(migrator.StartMove(4, nullptr).ok());
  // Interleave reads of existing keys with the move.
  for (int64_t i = 0; i < 200; ++i) {
    TxnRequest get;
    get.proc = db_.get;
    get.key = i % 500;
    sim_.Schedule(i * kMillisecond,
                  [this, get]() { engine_->Submit(get); });
  }
  sim_.RunAll();
  EXPECT_EQ(engine_->txns_committed(), 200);
  EXPECT_EQ(engine_->txns_aborted(), 0);
}

TEST_F(MigrationExecutorTest, HistoryRecordsSpans) {
  BuildEngine(SmallEngineConfig());
  MigrationExecutor migrator(engine_.get(), FastOptions());
  ASSERT_TRUE(migrator.StartMove(4, nullptr).ok());
  ASSERT_EQ(migrator.history().size(), 1u);
  EXPECT_EQ(migrator.history()[0].end, -1);  // in flight
  sim_.RunAll();
  EXPECT_GT(migrator.history()[0].end, migrator.history()[0].start);
  EXPECT_EQ(migrator.history()[0].from_nodes, 2);
  EXPECT_EQ(migrator.history()[0].to_nodes, 4);
}

TEST_F(MigrationExecutorTest, RepeatedScaleOutInRoundTripPreservesData) {
  BuildEngine(SmallEngineConfig(), 300);
  MigrationExecutor migrator(engine_.get(), FastOptions());
  const std::vector<int32_t> targets = {5, 3, 8, 1, 2};
  for (int32_t target : targets) {
    ASSERT_TRUE(migrator.StartMove(target, nullptr).ok());
    sim_.RunAll();
    ASSERT_EQ(engine_->active_nodes(), target);
    ASSERT_EQ(engine_->TotalRowCount(), 300);
    for (int64_t k = 0; k < 300; ++k) {
      const PartitionId p = engine_->partition_map().PartitionOfKey(k);
      ASSERT_TRUE(engine_->fragment(p)->Contains(db_.table, k))
          << "key " << k << " lost at " << target << " nodes";
      ASSERT_LT(engine_->NodeOfPartition(p), target);
    }
  }
}

}  // namespace
}  // namespace pstore
