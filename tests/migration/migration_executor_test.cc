#include "migration/migration_executor.h"

#include <gtest/gtest.h>

#include "../test_util.h"

namespace pstore {
namespace {

using testing_util::MakeKvDatabase;
using testing_util::SmallEngineConfig;

class MigrationExecutorTest : public ::testing::Test {
 protected:
  MigrationExecutorTest() : db_(MakeKvDatabase()) {}

  void BuildEngine(EngineConfig config, int64_t rows = 500) {
    engine_ = std::make_unique<ClusterEngine>(&sim_, db_.catalog,
                                              db_.registry, config);
    for (int64_t k = 0; k < rows; ++k) {
      ASSERT_TRUE(
          engine_->LoadRow(db_.table, Row({Value(k), Value(k)})).ok());
    }
  }

  MigrationOptions FastOptions() {
    MigrationOptions opts;
    opts.chunk_kb = 100;
    opts.rate_kbps = 10000;   // fast so tests are cheap
    opts.wire_kbps = 100000;
    opts.db_size_mb = 10;
    return opts;
  }

  Simulator sim_;
  testing_util::KvDatabase db_;
  std::unique_ptr<ClusterEngine> engine_;
};

TEST_F(MigrationExecutorTest, OptionsValidation) {
  MigrationOptions opts;
  EXPECT_TRUE(opts.Validate().ok());
  opts.chunk_kb = 0;
  EXPECT_TRUE(opts.Validate().IsInvalidArgument());
  opts = MigrationOptions{};
  opts.rate_kbps = -1;
  EXPECT_TRUE(opts.Validate().IsInvalidArgument());
  opts = MigrationOptions{};
  opts.rate_multiplier = 0;
  EXPECT_TRUE(opts.Validate().IsInvalidArgument());
}

TEST_F(MigrationExecutorTest, ScaleOutMovesDataAndBalances) {
  BuildEngine(SmallEngineConfig());
  MigrationExecutor migrator(engine_.get(), FastOptions());
  const int64_t rows_before = engine_->TotalRowCount();

  bool completed = false;
  ASSERT_TRUE(migrator.StartMove(4, [&]() { completed = true; }).ok());
  EXPECT_TRUE(migrator.InProgress());
  sim_.RunAll();

  EXPECT_TRUE(completed);
  EXPECT_FALSE(migrator.InProgress());
  EXPECT_EQ(engine_->active_nodes(), 4);
  EXPECT_EQ(engine_->TotalRowCount(), rows_before);

  // Buckets spread evenly: 64 buckets over 8 partitions -> 8 each.
  const auto counts = engine_->partition_map().BucketCounts();
  for (int32_t p = 0; p < engine_->active_partitions(); ++p) {
    EXPECT_NEAR(counts[static_cast<size_t>(p)], 8, 3);
  }
  // Every row is where the map says.
  for (int64_t k = 0; k < rows_before; ++k) {
    const PartitionId p = engine_->partition_map().PartitionOfKey(k);
    EXPECT_TRUE(engine_->fragment(p)->Contains(db_.table, k));
  }
}

TEST_F(MigrationExecutorTest, ScaleInDrainsAndReleasesNodes) {
  EngineConfig config = SmallEngineConfig();
  config.initial_nodes = 4;
  BuildEngine(config);
  MigrationExecutor migrator(engine_.get(), FastOptions());

  bool completed = false;
  ASSERT_TRUE(migrator.StartMove(2, [&]() { completed = true; }).ok());
  sim_.RunAll();
  EXPECT_TRUE(completed);
  EXPECT_EQ(engine_->active_nodes(), 2);
  EXPECT_EQ(engine_->TotalRowCount(), 500);
  // Released nodes hold nothing.
  for (int32_t p = 4; p < 8; ++p) {
    EXPECT_EQ(engine_->fragment(p)->TotalRowCount(), 0);
  }
  // All keys still reachable.
  for (int64_t k = 0; k < 500; ++k) {
    const PartitionId p = engine_->partition_map().PartitionOfKey(k);
    EXPECT_TRUE(engine_->fragment(p)->Contains(db_.table, k));
    EXPECT_LT(p, 4);
  }
}

TEST_F(MigrationExecutorTest, RejectsConcurrentMoves) {
  BuildEngine(SmallEngineConfig());
  MigrationExecutor migrator(engine_.get(), FastOptions());
  ASSERT_TRUE(migrator.StartMove(4, nullptr).ok());
  EXPECT_TRUE(migrator.StartMove(6, nullptr).IsFailedPrecondition());
  sim_.RunAll();
  EXPECT_TRUE(migrator.StartMove(6, nullptr).ok());
  sim_.RunAll();
  EXPECT_EQ(engine_->active_nodes(), 6);
}

TEST_F(MigrationExecutorTest, TargetOutOfRangeRejected) {
  BuildEngine(SmallEngineConfig());
  MigrationExecutor migrator(engine_.get(), FastOptions());
  EXPECT_TRUE(migrator.StartMove(0, nullptr).IsInvalidArgument());
  EXPECT_TRUE(migrator.StartMove(100, nullptr).IsInvalidArgument());
}

TEST_F(MigrationExecutorTest, SameTargetCompletesImmediately) {
  BuildEngine(SmallEngineConfig());
  MigrationExecutor migrator(engine_.get(), FastOptions());
  bool completed = false;
  ASSERT_TRUE(migrator.StartMove(2, [&]() { completed = true; }).ok());
  sim_.RunAll();
  EXPECT_TRUE(completed);
  EXPECT_TRUE(migrator.history().empty());
}

TEST_F(MigrationExecutorTest, DurationMatchesMoveModel) {
  // 1 -> 2 with P=2: max parallelism 2, fraction 1/2. The sustained
  // per-stream rate R gives T = (db/2) / R / 2 seconds.
  EngineConfig config = SmallEngineConfig();
  config.initial_nodes = 1;
  BuildEngine(config);
  MigrationOptions opts;
  opts.chunk_kb = 64;
  opts.rate_kbps = 1000;
  opts.wire_kbps = 1e9;   // negligible burst time
  opts.db_size_mb = 100;  // 102400 kB
  MigrationExecutor migrator(engine_.get(), opts);

  ASSERT_TRUE(migrator.StartMove(2, nullptr).ok());
  sim_.RunAll();
  ASSERT_EQ(migrator.history().size(), 1u);
  const MoveRecord& record = migrator.history()[0];
  const double elapsed_s = DurationToSeconds(record.end - record.start);
  // Expected: total moved = half the DB = 51200 kB over 2 parallel
  // streams at 1000 kB/s -> ~25.6 s.
  EXPECT_NEAR(elapsed_s, 25.6, 3.0);
  EXPECT_NEAR(migrator.total_kb_moved(), 51200, 5200);
}

TEST_F(MigrationExecutorTest, RateMultiplierShortensMove) {
  auto run = [&](double multiplier) {
    Simulator sim;
    ClusterEngine engine(&sim, db_.catalog, db_.registry,
                         SmallEngineConfig());
    for (int64_t k = 0; k < 100; ++k) {
      EXPECT_TRUE(engine.LoadRow(db_.table, Row({Value(k), Value(k)})).ok());
    }
    MigrationOptions opts = FastOptions();
    opts.rate_kbps = 500;
    MigrationExecutor migrator(&engine, opts);
    EXPECT_TRUE(migrator.StartMove(4, nullptr, multiplier).ok());
    sim.RunAll();
    return migrator.history()[0].end - migrator.history()[0].start;
  };
  const SimDuration slow = run(1.0);
  const SimDuration fast = run(8.0);
  EXPECT_GT(static_cast<double>(slow) / static_cast<double>(fast), 4.0);
}

TEST_F(MigrationExecutorTest, MigrationOccupiesExecutors) {
  EngineConfig config = SmallEngineConfig();
  config.initial_nodes = 1;
  BuildEngine(config);
  MigrationOptions opts = FastOptions();
  opts.wire_kbps = 1000;  // slow wire: long bursts
  MigrationExecutor migrator(engine_.get(), opts);
  const SimDuration busy_before = engine_->executor(0)->busy_time();
  ASSERT_TRUE(migrator.StartMove(2, nullptr).ok());
  sim_.RunAll();
  EXPECT_GT(engine_->executor(0)->busy_time(), busy_before);
  EXPECT_GT(engine_->executor(2)->busy_time(), 0);  // receiver side
}

TEST_F(MigrationExecutorTest, TransactionsKeepCommittingDuringMigration) {
  BuildEngine(SmallEngineConfig());
  MigrationExecutor migrator(engine_.get(), FastOptions());
  ASSERT_TRUE(migrator.StartMove(4, nullptr).ok());
  // Interleave reads of existing keys with the move.
  for (int64_t i = 0; i < 200; ++i) {
    TxnRequest get;
    get.proc = db_.get;
    get.key = i % 500;
    sim_.Schedule(i * kMillisecond,
                  [this, get]() { engine_->Submit(get); });
  }
  sim_.RunAll();
  EXPECT_EQ(engine_->txns_committed(), 200);
  EXPECT_EQ(engine_->txns_aborted(), 0);
}

TEST_F(MigrationExecutorTest, HistoryRecordsSpans) {
  BuildEngine(SmallEngineConfig());
  MigrationExecutor migrator(engine_.get(), FastOptions());
  ASSERT_TRUE(migrator.StartMove(4, nullptr).ok());
  ASSERT_EQ(migrator.history().size(), 1u);
  EXPECT_EQ(migrator.history()[0].end, -1);  // in flight
  sim_.RunAll();
  EXPECT_GT(migrator.history()[0].end, migrator.history()[0].start);
  EXPECT_EQ(migrator.history()[0].from_nodes, 2);
  EXPECT_EQ(migrator.history()[0].to_nodes, 4);
}

TEST_F(MigrationExecutorTest, RepeatedScaleOutInRoundTripPreservesData) {
  BuildEngine(SmallEngineConfig(), 300);
  MigrationExecutor migrator(engine_.get(), FastOptions());
  const std::vector<int32_t> targets = {5, 3, 8, 1, 2};
  for (int32_t target : targets) {
    ASSERT_TRUE(migrator.StartMove(target, nullptr).ok());
    sim_.RunAll();
    ASSERT_EQ(engine_->active_nodes(), target);
    ASSERT_EQ(engine_->TotalRowCount(), 300);
    for (int64_t k = 0; k < 300; ++k) {
      const PartitionId p = engine_->partition_map().PartitionOfKey(k);
      ASSERT_TRUE(engine_->fragment(p)->Contains(db_.table, k))
          << "key " << k << " lost at " << target << " nodes";
      ASSERT_LT(engine_->NodeOfPartition(p), target);
    }
  }
}

// --- Fault-handling regressions --------------------------------------

TEST_F(MigrationExecutorTest, ReceiverCrashAbortsMoveCleanly) {
  BuildEngine(SmallEngineConfig());
  MigrationExecutor migrator(engine_.get(), FastOptions());
  bool completed = false;
  ASSERT_TRUE(migrator.StartMove(4, [&]() { completed = true; }).ok());
  // Kill a receiver node mid-move.
  sim_.Schedule(15 * kMillisecond,
                [this]() { ASSERT_TRUE(engine_->CrashNode(3).ok()); });
  sim_.RunAll();

  EXPECT_FALSE(completed);  // aborted moves never report completion
  EXPECT_FALSE(migrator.InProgress());
  EXPECT_EQ(migrator.moves_aborted(), 1);
  ASSERT_EQ(migrator.history().size(), 1u);
  EXPECT_TRUE(migrator.history()[0].aborted);
  EXPECT_GE(migrator.history()[0].end, migrator.history()[0].start);

  // No row lost; every key reachable on a live node (ownership never
  // flipped to the dead receiver, and its landed buckets failed over).
  EXPECT_EQ(engine_->TotalRowCount(), 500);
  for (int64_t k = 0; k < 500; ++k) {
    const PartitionId p = engine_->partition_map().PartitionOfKey(k);
    EXPECT_TRUE(engine_->IsNodeUp(engine_->NodeOfPartition(p)));
    EXPECT_TRUE(engine_->fragment(p)->Contains(db_.table, k));
  }
}

TEST_F(MigrationExecutorTest, ScaleInWithDownSurvivorRejected) {
  EngineConfig config = SmallEngineConfig();
  config.initial_nodes = 4;
  BuildEngine(config);
  MigrationExecutor migrator(engine_.get(), FastOptions());
  ASSERT_TRUE(engine_->CrashNode(1).ok());
  EXPECT_TRUE(migrator.StartMove(2, nullptr).IsFailedPrecondition());
  EXPECT_FALSE(migrator.InProgress());
}

TEST_F(MigrationExecutorTest, StalledStreamTimesOutAndRetries) {
  BuildEngine(SmallEngineConfig());
  MigrationExecutor migrator(engine_.get(), FastOptions());
  // Stall only the very first chunk attempt, far past the timeout.
  int32_t consults = 0;
  migrator.set_chunk_fault_hook(
      [&](PartitionId, PartitionId, SimTime) {
        ChunkFault fault;
        if (consults++ == 0) {
          fault.kind = ChunkFault::Kind::kStall;
          fault.stall = 10 * kSecond;
        }
        return fault;
      });
  bool completed = false;
  ASSERT_TRUE(migrator.StartMove(4, [&]() { completed = true; }).ok());
  sim_.RunAll();

  EXPECT_TRUE(completed);
  EXPECT_GE(migrator.chunk_retries(), 1);  // the timeout fired
  EXPECT_EQ(migrator.moves_aborted(), 0);
  EXPECT_EQ(engine_->active_nodes(), 4);
  EXPECT_EQ(engine_->TotalRowCount(), 500);
}

TEST_F(MigrationExecutorTest, FailedChunkRetriesWithBackoff) {
  BuildEngine(SmallEngineConfig());
  MigrationOptions opts = FastOptions();
  opts.retry_backoff_ms = 50.0;
  MigrationExecutor migrator(engine_.get(), opts);
  // Fail the first two attempts on one stream; record consult times.
  std::vector<SimTime> attempts;
  migrator.set_chunk_fault_hook(
      [&](PartitionId, PartitionId dst, SimTime now) {
        ChunkFault fault;
        if (dst == 4 && attempts.size() < 3) {
          attempts.push_back(now);
          if (attempts.size() <= 2) fault.kind = ChunkFault::Kind::kFail;
        }
        return fault;
      });
  bool completed = false;
  ASSERT_TRUE(migrator.StartMove(4, [&]() { completed = true; }).ok());
  sim_.RunAll();

  EXPECT_TRUE(completed);
  EXPECT_GE(migrator.chunk_retries(), 2);
  ASSERT_EQ(attempts.size(), 3u);
  // Exponential backoff: second attempt >= 50 ms after the first, third
  // >= 100 ms after the second.
  EXPECT_GE(attempts[1] - attempts[0], 50 * kMillisecond);
  EXPECT_GE(attempts[2] - attempts[1], 100 * kMillisecond);
}

TEST_F(MigrationExecutorTest, RetryBudgetExhaustedAborts) {
  BuildEngine(SmallEngineConfig());
  MigrationOptions opts = FastOptions();
  opts.max_chunk_retries = 3;
  MigrationExecutor migrator(engine_.get(), opts);
  // Every chunk attempt fails: the retry budget must run out and the
  // move must abort without flipping any ownership.
  migrator.set_chunk_fault_hook([](PartitionId, PartitionId, SimTime) {
    ChunkFault fault;
    fault.kind = ChunkFault::Kind::kFail;
    return fault;
  });
  const PartitionMap map_before = engine_->partition_map();
  bool completed = false;
  ASSERT_TRUE(migrator.StartMove(4, [&]() { completed = true; }).ok());
  sim_.RunAll();

  EXPECT_FALSE(completed);
  EXPECT_FALSE(migrator.InProgress());
  EXPECT_EQ(migrator.moves_aborted(), 1);
  EXPECT_TRUE(migrator.history()[0].aborted);
  EXPECT_DOUBLE_EQ(migrator.total_kb_moved(), 0.0);
  // Ownership is exactly what it was before the move.
  for (BucketId b = 0; b < 64; ++b) {
    EXPECT_EQ(engine_->partition_map().PartitionOfBucket(b),
              map_before.PartitionOfBucket(b));
  }
  EXPECT_EQ(engine_->TotalRowCount(), 500);
}

TEST_F(MigrationExecutorTest, DeterministicMoveRecordLogs) {
  // Two identical runs (same seed-free deterministic fault pattern) must
  // produce identical MoveRecord logs and event counts.
  auto run = [&](std::vector<MoveRecord>* history, double* kb,
                 int64_t* retries, int64_t* events) {
    Simulator sim;
    ClusterEngine engine(&sim, db_.catalog, db_.registry,
                         SmallEngineConfig());
    for (int64_t k = 0; k < 300; ++k) {
      ASSERT_TRUE(engine.LoadRow(db_.table, Row({Value(k), Value(k)})).ok());
    }
    MigrationExecutor migrator(&engine, FastOptions());
    int32_t consults = 0;
    migrator.set_chunk_fault_hook(
        [&consults](PartitionId, PartitionId, SimTime) {
          ChunkFault fault;
          if (consults++ % 5 == 0) fault.kind = ChunkFault::Kind::kFail;
          return fault;
        });
    ASSERT_TRUE(migrator.StartMove(4, nullptr).ok());
    sim.RunAll();
    ASSERT_TRUE(migrator.StartMove(2, nullptr).ok());
    sim.RunAll();
    *history = migrator.history();
    *kb = migrator.total_kb_moved();
    *retries = migrator.chunk_retries();
    *events = sim.events_executed();
  };
  std::vector<MoveRecord> h1, h2;
  double kb1 = 0, kb2 = 0;
  int64_t r1 = 0, r2 = 0, e1 = 0, e2 = 0;
  run(&h1, &kb1, &r1, &e1);
  run(&h2, &kb2, &r2, &e2);
  EXPECT_EQ(h1, h2);
  EXPECT_DOUBLE_EQ(kb1, kb2);
  EXPECT_EQ(r1, r2);
  EXPECT_EQ(e1, e2);
  EXPECT_GT(r1, 0);  // the fault pattern actually fired
  ASSERT_EQ(h1.size(), 2u);
  EXPECT_FALSE(h1[0].aborted);
  EXPECT_FALSE(h1[1].aborted);
}

}  // namespace
}  // namespace pstore
