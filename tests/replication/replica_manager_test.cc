#include "replication/replica_manager.h"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "cluster/engine.h"
#include "storage/schema.h"
#include "storage/value.h"

/// Unit tests for the pure replica-placement / rebuild / checkpoint
/// state machine, with no engine or simulator involved.

namespace pstore {
namespace replication {
namespace {

constexpr int32_t kBuckets = 8;
constexpr int32_t kPartitionsPerNode = 2;
constexpr int32_t kTotalPartitions = 8;  // 4 nodes.

Catalog MakeCatalog() {
  Catalog catalog;
  EXPECT_TRUE(catalog
                  .AddTable(Schema("KV",
                                   {{"k", ColumnType::kInt64},
                                    {"v", ColumnType::kInt64}},
                                   0))
                  .ok());
  return catalog;
}

ReplicationConfig SmallConfig() {
  ReplicationConfig config;
  config.enabled = true;
  config.k = 1;
  config.db_size_mb = 1.0;
  return config;
}

class ReplicaManagerTest : public ::testing::Test {
 protected:
  ReplicaManagerTest()
      : catalog_(MakeCatalog()),
        manager_(&catalog_, SmallConfig(), kBuckets, kTotalPartitions,
                 kPartitionsPerNode),
        primary_(&catalog_, kBuckets) {}

  /// Puts `rows` rows of bucket-aligned keys into the primary fragment.
  void FillPrimary(int64_t rows) {
    for (int64_t k = 0; k < rows; ++k) {
      ASSERT_TRUE(primary_.Insert(0, Row({Value(k), Value(k * 10)})).ok());
    }
  }

  Catalog catalog_;
  ReplicaManager manager_;
  StorageFragment primary_;
};

TEST(ReplicationConfigTest, ValidateRejectsBadKnobsTableDriven) {
  // Every field Validate checks, one row each: the mutation applied to
  // an otherwise-default config and the error it must produce. A new
  // knob without a row (and a rejection message) shows up as a gap
  // here before it ships unvalidated.
  const double nan = std::nan("");
  const double inf = std::numeric_limits<double>::infinity();
  struct Case {
    const char* what;
    std::function<void(ReplicationConfig*)> mutate;
    const char* error;
  };
  const std::vector<Case> cases = {
      {"k zero", [](ReplicationConfig* c) { c->k = 0; }, "k < 1"},
      {"apply_weight nan",
       [nan](ReplicationConfig* c) { c->apply_weight = nan; },
       "apply_weight not finite"},
      {"apply_weight negative",
       [](ReplicationConfig* c) { c->apply_weight = -0.1; },
       "apply_weight < 0"},
      {"db_size_mb inf",
       [inf](ReplicationConfig* c) { c->db_size_mb = inf; },
       "db_size_mb not finite"},
      {"db_size_mb zero", [](ReplicationConfig* c) { c->db_size_mb = 0; },
       "db_size_mb <= 0"},
      {"rebuild_chunk_kb nan",
       [nan](ReplicationConfig* c) { c->rebuild_chunk_kb = nan; },
       "rebuild_chunk_kb not finite"},
      {"rebuild_chunk_kb negative",
       [](ReplicationConfig* c) { c->rebuild_chunk_kb = -1; },
       "rebuild_chunk_kb <= 0"},
      {"rebuild_rate_kbps nan",
       [nan](ReplicationConfig* c) { c->rebuild_rate_kbps = nan; },
       "rebuild_rate_kbps not finite"},
      {"rebuild_rate_kbps zero",
       [](ReplicationConfig* c) { c->rebuild_rate_kbps = 0; },
       "rebuild_rate_kbps <= 0"},
      {"wire_kbps inf", [inf](ReplicationConfig* c) { c->wire_kbps = inf; },
       "wire_kbps not finite"},
      {"wire_kbps zero", [](ReplicationConfig* c) { c->wire_kbps = 0; },
       "wire_kbps <= 0"},
      {"checkpoint_period zero",
       [](ReplicationConfig* c) { c->checkpoint_period = 0; },
       "checkpoint_period <= 0"},
      {"checkpoint_load_kbps nan",
       [nan](ReplicationConfig* c) { c->checkpoint_load_kbps = nan; },
       "checkpoint_load_kbps not finite"},
      {"checkpoint_load_kbps zero",
       [](ReplicationConfig* c) { c->checkpoint_load_kbps = 0; },
       "checkpoint_load_kbps <= 0"},
      {"replay_us_per_entry nan",
       [nan](ReplicationConfig* c) { c->replay_us_per_entry = nan; },
       "replay_us_per_entry not finite"},
      {"replay_us_per_entry negative",
       [](ReplicationConfig* c) { c->replay_us_per_entry = -1; },
       "replay_us_per_entry < 0"},
      {"durability scrub_rate_kbps negative",
       [](ReplicationConfig* c) {
         c->durability.enabled = true;
         c->durability.scrub_rate_kbps = -1;
       },
       "scrub_rate_kbps < 0"},
      {"durability scrub_rate_kbps nan",
       [nan](ReplicationConfig* c) {
         c->durability.enabled = true;
         c->durability.scrub_rate_kbps = nan;
       },
       "scrub_rate_kbps not finite"},
      {"durability record_kb zero",
       [](ReplicationConfig* c) {
         c->durability.enabled = true;
         c->durability.record_kb = 0;
       },
       "record_kb <= 0"},
  };
  EXPECT_TRUE(ReplicationConfig().Validate().ok());
  for (const Case& test : cases) {
    ReplicationConfig config;
    test.mutate(&config);
    const Status status = config.Validate();
    EXPECT_TRUE(status.IsInvalidArgument()) << test.what;
    EXPECT_NE(status.ToString().find(test.error), std::string::npos)
        << test.what << ": got " << status.ToString();
  }
}

TEST(ReplicationConfigTest, DurabilityKnobsOnlyValidatedWhenEnabled) {
  // The opt-in contract: stray durability knobs on a config that never
  // enables the content store must not fail validation (pre-existing
  // configs can't start rejecting).
  ReplicationConfig config;
  config.durability.enabled = false;
  config.durability.scrub_rate_kbps = -5.0;
  config.durability.record_kb = 0.0;
  EXPECT_TRUE(config.Validate().ok());
  config.durability.enabled = true;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(ReplicationConfigTest, EngineRejectsKBeyondMaxNodes) {
  // k backups + 1 primary must fit the cluster at max scale.
  EngineConfig config;
  config.replication.enabled = true;
  config.replication.k = config.max_nodes;
  const Status status = config.Validate();
  EXPECT_TRUE(status.IsInvalidArgument());
  config.replication.k = config.max_nodes - 1;
  EXPECT_TRUE(config.Validate().ok());
}

TEST_F(ReplicaManagerTest, StartsEmptyAndDegraded) {
  for (BucketId b = 0; b < kBuckets; ++b) {
    EXPECT_TRUE(manager_.replicas(b).empty());
    EXPECT_TRUE(manager_.IsDegraded(b));
  }
  EXPECT_EQ(manager_.degraded_buckets(), kBuckets);
  EXPECT_EQ(manager_.TotalBackupRowCount(), 0);
}

TEST_F(ReplicaManagerTest, InstallReplicaCopiesRowsAndTracksPlacement) {
  FillPrimary(40);
  const BucketId b = 0;
  ASSERT_TRUE(manager_.InstallReplica(b, /*target=*/4, primary_).ok());
  EXPECT_FALSE(manager_.IsDegraded(b));
  EXPECT_TRUE(manager_.HasReplicaOn(b, 4));
  EXPECT_EQ(manager_.backup_buckets_on_partition(4), 1);
  EXPECT_EQ(manager_.BackupBucketsOnNode(2), 1);  // Partition 4 = node 2.
  EXPECT_EQ(manager_.backup_fragment(4)->BucketRowCount(b),
            primary_.BucketRowCount(b));
  // Backup rows match the primary's contents, key by key.
  for (int64_t key : primary_.BucketKeys(0, b)) {
    auto row = manager_.backup_fragment(4)->Get(0, key);
    ASSERT_TRUE(row.ok());
    EXPECT_TRUE(*row == *primary_.Get(0, key));
  }
}

TEST_F(ReplicaManagerTest, PromoteTakesLowestIdAndRemovesIt) {
  FillPrimary(40);
  ASSERT_TRUE(manager_.InstallReplica(0, 6, primary_).ok());
  manager_.AddReplica(0, 2);  // Bookkeeping-only second replica.
  EXPECT_EQ(manager_.Promote(0), 2);  // Lowest id wins, deterministic.
  EXPECT_FALSE(manager_.HasReplicaOn(0, 2));
  EXPECT_TRUE(manager_.HasReplicaOn(0, 6));
  EXPECT_EQ(manager_.promotions(), 1);
  // No replica left after the second promotion -> -1.
  EXPECT_EQ(manager_.Promote(0), 6);
  EXPECT_EQ(manager_.Promote(0), -1);
}

TEST_F(ReplicaManagerTest, RemoveReplicaDropsBackupRows) {
  FillPrimary(40);
  ASSERT_TRUE(manager_.InstallReplica(1, 4, primary_).ok());
  const int64_t rows = manager_.backup_fragment(4)->BucketRowCount(1);
  ASSERT_GT(rows, 0);
  EXPECT_TRUE(manager_.RemoveReplica(1, 4));
  EXPECT_EQ(manager_.backup_fragment(4)->BucketRowCount(1), 0);
  EXPECT_EQ(manager_.replicas_dropped(), 1);
  EXPECT_FALSE(manager_.RemoveReplica(1, 4));  // Already gone.
}

TEST_F(ReplicaManagerTest, MoveReplicaPreservesRows) {
  FillPrimary(40);
  ASSERT_TRUE(manager_.InstallReplica(2, 4, primary_).ok());
  const int64_t rows = manager_.backup_fragment(4)->BucketRowCount(2);
  ASSERT_TRUE(manager_.MoveReplica(2, 4, 7).ok());
  EXPECT_EQ(manager_.backup_fragment(4)->BucketRowCount(2), 0);
  EXPECT_EQ(manager_.backup_fragment(7)->BucketRowCount(2), rows);
  EXPECT_TRUE(manager_.HasReplicaOn(2, 7));
  EXPECT_FALSE(manager_.HasReplicaOn(2, 4));
  EXPECT_EQ(manager_.replica_relocations(), 1);
}

TEST_F(ReplicaManagerTest, DropReplicasOnNodeClearsEveryHostedReplica) {
  FillPrimary(80);
  ASSERT_TRUE(manager_.InstallReplica(0, 4, primary_).ok());
  ASSERT_TRUE(manager_.InstallReplica(1, 5, primary_).ok());
  ASSERT_TRUE(manager_.InstallReplica(2, 6, primary_).ok());
  EXPECT_EQ(manager_.DropReplicasOnNode(2), 2);  // Partitions 4 and 5.
  EXPECT_TRUE(manager_.IsDegraded(0));
  EXPECT_TRUE(manager_.IsDegraded(1));
  EXPECT_FALSE(manager_.IsDegraded(2));
  EXPECT_EQ(manager_.TotalBackupRowCount(),
            manager_.backup_fragment(6)->BucketRowCount(2));
}

TEST_F(ReplicaManagerTest, RebuildLifecycleWithGenerationGuard) {
  FillPrimary(40);
  EXPECT_FALSE(manager_.rebuild_in_flight(3));
  const int64_t gen = manager_.BeginRebuild(3, /*target=*/5);
  EXPECT_TRUE(manager_.rebuild_in_flight(3));
  EXPECT_EQ(manager_.rebuild_target(3), 5);
  EXPECT_EQ(manager_.rebuild_gen(3), gen);
  EXPECT_EQ(manager_.rebuilds_in_flight(), 1);

  manager_.CancelRebuild(3);
  EXPECT_FALSE(manager_.rebuild_in_flight(3));
  EXPECT_NE(manager_.rebuild_gen(3), gen);  // Stale chunks are no-ops.
  EXPECT_EQ(manager_.rebuilds_in_flight(), 0);

  const int64_t gen2 = manager_.BeginRebuild(3, 5);
  EXPECT_NE(gen2, gen);
  ASSERT_TRUE(manager_.FinishRebuild(3, primary_).ok());
  EXPECT_FALSE(manager_.rebuild_in_flight(3));
  EXPECT_TRUE(manager_.HasReplicaOn(3, 5));
  EXPECT_EQ(manager_.rebuilds_completed(), 1);
  EXPECT_EQ(manager_.backup_fragment(5)->BucketRowCount(3),
            primary_.BucketRowCount(3));
}

TEST_F(ReplicaManagerTest, CancelRebuildsTargetingNode) {
  manager_.BeginRebuild(0, 4);
  manager_.BeginRebuild(1, 5);
  manager_.BeginRebuild(2, 7);
  EXPECT_EQ(manager_.CancelRebuildsTargeting(2), 2);  // Partitions 4, 5.
  EXPECT_FALSE(manager_.rebuild_in_flight(0));
  EXPECT_FALSE(manager_.rebuild_in_flight(1));
  EXPECT_TRUE(manager_.rebuild_in_flight(2));
}

TEST_F(ReplicaManagerTest, ChunkMathCeilsAndFloorsAtOne) {
  // 1 MB over 8 buckets = 128 kB/bucket; default 1000 kB chunks -> 1.
  EXPECT_DOUBLE_EQ(manager_.kb_per_bucket(), 128.0);
  EXPECT_EQ(manager_.chunks_per_rebuild(), 1);

  ReplicationConfig config = SmallConfig();
  config.db_size_mb = 100.0;
  config.rebuild_chunk_kb = 1000.0;
  Catalog catalog = MakeCatalog();
  ReplicaManager big(&catalog, config, kBuckets, kTotalPartitions,
                     kPartitionsPerNode);
  // 12800 kB per bucket over 1000 kB chunks -> ceil = 13.
  EXPECT_EQ(big.chunks_per_rebuild(), 13);
}

TEST_F(ReplicaManagerTest, RecoveryDurationFromCheckpointAndLog) {
  // Nothing checkpointed, nothing logged: the 1 us floor.
  EXPECT_EQ(manager_.RecoveryDuration(1), 1);

  // 102400 kB at 102400 kB/s = 1 s; 100 entries at 100 us = 10 ms.
  for (int i = 0; i < 100; ++i) manager_.RecordWrite(1);
  manager_.TakeCheckpoint(1, 102400.0);
  EXPECT_EQ(manager_.log_entries(1), 0);  // Checkpoint truncates the log.
  EXPECT_EQ(manager_.checkpoints(), 1);
  for (int i = 0; i < 100; ++i) manager_.RecordWrite(1);
  EXPECT_EQ(manager_.log_entries(1), 100);
  EXPECT_EQ(manager_.RecoveryDuration(1),
            static_cast<SimDuration>(1e6 + 100 * 100));

  manager_.ResetNode(1);
  EXPECT_EQ(manager_.RecoveryDuration(1), 1);
}

TEST_F(ReplicaManagerTest, ApplyGaugeTracksOutstandingWork) {
  manager_.OnApplyStarted();
  manager_.OnApplyStarted();
  EXPECT_EQ(manager_.applies(), 2);
  EXPECT_EQ(manager_.outstanding_applies(), 2);
  manager_.OnApplyFinished();
  EXPECT_EQ(manager_.outstanding_applies(), 1);
  manager_.OnApplyFinished();
  EXPECT_EQ(manager_.outstanding_applies(), 0);
  EXPECT_EQ(manager_.applies(), 2);
}

}  // namespace
}  // namespace replication
}  // namespace pstore
