#include "replication/replica_manager.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "storage/schema.h"
#include "storage/value.h"

/// Unit tests for the pure replica-placement / rebuild / checkpoint
/// state machine, with no engine or simulator involved.

namespace pstore {
namespace replication {
namespace {

constexpr int32_t kBuckets = 8;
constexpr int32_t kPartitionsPerNode = 2;
constexpr int32_t kTotalPartitions = 8;  // 4 nodes.

Catalog MakeCatalog() {
  Catalog catalog;
  EXPECT_TRUE(catalog
                  .AddTable(Schema("KV",
                                   {{"k", ColumnType::kInt64},
                                    {"v", ColumnType::kInt64}},
                                   0))
                  .ok());
  return catalog;
}

ReplicationConfig SmallConfig() {
  ReplicationConfig config;
  config.enabled = true;
  config.k = 1;
  config.db_size_mb = 1.0;
  return config;
}

class ReplicaManagerTest : public ::testing::Test {
 protected:
  ReplicaManagerTest()
      : catalog_(MakeCatalog()),
        manager_(&catalog_, SmallConfig(), kBuckets, kTotalPartitions,
                 kPartitionsPerNode),
        primary_(&catalog_, kBuckets) {}

  /// Puts `rows` rows of bucket-aligned keys into the primary fragment.
  void FillPrimary(int64_t rows) {
    for (int64_t k = 0; k < rows; ++k) {
      ASSERT_TRUE(primary_.Insert(0, Row({Value(k), Value(k * 10)})).ok());
    }
  }

  Catalog catalog_;
  ReplicaManager manager_;
  StorageFragment primary_;
};

TEST(ReplicationConfigTest, ValidateRejectsBadKnobs) {
  ReplicationConfig config;
  EXPECT_TRUE(config.Validate().ok());
  config.k = 0;
  EXPECT_FALSE(config.Validate().ok());
  config = ReplicationConfig();
  config.apply_weight = -0.1;
  EXPECT_FALSE(config.Validate().ok());
  config = ReplicationConfig();
  config.rebuild_rate_kbps = 0;
  EXPECT_FALSE(config.Validate().ok());
  config = ReplicationConfig();
  config.checkpoint_period = 0;
  EXPECT_FALSE(config.Validate().ok());
  config = ReplicationConfig();
  config.replay_us_per_entry = -1;
  EXPECT_FALSE(config.Validate().ok());
}

TEST_F(ReplicaManagerTest, StartsEmptyAndDegraded) {
  for (BucketId b = 0; b < kBuckets; ++b) {
    EXPECT_TRUE(manager_.replicas(b).empty());
    EXPECT_TRUE(manager_.IsDegraded(b));
  }
  EXPECT_EQ(manager_.degraded_buckets(), kBuckets);
  EXPECT_EQ(manager_.TotalBackupRowCount(), 0);
}

TEST_F(ReplicaManagerTest, InstallReplicaCopiesRowsAndTracksPlacement) {
  FillPrimary(40);
  const BucketId b = 0;
  ASSERT_TRUE(manager_.InstallReplica(b, /*target=*/4, primary_).ok());
  EXPECT_FALSE(manager_.IsDegraded(b));
  EXPECT_TRUE(manager_.HasReplicaOn(b, 4));
  EXPECT_EQ(manager_.backup_buckets_on_partition(4), 1);
  EXPECT_EQ(manager_.BackupBucketsOnNode(2), 1);  // Partition 4 = node 2.
  EXPECT_EQ(manager_.backup_fragment(4)->BucketRowCount(b),
            primary_.BucketRowCount(b));
  // Backup rows match the primary's contents, key by key.
  for (int64_t key : primary_.BucketKeys(0, b)) {
    auto row = manager_.backup_fragment(4)->Get(0, key);
    ASSERT_TRUE(row.ok());
    EXPECT_TRUE(*row == *primary_.Get(0, key));
  }
}

TEST_F(ReplicaManagerTest, PromoteTakesLowestIdAndRemovesIt) {
  FillPrimary(40);
  ASSERT_TRUE(manager_.InstallReplica(0, 6, primary_).ok());
  manager_.AddReplica(0, 2);  // Bookkeeping-only second replica.
  EXPECT_EQ(manager_.Promote(0), 2);  // Lowest id wins, deterministic.
  EXPECT_FALSE(manager_.HasReplicaOn(0, 2));
  EXPECT_TRUE(manager_.HasReplicaOn(0, 6));
  EXPECT_EQ(manager_.promotions(), 1);
  // No replica left after the second promotion -> -1.
  EXPECT_EQ(manager_.Promote(0), 6);
  EXPECT_EQ(manager_.Promote(0), -1);
}

TEST_F(ReplicaManagerTest, RemoveReplicaDropsBackupRows) {
  FillPrimary(40);
  ASSERT_TRUE(manager_.InstallReplica(1, 4, primary_).ok());
  const int64_t rows = manager_.backup_fragment(4)->BucketRowCount(1);
  ASSERT_GT(rows, 0);
  EXPECT_TRUE(manager_.RemoveReplica(1, 4));
  EXPECT_EQ(manager_.backup_fragment(4)->BucketRowCount(1), 0);
  EXPECT_EQ(manager_.replicas_dropped(), 1);
  EXPECT_FALSE(manager_.RemoveReplica(1, 4));  // Already gone.
}

TEST_F(ReplicaManagerTest, MoveReplicaPreservesRows) {
  FillPrimary(40);
  ASSERT_TRUE(manager_.InstallReplica(2, 4, primary_).ok());
  const int64_t rows = manager_.backup_fragment(4)->BucketRowCount(2);
  ASSERT_TRUE(manager_.MoveReplica(2, 4, 7).ok());
  EXPECT_EQ(manager_.backup_fragment(4)->BucketRowCount(2), 0);
  EXPECT_EQ(manager_.backup_fragment(7)->BucketRowCount(2), rows);
  EXPECT_TRUE(manager_.HasReplicaOn(2, 7));
  EXPECT_FALSE(manager_.HasReplicaOn(2, 4));
  EXPECT_EQ(manager_.replica_relocations(), 1);
}

TEST_F(ReplicaManagerTest, DropReplicasOnNodeClearsEveryHostedReplica) {
  FillPrimary(80);
  ASSERT_TRUE(manager_.InstallReplica(0, 4, primary_).ok());
  ASSERT_TRUE(manager_.InstallReplica(1, 5, primary_).ok());
  ASSERT_TRUE(manager_.InstallReplica(2, 6, primary_).ok());
  EXPECT_EQ(manager_.DropReplicasOnNode(2), 2);  // Partitions 4 and 5.
  EXPECT_TRUE(manager_.IsDegraded(0));
  EXPECT_TRUE(manager_.IsDegraded(1));
  EXPECT_FALSE(manager_.IsDegraded(2));
  EXPECT_EQ(manager_.TotalBackupRowCount(),
            manager_.backup_fragment(6)->BucketRowCount(2));
}

TEST_F(ReplicaManagerTest, RebuildLifecycleWithGenerationGuard) {
  FillPrimary(40);
  EXPECT_FALSE(manager_.rebuild_in_flight(3));
  const int64_t gen = manager_.BeginRebuild(3, /*target=*/5);
  EXPECT_TRUE(manager_.rebuild_in_flight(3));
  EXPECT_EQ(manager_.rebuild_target(3), 5);
  EXPECT_EQ(manager_.rebuild_gen(3), gen);
  EXPECT_EQ(manager_.rebuilds_in_flight(), 1);

  manager_.CancelRebuild(3);
  EXPECT_FALSE(manager_.rebuild_in_flight(3));
  EXPECT_NE(manager_.rebuild_gen(3), gen);  // Stale chunks are no-ops.
  EXPECT_EQ(manager_.rebuilds_in_flight(), 0);

  const int64_t gen2 = manager_.BeginRebuild(3, 5);
  EXPECT_NE(gen2, gen);
  ASSERT_TRUE(manager_.FinishRebuild(3, primary_).ok());
  EXPECT_FALSE(manager_.rebuild_in_flight(3));
  EXPECT_TRUE(manager_.HasReplicaOn(3, 5));
  EXPECT_EQ(manager_.rebuilds_completed(), 1);
  EXPECT_EQ(manager_.backup_fragment(5)->BucketRowCount(3),
            primary_.BucketRowCount(3));
}

TEST_F(ReplicaManagerTest, CancelRebuildsTargetingNode) {
  manager_.BeginRebuild(0, 4);
  manager_.BeginRebuild(1, 5);
  manager_.BeginRebuild(2, 7);
  EXPECT_EQ(manager_.CancelRebuildsTargeting(2), 2);  // Partitions 4, 5.
  EXPECT_FALSE(manager_.rebuild_in_flight(0));
  EXPECT_FALSE(manager_.rebuild_in_flight(1));
  EXPECT_TRUE(manager_.rebuild_in_flight(2));
}

TEST_F(ReplicaManagerTest, ChunkMathCeilsAndFloorsAtOne) {
  // 1 MB over 8 buckets = 128 kB/bucket; default 1000 kB chunks -> 1.
  EXPECT_DOUBLE_EQ(manager_.kb_per_bucket(), 128.0);
  EXPECT_EQ(manager_.chunks_per_rebuild(), 1);

  ReplicationConfig config = SmallConfig();
  config.db_size_mb = 100.0;
  config.rebuild_chunk_kb = 1000.0;
  Catalog catalog = MakeCatalog();
  ReplicaManager big(&catalog, config, kBuckets, kTotalPartitions,
                     kPartitionsPerNode);
  // 12800 kB per bucket over 1000 kB chunks -> ceil = 13.
  EXPECT_EQ(big.chunks_per_rebuild(), 13);
}

TEST_F(ReplicaManagerTest, RecoveryDurationFromCheckpointAndLog) {
  // Nothing checkpointed, nothing logged: the 1 us floor.
  EXPECT_EQ(manager_.RecoveryDuration(1), 1);

  // 102400 kB at 102400 kB/s = 1 s; 100 entries at 100 us = 10 ms.
  for (int i = 0; i < 100; ++i) manager_.RecordWrite(1);
  manager_.TakeCheckpoint(1, 102400.0);
  EXPECT_EQ(manager_.log_entries(1), 0);  // Checkpoint truncates the log.
  EXPECT_EQ(manager_.checkpoints(), 1);
  for (int i = 0; i < 100; ++i) manager_.RecordWrite(1);
  EXPECT_EQ(manager_.log_entries(1), 100);
  EXPECT_EQ(manager_.RecoveryDuration(1),
            static_cast<SimDuration>(1e6 + 100 * 100));

  manager_.ResetNode(1);
  EXPECT_EQ(manager_.RecoveryDuration(1), 1);
}

TEST_F(ReplicaManagerTest, ApplyGaugeTracksOutstandingWork) {
  manager_.OnApplyStarted();
  manager_.OnApplyStarted();
  EXPECT_EQ(manager_.applies(), 2);
  EXPECT_EQ(manager_.outstanding_applies(), 2);
  manager_.OnApplyFinished();
  EXPECT_EQ(manager_.outstanding_applies(), 1);
  manager_.OnApplyFinished();
  EXPECT_EQ(manager_.outstanding_applies(), 0);
  EXPECT_EQ(manager_.applies(), 2);
}

}  // namespace
}  // namespace replication
}  // namespace pstore
