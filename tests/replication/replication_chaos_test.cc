#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "../test_util.h"
#include "core/reactive_controller.h"
#include "fault/fault_injector.h"
#include "fault/invariant_checker.h"

/// Chaos property tests for the replication stack: random crash /
/// restart / replica-lag plans against a k=1 cluster running a write
/// workload, with scoped crash targeting (primary-heavy, backup-heavy)
/// and a reactive controller that treats recovery as overload. Every
/// seed must keep every invariant — placement sanity, primary/backup
/// row-set equality, k-safety restoration liveness, and rows_lost-aware
/// conservation — and same-seed runs must replay byte-identically.

namespace pstore {
namespace {

using testing_util::MakeKvDatabase;
using testing_util::SmallEngineConfig;

struct ReplicationOutcome {
  std::string plan;
  std::string trace;
  uint64_t trace_fingerprint = 0;
  std::vector<std::string> violations;
  int64_t events_executed = 0;
  int64_t committed = 0;
  int64_t crashes = 0;
  int64_t restarts = 0;
  int64_t replica_lags = 0;
  int64_t promotions = 0;
  int64_t applies = 0;
  int64_t rebuilds = 0;
  int64_t recoveries = 0;
  int64_t rows_lost = 0;
  int64_t scale_outs = 0;
};

/// One seeded replication-chaos run: 3 nodes, k=1, a mixed Put/Get load,
/// and a random crash/restart/lag plan whose auto-targeted crashes
/// alternate between primary-heavy and backup-heavy scoping.
ReplicationOutcome RunReplicationChaos(uint64_t seed) {
  auto db = MakeKvDatabase();
  Simulator sim;
  EngineConfig config = SmallEngineConfig();
  config.initial_nodes = 3;
  config.txn_service_us_mean = 5000.0;
  config.replication.enabled = true;
  config.replication.k = 1;
  config.replication.db_size_mb = 10.0;
  config.replication.rebuild_chunk_kb = 100.0;
  config.replication.rebuild_rate_kbps = 10000.0;
  config.replication.wire_kbps = 100000.0;
  config.replication.checkpoint_period = 5 * kSecond;
  ClusterEngine engine(&sim, db.catalog, db.registry, config);
  const int64_t rows = 200;
  for (int64_t k = 0; k < rows; ++k) {
    EXPECT_TRUE(engine.LoadRow(db.table, Row({Value(k), Value(k)})).ok());
  }

  MigrationOptions migration;
  migration.chunk_kb = 100;
  migration.rate_kbps = 10000;
  migration.wire_kbps = 100000;
  migration.db_size_mb = 10;
  MigrationExecutor migrator(&engine, migration);

  ReactiveConfig reactive;
  reactive.q = 100.0;
  reactive.q_hat = 125.0;
  reactive.high_watermark = 0.9;
  reactive.monitor_period = kSecond;
  reactive.scale_in_hold = 5 * kSecond;
  ReactiveController controller(&engine, &migrator, reactive);
  controller.Start();

  Rng plan_rng(seed ^ 0x9e3779b97f4a7c15ULL);
  ChaosConfig chaos;
  chaos.horizon = 40 * kSecond;
  chaos.num_events = 6;
  chaos.max_window = 10 * kSecond;
  chaos.max_stall = 20 * kMillisecond;
  // Crash/restart/replica-lag dominate: this suite is about failover,
  // re-replication, and recovery, not migration faults.
  chaos.crash_weight = 2.0;
  chaos.restart_weight = 2.0;
  chaos.stall_weight = 0.5;
  chaos.chunk_failure_weight = 0.5;
  chaos.misforecast_weight = 0.0;
  chaos.load_spike_weight = 0.5;
  chaos.replica_lag_weight = 2.0;
  FaultPlan plan = RandomFaultPlan(&plan_rng, chaos);
  // Alternate scoped targeting on auto-picked crashes, deterministically
  // by event index, so the sweep exercises both heavy-side pickers.
  int crash_index = 0;
  for (FaultEvent& event : plan.events) {
    if (event.type != FaultType::kNodeCrash) continue;
    event.scope = (crash_index++ % 2 == 0) ? CrashScope::kPrimaryHeavy
                                           : CrashScope::kBackupHeavy;
  }
  FaultInjector injector(&engine, &migrator, seed);
  EXPECT_TRUE(injector.Arm(plan).ok());

  InvariantChecker checker(&engine, &migrator);
  checker.set_expected_rows(rows);
  checker.StartPeriodic(kSecond);

  // 100 txn/s, 1-in-4 writes (the write stream keeps backups busy).
  const double seconds = 60.0;
  auto generate = std::make_shared<std::function<void(int64_t)>>();
  *generate = [&](int64_t i) {
    if (sim.Now() >= SecondsToDuration(seconds)) return;
    TxnRequest req;
    req.key = (i * 48271) % rows;
    if (i % 4 == 0) {
      req.proc = db.put;
      req.args.push_back(Value(i));
    } else {
      req.proc = db.get;
    }
    engine.Submit(std::move(req));
    sim.Schedule(10 * kMillisecond, [&, i]() { (*generate)(i + 1); });
  };
  sim.Schedule(0, [&]() { (*generate)(0); });

  sim.RunUntil(SecondsToDuration(seconds));
  checker.Stop();
  controller.Stop();
  sim.RunUntil(SecondsToDuration(seconds + 60));

  Status final_check = checker.Check();
  EXPECT_TRUE(final_check.ok()) << final_check.ToString();

  ReplicationOutcome out;
  out.plan = plan.ToString();
  out.trace = injector.trace().ToString();
  out.trace_fingerprint = injector.trace().Fingerprint();
  for (const InvariantViolation& v : checker.violations()) {
    out.violations.push_back(v.ToString());
  }
  out.events_executed = sim.events_executed();
  out.committed = engine.txns_committed();
  out.crashes = injector.crashes();
  out.restarts = injector.restarts();
  out.replica_lags = injector.replica_lags();
  out.promotions = engine.replication()->promotions();
  out.applies = engine.replication()->applies();
  out.rebuilds = engine.replication()->rebuilds_completed();
  out.recoveries = engine.recoveries();
  out.rows_lost = engine.rows_lost();
  out.scale_outs = controller.scale_outs();
  return out;
}

// The 50-seed sweep is sharded 5 seeds per ctest unit so `ctest -j`
// runs shards concurrently (and a failure names a 5-seed range, not a
// 50-seed monolith). The shard parameter is the first seed.
constexpr uint64_t kSeedsPerShard = 5;

class ReplicationSeedShard : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ReplicationSeedShard, ZeroViolationsWithActiveReplication) {
  const uint64_t first = GetParam();
  for (uint64_t seed = first; seed < first + kSeedsPerShard; ++seed) {
    const ReplicationOutcome out = RunReplicationChaos(seed);
    EXPECT_TRUE(out.violations.empty())
        << "seed " << seed << ": " << out.violations.size()
        << " violations; first: " << out.violations[0] << "\nplan:\n"
        << out.plan << "\ntrace:\n"
        << out.trace;
    EXPECT_GT(out.committed, 0) << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(FiftySeeds, ReplicationSeedShard,
                         ::testing::Range(uint64_t{1}, uint64_t{51},
                                          kSeedsPerShard));

TEST(ReplicationChaosTest, SweepExercisesReplicationMachinery) {
  // Scaled-down aggregate over the first ten seeds: crashes promote
  // backups, writes ship applies, lag windows open, rebuilds restore k,
  // restarts replay recovery, and the recovery-aware controller scales
  // out. (The per-seed invariants live in the shards.)
  int64_t total_crashes = 0, total_restarts = 0, total_lags = 0;
  int64_t total_promotions = 0, total_applies = 0, total_rebuilds = 0;
  int64_t total_recoveries = 0, total_scale_outs = 0;
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    const ReplicationOutcome out = RunReplicationChaos(seed);
    total_crashes += out.crashes;
    total_restarts += out.restarts;
    total_lags += out.replica_lags;
    total_promotions += out.promotions;
    total_applies += out.applies;
    total_rebuilds += out.rebuilds;
    total_recoveries += out.recoveries;
    total_scale_outs += out.scale_outs;
  }
  EXPECT_GT(total_crashes, 4);
  EXPECT_GT(total_restarts, 2);
  EXPECT_GT(total_lags, 2);
  EXPECT_GT(total_promotions, 20);
  EXPECT_GT(total_applies, 2000);
  EXPECT_GT(total_rebuilds, 20);
  EXPECT_GT(total_recoveries, 2);
  EXPECT_GT(total_scale_outs, 2);
}

TEST(ReplicationChaosTest, SameSeedReplaysIdentically) {
  const ReplicationOutcome a = RunReplicationChaos(42);
  const ReplicationOutcome b = RunReplicationChaos(42);
  EXPECT_EQ(a.plan, b.plan);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.trace_fingerprint, b.trace_fingerprint);
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.committed, b.committed);
  EXPECT_EQ(a.promotions, b.promotions);
  EXPECT_EQ(a.applies, b.applies);
  EXPECT_EQ(a.rebuilds, b.rebuilds);
  EXPECT_EQ(a.recoveries, b.recoveries);
  EXPECT_EQ(a.rows_lost, b.rows_lost);
  EXPECT_EQ(a.scale_outs, b.scale_outs);
  EXPECT_TRUE(a.violations.empty());
}

TEST(ReplicationChaosTest, DifferentSeedsDiverge) {
  const ReplicationOutcome a = RunReplicationChaos(3);
  const ReplicationOutcome b = RunReplicationChaos(4);
  EXPECT_NE(a.plan, b.plan);
  EXPECT_NE(a.trace_fingerprint, b.trace_fingerprint);
}

}  // namespace
}  // namespace pstore
