#include <gtest/gtest.h>

#include <vector>

#include "../test_util.h"
#include "fault/invariant_checker.h"

/// Engine-level k-safety tests: initial placement, synchronous apply,
/// promotion failover with zero committed-row loss, honest loss when no
/// replica survives, re-replication restoring k, and restart recovery
/// that takes simulated time.

namespace pstore {
namespace {

using testing_util::MakeKvDatabase;
using testing_util::SmallEngineConfig;

EngineConfig ReplicatedConfig(int32_t nodes) {
  EngineConfig config = SmallEngineConfig();
  config.initial_nodes = nodes;
  config.replication.enabled = true;
  config.replication.k = 1;
  config.replication.db_size_mb = 10.0;
  config.replication.rebuild_chunk_kb = 100.0;
  config.replication.rebuild_rate_kbps = 10000.0;
  config.replication.wire_kbps = 100000.0;
  config.replication.checkpoint_period = 5 * kSecond;
  return config;
}

TEST(ReplicationEngineTest, DisabledEngineHasNoReplicationState) {
  auto db = MakeKvDatabase();
  Simulator sim;
  ClusterEngine engine(&sim, db.catalog, db.registry, SmallEngineConfig());
  EXPECT_EQ(engine.replication(), nullptr);
  EXPECT_EQ(engine.min_active_nodes(), 1);  // No k-aware scale-in floor.
  EXPECT_FALSE(engine.RecoveryInProgress());
  EXPECT_FALSE(engine.IsNodeRecovering(0));
  EXPECT_EQ(engine.nodes_recovering(), 0);
  EXPECT_EQ(engine.rows_lost(), 0);
  // Legacy failover still teleports buckets round-robin.
  for (int64_t k = 0; k < 100; ++k) {
    ASSERT_TRUE(engine.LoadRow(db.table, Row({Value(k), Value(k)})).ok());
  }
  ASSERT_TRUE(engine.CrashNode(1).ok());
  EXPECT_GT(engine.failover_moves(), 0);
  EXPECT_EQ(engine.TotalRowCount(), 100);
}

TEST(ReplicationEngineTest, InitialPlacementSatisfiesKOffNode) {
  auto db = MakeKvDatabase();
  Simulator sim;
  ClusterEngine engine(&sim, db.catalog, db.registry, ReplicatedConfig(3));
  for (int64_t k = 0; k < 200; ++k) {
    ASSERT_TRUE(engine.LoadRow(db.table, Row({Value(k), Value(k)})).ok());
  }
  const replication::ReplicaManager* rep = engine.replication();
  ASSERT_NE(rep, nullptr);
  EXPECT_EQ(rep->degraded_buckets(), 0);
  const PartitionMap& map = engine.partition_map();
  int64_t backup_rows = 0;
  for (BucketId b = 0; b < map.num_buckets(); ++b) {
    ASSERT_EQ(rep->healthy_replicas(b), 1);
    const PartitionId q = rep->replicas(b)[0];
    EXPECT_NE(engine.NodeOfPartition(q),
              engine.NodeOfPartition(map.PartitionOfBucket(b)));
    backup_rows += rep->backup_fragment(q)->BucketRowCount(b);
  }
  // LoadRow mirrors every row into its bucket's backup.
  EXPECT_EQ(backup_rows, 200);
  EXPECT_EQ(rep->TotalBackupRowCount(), 200);
  // Backups live in separate fragments: primary accounting unchanged.
  EXPECT_EQ(engine.TotalRowCount(), 200);
}

TEST(ReplicationEngineTest, CommittedWritesReachBackupsSynchronously) {
  auto db = MakeKvDatabase();
  Simulator sim;
  ClusterEngine engine(&sim, db.catalog, db.registry, ReplicatedConfig(2));
  int64_t committed = 0;
  for (int64_t k = 0; k < 50; ++k) {
    TxnRequest put;
    put.proc = db.put;
    put.key = k;
    put.args.push_back(Value(k * 7));
    engine.Submit(std::move(put), [&](const TxnResult& r) {
      if (r.status.ok()) ++committed;
    });
  }
  sim.RunUntil(10 * kSecond);
  EXPECT_EQ(committed, 50);
  EXPECT_GT(engine.replication()->applies(), 0);
  EXPECT_EQ(engine.replication()->outstanding_applies(), 0);  // Drained.
  // Every write is in its backup too: the invariant checker's row-set
  // equality audit passes. Nothing was bulk-loaded — all 50 rows were
  // created by the upserts, which conservation accounts separately.
  InvariantChecker checker(&engine, nullptr);
  checker.set_expected_rows(0);
  EXPECT_EQ(engine.rows_net_created(), 50);
  EXPECT_TRUE(checker.Check().ok());
}

TEST(ReplicationEngineTest, CrashPromotesBackupsWithZeroRowLoss) {
  auto db = MakeKvDatabase();
  Simulator sim;
  ClusterEngine engine(&sim, db.catalog, db.registry, ReplicatedConfig(3));
  const int64_t rows = 300;
  for (int64_t k = 0; k < rows; ++k) {
    ASSERT_TRUE(engine.LoadRow(db.table, Row({Value(k), Value(k)})).ok());
  }
  const int64_t before = engine.failover_moves();
  ASSERT_TRUE(engine.CrashNode(2).ok());

  // Promotion, not teleport: no failover bucket moves, zero rows lost,
  // and every bucket is owned by a live partition.
  EXPECT_EQ(engine.failover_moves(), before);
  EXPECT_EQ(engine.rows_lost(), 0);
  EXPECT_EQ(engine.TotalRowCount(), rows);
  EXPECT_GT(engine.replication()->promotions(), 0);
  const PartitionMap& map = engine.partition_map();
  for (BucketId b = 0; b < map.num_buckets(); ++b) {
    EXPECT_TRUE(engine.IsNodeUp(
        engine.NodeOfPartition(map.PartitionOfBucket(b))));
  }
  // The crash left buckets degraded; re-replication over the survivors
  // restores k on the virtual clock.
  EXPECT_TRUE(engine.RecoveryInProgress());
  EXPECT_GT(engine.replication()->degraded_buckets(), 0);
  sim.RunUntil(60 * kSecond);
  EXPECT_EQ(engine.replication()->degraded_buckets(), 0);
  EXPECT_FALSE(engine.RecoveryInProgress());
  EXPECT_GT(engine.replication()->rebuilds_completed(), 0);
  EXPECT_GT(engine.replication()->rebuild_chunks_landed(), 0);
  InvariantChecker checker(&engine, nullptr);
  checker.set_expected_rows(rows);
  EXPECT_TRUE(checker.Check().ok());
}

TEST(ReplicationEngineTest, DoubleCrashBeforeRebuildLosesRowsHonestly) {
  auto db = MakeKvDatabase();
  Simulator sim;
  ClusterEngine engine(&sim, db.catalog, db.registry, ReplicatedConfig(3));
  const int64_t rows = 300;
  for (int64_t k = 0; k < rows; ++k) {
    ASSERT_TRUE(engine.LoadRow(db.table, Row({Value(k), Value(k)})).ok());
  }
  // Crash two of three nodes back to back: some bucket's primary and
  // only backup are both gone before re-replication can run.
  ASSERT_TRUE(engine.CrashNode(2).ok());
  ASSERT_TRUE(engine.CrashNode(1).ok());
  EXPECT_GT(engine.rows_lost(), 0);
  EXPECT_EQ(engine.TotalRowCount(), rows - engine.rows_lost());
  // The checker knows about honest loss: conservation still holds.
  InvariantChecker checker(&engine, nullptr);
  checker.set_expected_rows(rows);
  sim.RunUntil(60 * kSecond);
  Status final_check = checker.Check();
  EXPECT_TRUE(final_check.ok()) << final_check.ToString();
}

TEST(ReplicationEngineTest, RestartRecoveryTakesSimulatedTime) {
  auto db = MakeKvDatabase();
  Simulator sim;
  ClusterEngine engine(&sim, db.catalog, db.registry, ReplicatedConfig(3));
  for (int64_t k = 0; k < 100; ++k) {
    ASSERT_TRUE(engine.LoadRow(db.table, Row({Value(k), Value(k)})).ok());
  }
  // Accumulate checkpoint + log state before the crash.
  for (int64_t k = 0; k < 30; ++k) {
    TxnRequest put;
    put.proc = db.put;
    put.key = k;
    put.args.push_back(Value(k));
    engine.Submit(std::move(put));
  }
  sim.RunUntil(12 * kSecond);  // Two checkpoint periods.
  EXPECT_GT(engine.replication()->checkpoints(), 0);

  ASSERT_TRUE(engine.CrashNode(2).ok());
  const int64_t epoch_after_crash = engine.fault_epoch();
  ASSERT_TRUE(engine.RestartNode(2).ok());
  // The node is replaying, not up; double restart is rejected.
  EXPECT_FALSE(engine.IsNodeUp(2));
  EXPECT_TRUE(engine.IsNodeRecovering(2));
  EXPECT_EQ(engine.nodes_recovering(), 1);
  EXPECT_FALSE(engine.RestartNode(2).ok());
  EXPECT_EQ(engine.fault_epoch(), epoch_after_crash);
  EXPECT_TRUE(engine.RecoveryInProgress());

  sim.RunUntil(120 * kSecond);
  EXPECT_TRUE(engine.IsNodeUp(2));
  EXPECT_FALSE(engine.IsNodeRecovering(2));
  EXPECT_EQ(engine.recoveries(), 1);
  EXPECT_GT(engine.total_recovery_time(), 0);
  EXPECT_GT(engine.fault_epoch(), epoch_after_crash);  // Bumps at finish.
  EXPECT_FALSE(engine.RecoveryInProgress());
}

TEST(ReplicationEngineTest, ChooseBackupPartitionAvoidsPrimaryAndDead) {
  auto db = MakeKvDatabase();
  Simulator sim;
  ClusterEngine engine(&sim, db.catalog, db.registry, ReplicatedConfig(3));
  const PartitionMap& map = engine.partition_map();
  for (BucketId b = 0; b < map.num_buckets(); ++b) {
    const PartitionId q = engine.ChooseBackupPartition(b);
    // Every bucket already holds its one replica, so the candidate (if
    // any) is a *different* eligible partition; with 3 nodes one always
    // exists.
    ASSERT_GE(q, 0);
    EXPECT_NE(engine.NodeOfPartition(q),
              engine.NodeOfPartition(map.PartitionOfBucket(b)));
    EXPECT_FALSE(engine.replication()->HasReplicaOn(b, q));
  }
  // With 2 nodes and a replica already on the other node, no candidate.
  ClusterEngine two(&sim, db.catalog, db.registry, ReplicatedConfig(2));
  EXPECT_EQ(two.ChooseBackupPartition(0), -1);
}

TEST(ReplicationEngineTest, MigratedPrimaryDisplacesCollidingReplica) {
  auto db = MakeKvDatabase();
  Simulator sim;
  EngineConfig config = ReplicatedConfig(3);
  ClusterEngine engine(&sim, db.catalog, db.registry, config);
  for (int64_t k = 0; k < 200; ++k) {
    ASSERT_TRUE(engine.LoadRow(db.table, Row({Value(k), Value(k)})).ok());
  }
  // Force every bucket onto node 0 via bucket moves; each move whose
  // destination node hosts the bucket's replica must relocate or drop
  // that replica — primary and backup never share a node.
  const PartitionMap& map = engine.partition_map();
  for (BucketId b = 0; b < map.num_buckets(); ++b) {
    if (map.PartitionOfBucket(b) == 0) continue;
    BucketMove move;
    move.bucket = b;
    move.from = map.PartitionOfBucket(b);
    move.to = 0;
    ASSERT_TRUE(engine.ApplyBucketMove(move).ok());
  }
  sim.RunUntil(60 * kSecond);
  const replication::ReplicaManager* rep = engine.replication();
  for (BucketId b = 0; b < map.num_buckets(); ++b) {
    for (PartitionId q : rep->replicas(b)) {
      EXPECT_NE(engine.NodeOfPartition(q), 0)
          << "bucket " << b << " replica colocated with its primary";
    }
  }
  InvariantChecker checker(&engine, nullptr);
  checker.set_expected_rows(200);
  EXPECT_TRUE(checker.Check().ok());
}

}  // namespace
}  // namespace pstore
