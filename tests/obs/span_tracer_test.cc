#include "obs/span_tracer.h"

#include <gtest/gtest.h>

#include "common/sim_time.h"

namespace pstore {
namespace obs {
namespace {

TEST(SpanTracerTest, NestingRecordsDepthAndParent) {
  if (!Enabled()) GTEST_SKIP() << "observability compiled out";
  SpanTracer tracer;
  const auto outer = tracer.BeginAt("move", 100);
  const auto inner = tracer.BeginAt("round", 150);
  tracer.EndAt(inner, 200);
  tracer.EndAt(outer, 300);

  ASSERT_EQ(tracer.size(), 2u);
  const auto& spans = tracer.spans();
  EXPECT_EQ(spans[0].name, "move");
  EXPECT_EQ(spans[0].depth, 0);
  EXPECT_EQ(spans[0].parent, 0);
  EXPECT_EQ(spans[0].start, 100);
  EXPECT_EQ(spans[0].end, 300);
  EXPECT_EQ(spans[1].name, "round");
  EXPECT_EQ(spans[1].depth, 1);
  EXPECT_EQ(spans[1].parent, outer);
  EXPECT_EQ(tracer.mismatches(), 0);
  EXPECT_EQ(tracer.open_spans(), 0u);
}

TEST(SpanTracerTest, EndingOuterForceClosesInner) {
  if (!Enabled()) GTEST_SKIP() << "observability compiled out";
  SpanTracer tracer;
  const auto outer = tracer.BeginAt("outer", 0);
  tracer.BeginAt("leaked", 10);
  tracer.EndAt(outer, 50);
  EXPECT_EQ(tracer.mismatches(), 1);
  EXPECT_EQ(tracer.spans()[1].end, 50);  // force-closed with the outer
  EXPECT_EQ(tracer.open_spans(), 0u);
}

TEST(SpanTracerTest, UnknownOrDoubleEndIsAMismatch) {
  if (!Enabled()) GTEST_SKIP() << "observability compiled out";
  SpanTracer tracer;
  tracer.EndAt(99, 10);
  EXPECT_EQ(tracer.mismatches(), 1);
  const auto id = tracer.BeginAt("s", 0);
  tracer.EndAt(id, 5);
  tracer.EndAt(id, 6);  // already closed
  EXPECT_EQ(tracer.mismatches(), 2);
  EXPECT_EQ(tracer.spans()[0].end, 5);  // first close wins
}

TEST(SpanTracerTest, ToStringGolden) {
  if (!Enabled()) GTEST_SKIP() << "observability compiled out";
  SpanTracer tracer;
  const auto outer = tracer.BeginAt("migration.move", kSecond);
  const auto inner = tracer.BeginAt("migration.round", 2 * kSecond);
  tracer.EndAt(inner, 3 * kSecond);
  tracer.EndAt(outer, 4 * kSecond);
  tracer.BeginAt("controller.tick", 5 * kSecond);  // left open

  EXPECT_EQ(tracer.ToString(),
            "[00:00:01.000 .. 00:00:04.000] migration.move\n"
            "[00:00:02.000 .. 00:00:03.000]   migration.round\n"
            "[00:00:05.000 .. ..] controller.tick\n");
  EXPECT_EQ(tracer.open_spans(), 1u);
}

TEST(SpanTracerTest, FingerprintIsDeterministic) {
  SpanTracer a;
  SpanTracer b;
  for (SpanTracer* t : {&a, &b}) {
    const auto id = t->BeginAt("x", 10);
    t->EndAt(id, 20);
  }
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());
  if (!Enabled()) return;
  const auto extra = b.BeginAt("y", 30);
  b.EndAt(extra, 40);
  EXPECT_NE(a.Fingerprint(), b.Fingerprint());
}

TEST(SpanTracerTest, ClockDrivesBeginAndEnd) {
  SpanTracer tracer;
  SimTime now = 7 * kSecond;
  tracer.set_clock([&now]() { return now; });
  const auto id = tracer.Begin("tick");
  now = 8 * kSecond;
  tracer.End(id);
  if (!Enabled()) return;
  EXPECT_EQ(tracer.spans()[0].start, 7 * kSecond);
  EXPECT_EQ(tracer.spans()[0].end, 8 * kSecond);
}

TEST(ScopedSpanTest, NullTracerIsANoop) {
  { ScopedSpan span(nullptr, "nothing"); }  // must not crash
  SpanTracer tracer;
  tracer.set_clock([]() { return SimTime{42}; });
  { ScopedSpan span(&tracer, "scoped"); }
  if (!Enabled()) return;
  ASSERT_EQ(tracer.size(), 1u);
  EXPECT_EQ(tracer.spans()[0].end, 42);
}

}  // namespace
}  // namespace obs
}  // namespace pstore
