#include "obs/txn_trace.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/engine.h"
#include "common/json.h"
#include "obs/exporter.h"
#include "obs/telemetry.h"
#include "sim/simulator.h"
#include "storage/schema.h"
#include "txn/procedure.h"

/// Transaction lifecycle tracing: the sampling/attribution unit
/// contract (intervals sum to end-to-end latency, migration overlap is
/// a window union, drops are counted), golden same-seed determinism of
/// engine-threaded traces — including an overload ("spike") run that
/// exercises the shed path — and the structural validity of the Chrome
/// trace_event export.

namespace pstore {
namespace obs {
namespace {

TxnTraceRecorder MakeRecorder(double rate, uint64_t seed = 7,
                              size_t max_records = 0) {
  TxnTraceRecorder::Config config;
  config.sample_rate = rate;
  config.seed = seed;
  config.max_records = max_records;
  return TxnTraceRecorder(config);
}

TEST(TxnTraceRecorderTest, DisabledRecorderDrawsAndStoresNothing) {
  TxnTraceRecorder recorder;  // default config: rate 0
  EXPECT_FALSE(recorder.enabled());
  EXPECT_EQ(recorder.Sample(1, "Get", 0, 10), -1);
  EXPECT_EQ(recorder.sampled(), 0);
  EXPECT_TRUE(recorder.records().empty());
  // Records on the -1 handle are no-ops, never crashes.
  recorder.Record(-1, TxnPhase::kExecuting, 20);
  recorder.Finalize(-1, 30);
  EXPECT_EQ(recorder.ToString(), "");
}

TEST(TxnTraceRecorderTest, PhaseIntervalsSumToEndToEndLatency) {
  if (!Enabled()) GTEST_SKIP() << "observability compiled out";
  TxnTraceRecorder recorder = MakeRecorder(1.0);
  const int64_t h = recorder.Sample(42, "Put", 3, 100);
  ASSERT_GE(h, 0);
  recorder.Record(h, TxnPhase::kAdmitted, 150, 1);
  recorder.Record(h, TxnPhase::kExecuting, 400, 1);
  recorder.Record(h, TxnPhase::kReplicated, 900, 2);
  recorder.Record(h, TxnPhase::kCommitted, 900);
  recorder.Finalize(h, 900);

  const TxnTraceRecord& record = recorder.records()[0];
  EXPECT_TRUE(record.done);
  const std::vector<TxnPhaseInterval> intervals = PhaseIntervals(record);
  ASSERT_EQ(intervals.size(), 4u);
  EXPECT_STREQ(intervals[0].phase, "admission");
  EXPECT_STREQ(intervals[1].phase, "queued");
  EXPECT_STREQ(intervals[2].phase, "executing");
  EXPECT_STREQ(intervals[3].phase, "replicating");
  SimDuration sum = 0;
  for (size_t i = 0; i < intervals.size(); ++i) {
    EXPECT_LE(intervals[i].start, intervals[i].end);
    if (i > 0) EXPECT_EQ(intervals[i].start, intervals[i - 1].end);
    sum += intervals[i].end - intervals[i].start;
  }
  EXPECT_EQ(sum, 900 - 100);  // attribution == end-to-end latency
}

TEST(TxnTraceRecorderTest, MigrationOverlapIsAWindowUnion) {
  if (!Enabled()) GTEST_SKIP() << "observability compiled out";
  TxnTraceRecorder recorder = MakeRecorder(1.0);
  // Two overlapping moves ([100, 300] and [200, 400]) and one open move
  // from 450: a txn alive over [0, 500] overlaps 100..400 and 450..500,
  // with the doubly-covered 200..300 counted once.
  recorder.OnMoveStarted(100);
  recorder.OnMoveStarted(200);
  recorder.OnMoveEnded(300);
  recorder.OnMoveEnded(400);
  recorder.OnMoveStarted(450);
  const int64_t h = recorder.Sample(1, "Get", 0, 0);
  ASSERT_GE(h, 0);
  recorder.Record(h, TxnPhase::kCommitted, 500);
  recorder.Finalize(h, 500);
  EXPECT_EQ(recorder.records()[0].migration_overlap, (400 - 100) + 50);
}

TEST(TxnTraceRecorderTest, RetransmitsScopedToTheTxnLifetime) {
  if (!Enabled()) GTEST_SKIP() << "observability compiled out";
  TxnTraceRecorder recorder = MakeRecorder(1.0);
  recorder.NoteRetransmit();  // before the txn exists: not attributed
  const int64_t h = recorder.Sample(1, "Get", 0, 10);
  ASSERT_GE(h, 0);
  recorder.NoteRetransmit();
  recorder.NoteRetransmit();
  recorder.Finalize(h, 20);
  EXPECT_EQ(recorder.records()[0].retransmits_seen, 2);
}

TEST(TxnTraceRecorderTest, RecordCapCountsDrops) {
  if (!Enabled()) GTEST_SKIP() << "observability compiled out";
  TxnTraceRecorder recorder = MakeRecorder(1.0, 7, 2);
  int64_t kept = 0;
  for (int64_t i = 0; i < 5; ++i) {
    if (recorder.Sample(i, "Get", 0, i) >= 0) ++kept;
  }
  EXPECT_EQ(kept, 2);
  EXPECT_EQ(recorder.records().size(), 2u);
  EXPECT_EQ(recorder.sampled(), 5);
  EXPECT_EQ(recorder.dropped(), 3);
}

TEST(TxnTraceRecorderTest, SamplingIsDeterministicPerSeed) {
  if (!Enabled()) GTEST_SKIP() << "observability compiled out";
  TxnTraceRecorder a = MakeRecorder(0.5, 11);
  TxnTraceRecorder b = MakeRecorder(0.5, 11);
  TxnTraceRecorder c = MakeRecorder(0.5, 12);
  int64_t c_diverged = 0;
  for (int64_t i = 0; i < 200; ++i) {
    const int64_t ha = a.Sample(i, "Get", 0, i);
    EXPECT_EQ(ha, b.Sample(i, "Get", 0, i));
    if ((ha >= 0) != (c.Sample(i, "Get", 0, i) >= 0)) ++c_diverged;
  }
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());
  EXPECT_GT(c_diverged, 0);  // a different seed samples differently
}

// ---------------------------------------------------------------------
// Engine-threaded traces: golden determinism and structural validity.

struct TracedRun {
  int64_t committed = 0;
  int64_t sampled = 0;
  uint64_t fingerprint = 0;
  std::string dump;
  std::string chrome_json;
  std::vector<TxnTraceRecord> records;
};

/// Drives a small cluster with tracing at `rate`; with `spike` the
/// admission layer is enabled and the offered load overruns one node so
/// shed/deadline terminals appear in the traces (the chaos_run --spike
/// shape, scaled down).
TracedRun RunTraced(uint64_t seed, double rate, bool spike) {
  Catalog catalog;
  const TableId table = *catalog.AddTable(Schema(
      "KV", {{"k", ColumnType::kInt64}, {"v", ColumnType::kInt64}}, 0));
  ProcedureRegistry registry;
  const ProcedureId get = *registry.Register(ProcedureDef{
      "Get",
      [table](ExecutionContext& ctx, const TxnRequest& req) {
        TxnResult r;
        auto row = ctx.Get(table, req.key);
        if (!row.ok()) {
          r.status = row.status();
        } else {
          r.rows.push_back(std::move(row).MoveValueUnsafe());
        }
        return r;
      },
      1.0});

  Simulator sim;
  EngineConfig config;
  config.num_buckets = 32;
  config.partitions_per_node = 2;
  config.max_nodes = 2;
  config.initial_nodes = 2;
  config.txn_service_us_mean = 1000.0;
  config.txn_service_cv = 0.1;
  config.seed = seed;
  if (spike) {
    config.overload.enabled = true;
    config.overload.max_queue_depth = 4;
    config.overload.queue_deadline = 10 * kMillisecond;
  }
  ClusterEngine engine(&sim, catalog, registry, config);

  TelemetryBundle telemetry;
  telemetry.tracer.set_clock([&sim]() { return sim.Now(); });
  TxnTraceRecorder::Config tc;
  tc.sample_rate = rate;
  tc.seed = seed ^ 0xa0761d6478bd642fULL;
  telemetry.txn_traces.Configure(tc);
  engine.set_telemetry(telemetry.view());

  for (int64_t k = 0; k < 32; ++k) {
    EXPECT_TRUE(engine.LoadRow(table, Row({Value(k), Value(k)})).ok());
  }

  // 2 s at 200 txn/s against ~4 partitions of 1 ms service: healthy
  // without the spike. With it, a one-instant burst of 100 txns into a
  // single bucket overruns the depth-4 queue and forces sheds.
  int64_t i = 0;
  for (double t = 0; t < 2.0; t += 1.0 / 200.0, ++i) {
    TxnRequest req;
    req.proc = get;
    req.key = (i * 48271) % 32;
    sim.ScheduleAt(SecondsToDuration(t),
                   [&engine, req]() { engine.Submit(req); });
  }
  if (spike) {
    for (int64_t burst = 0; burst < 100; ++burst) {
      TxnRequest req;
      req.proc = get;
      req.key = 0;
      sim.ScheduleAt(SecondsToDuration(1.0),
                     [&engine, req]() { engine.Submit(req); });
    }
  }
  sim.RunUntil(SecondsToDuration(4.0));

  TracedRun out;
  out.committed = engine.txns_committed();
  out.sampled = telemetry.txn_traces.sampled();
  out.fingerprint = telemetry.txn_traces.Fingerprint();
  out.dump = telemetry.txn_traces.ToString();
  out.chrome_json =
      ToChromeTraceJson(&telemetry.tracer, &telemetry.txn_traces);
  out.records = telemetry.txn_traces.records();
  return out;
}

TEST(TxnTraceEngineTest, SameSeedSameTraceBytes) {
  for (const bool spike : {false, true}) {
    const TracedRun a = RunTraced(7, 0.25, spike);
    const TracedRun b = RunTraced(7, 0.25, spike);
    EXPECT_EQ(a.fingerprint, b.fingerprint) << "spike=" << spike;
    EXPECT_EQ(a.dump, b.dump) << "spike=" << spike;
    EXPECT_EQ(a.chrome_json, b.chrome_json) << "spike=" << spike;
    EXPECT_EQ(a.sampled, b.sampled) << "spike=" << spike;
  }
}

TEST(TxnTraceEngineTest, EveryFinalizedTraceSumsToItsLatency) {
  if (!Enabled()) GTEST_SKIP() << "observability compiled out";
  const TracedRun run = RunTraced(7, 1.0, true);
  ASSERT_GT(run.sampled, 0);
  int64_t committed = 0, shed = 0;
  for (const TxnTraceRecord& record : run.records) {
    ASSERT_TRUE(record.done);
    ASSERT_GE(record.events.size(), 2u);
    const SimTime start = record.events.front().at;
    const SimTime end = record.events.back().at;
    SimDuration sum = 0;
    for (const TxnPhaseInterval& iv : PhaseIntervals(record)) {
      sum += iv.end - iv.start;
    }
    EXPECT_EQ(sum, end - start) << "txn " << record.txn_id;
    const TxnPhase terminal = record.events.back().phase;
    if (terminal == TxnPhase::kCommitted) ++committed;
    if (terminal == TxnPhase::kShed) ++shed;
  }
  EXPECT_GT(committed, 0);
  EXPECT_GT(shed, 0);  // the spike run must shed
}

TEST(TxnTraceEngineTest, ChromeTraceJsonIsStructurallyValid) {
  if (!Enabled()) GTEST_SKIP() << "observability compiled out";
  const TracedRun run = RunTraced(7, 0.5, true);
  auto doc = JsonValue::Parse(run.chrome_json);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  ASSERT_TRUE(doc->is_object());
  EXPECT_EQ(doc->GetStringOr("displayTimeUnit", ""), "ms");
  const JsonValue* events = doc->Get("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_GT(events->size(), 0u);

  double last_ts = -1;
  std::map<int64_t, std::vector<std::string>> open;  // tid -> B stack
  for (size_t i = 0; i < events->size(); ++i) {
    const JsonValue& e = events->at(i);
    ASSERT_TRUE(e.is_object());
    const double ts = e.GetNumberOr("ts", -1);
    EXPECT_GE(ts, last_ts) << "timestamps must be sorted";
    last_ts = ts;
    const std::string ph = e.GetStringOr("ph", "");
    ASSERT_FALSE(ph.empty());
    if (e.GetNumberOr("pid", -1) != 1) continue;
    const int64_t tid = static_cast<int64_t>(e.GetNumberOr("tid", -1));
    if (ph == "B") {
      open[tid].push_back(e.GetStringOr("name", ""));
    } else if (ph == "E") {
      ASSERT_FALSE(open[tid].empty()) << "E without B for tid " << tid;
      EXPECT_EQ(open[tid].back(), e.GetStringOr("name", ""));
      open[tid].pop_back();
    } else if (ph == "i") {
      EXPECT_EQ(e.GetStringOr("s", ""), "t");
    }
  }
  for (const auto& [tid, stack] : open) {
    EXPECT_TRUE(stack.empty()) << "unclosed B events for tid " << tid;
  }
}

TEST(TxnTraceEngineTest, UnsampledRunMatchesRecorderlessRun) {
  // Rate 0 must not perturb the engine: committed counts line up with a
  // run that never attached a recorder at all.
  const TracedRun off = RunTraced(7, 0.0, false);
  EXPECT_EQ(off.sampled, 0);
  EXPECT_EQ(off.dump, "");
  const TracedRun quarter = RunTraced(7, 0.25, false);
  EXPECT_EQ(off.committed, quarter.committed);
}

}  // namespace
}  // namespace obs
}  // namespace pstore
