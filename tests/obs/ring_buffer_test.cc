#include <gtest/gtest.h>

#include <string>

#include "obs/event_stream.h"
#include "obs/span_tracer.h"

/// Ring-buffer bounds on the unbounded-by-default observability sinks:
/// EventStream and SpanTracer accept an optional capacity, evict the
/// oldest entries once past it, and count evictions in dropped().
/// SpanTracer additionally guarantees that span ids handed out before
/// an eviction keep resolving (open spans are pinned, closed ones age
/// out), so instrumented code never holds a dangling id.

namespace pstore {
namespace obs {
namespace {

TEST(EventStreamRingTest, UnboundedByDefault) {
  EventStream stream;
  EXPECT_EQ(stream.capacity(), 0u);
  for (int i = 0; i < 100; ++i) stream.Record(i, "line");
  if (!Enabled()) return;
  EXPECT_EQ(stream.size(), 100u);
  EXPECT_EQ(stream.dropped(), 0);
}

TEST(EventStreamRingTest, CapacityEvictsOldestAndCounts) {
  if (!Enabled()) GTEST_SKIP() << "observability compiled out";
  EventStream stream;
  stream.set_capacity(3);
  for (int i = 0; i < 5; ++i) {
    stream.Record(i, "e" + std::to_string(i));
  }
  EXPECT_EQ(stream.size(), 3u);
  EXPECT_EQ(stream.dropped(), 2);
  // The oldest lines are gone, the newest are intact and in order.
  EXPECT_EQ(stream.ToString().find("e0"), std::string::npos);
  EXPECT_NE(stream.ToString().find("e2"), std::string::npos);
  EXPECT_NE(stream.ToString().find("e4"), std::string::npos);
}

TEST(EventStreamRingTest, ShrinkingCapacityTrimsImmediately) {
  if (!Enabled()) GTEST_SKIP() << "observability compiled out";
  EventStream stream;
  for (int i = 0; i < 10; ++i) stream.Record(i, "line");
  stream.set_capacity(4);
  EXPECT_EQ(stream.size(), 4u);
  EXPECT_EQ(stream.dropped(), 6);
  stream.Clear();
  EXPECT_EQ(stream.dropped(), 0);
  EXPECT_EQ(stream.size(), 0u);
}

TEST(SpanTracerRingTest, ClosedSpansAgeOutAndIdsStayValid) {
  if (!Enabled()) GTEST_SKIP() << "observability compiled out";
  SpanTracer tracer;
  tracer.set_capacity(2);
  for (int i = 0; i < 5; ++i) {
    const auto id = tracer.BeginAt("s" + std::to_string(i), i * 10);
    tracer.EndAt(id, i * 10 + 5);
  }
  EXPECT_EQ(tracer.size(), 2u);
  EXPECT_EQ(tracer.dropped(), 3);
  // The survivors are the newest spans, names preserved.
  EXPECT_EQ(tracer.spans()[0].name, "s3");
  EXPECT_EQ(tracer.spans()[1].name, "s4");
  EXPECT_EQ(tracer.mismatches(), 0);
}

TEST(SpanTracerRingTest, OpenSpansArePinned) {
  if (!Enabled()) GTEST_SKIP() << "observability compiled out";
  SpanTracer tracer;
  tracer.set_capacity(1);
  const auto outer = tracer.BeginAt("outer", 0);
  for (int i = 0; i < 4; ++i) {
    const auto inner = tracer.BeginAt("inner" + std::to_string(i), i + 1);
    tracer.EndAt(inner, i + 2);
  }
  // The open root cannot be evicted even though the ring is over
  // capacity: it pins the front, so nothing behind it ages out either.
  EXPECT_EQ(tracer.size(), 5u);
  EXPECT_EQ(tracer.dropped(), 0);
  EXPECT_EQ(tracer.spans().front().name, "outer");
  // Its id still resolves and closes cleanly; only then does the ring
  // trim down to capacity.
  tracer.EndAt(outer, 100);
  EXPECT_EQ(tracer.mismatches(), 0);
  EXPECT_EQ(tracer.open_spans(), 0u);
  EXPECT_EQ(tracer.size(), 1u);
  EXPECT_EQ(tracer.dropped(), 4);
  EXPECT_EQ(tracer.spans().front().name, "inner3");
}

TEST(SpanTracerRingTest, EvictionKeepsFingerprintOfSurvivors) {
  if (!Enabled()) GTEST_SKIP() << "observability compiled out";
  // Two tracers that end up with the same surviving spans must agree.
  SpanTracer a;
  a.set_capacity(2);
  for (int i = 0; i < 6; ++i) {
    const auto id = a.BeginAt("s" + std::to_string(i), i);
    a.EndAt(id, i + 1);
  }
  SpanTracer b;
  for (int i = 4; i < 6; ++i) {
    const auto id = b.BeginAt("s" + std::to_string(i), i);
    b.EndAt(id, i + 1);
  }
  EXPECT_EQ(a.ToString(), b.ToString());
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());
}

}  // namespace
}  // namespace obs
}  // namespace pstore
