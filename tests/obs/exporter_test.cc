#include "obs/exporter.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "common/sim_time.h"
#include "common/table_writer.h"
#include "obs/metrics.h"

namespace pstore {
namespace obs {
namespace {

std::string ReadFileOrEmpty(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(TimeseriesExporterTest, CsvGolden) {
  if (!Enabled()) GTEST_SKIP() << "observability compiled out";
  MetricsRegistry registry;
  TimeseriesExporter exporter(&registry);

  registry.GetCounter("a.count")->Add(1);
  exporter.Sample(kSecond);
  registry.GetCounter("a.count")->Add(1);
  registry.GetGauge("b.level")->Set(2.5);  // registers late
  exporter.Sample(2 * kSecond);

  // The header is the union of names; samples missing a metric render 0.
  EXPECT_EQ(exporter.ToCsv(),
            "time_s,a.count,b.level\n"
            "1,1,0\n"
            "2,2,2.5\n");
}

TEST(TimeseriesExporterTest, NullOrDisarmedRegistrySamplesNothing) {
  TimeseriesExporter null_exporter(nullptr);
  null_exporter.Sample(kSecond);
  EXPECT_EQ(null_exporter.samples(), 0u);
  EXPECT_EQ(null_exporter.ToCsv(), "time_s\n");

  MetricsRegistry registry;
  registry.set_armed(false);
  TimeseriesExporter exporter(&registry);
  exporter.Sample(kSecond);
  EXPECT_EQ(exporter.samples(), 0u);
}

TEST(TimeseriesExporterTest, WriteCsvCreatesParentDirs) {
  if (!Enabled()) GTEST_SKIP() << "observability compiled out";
  MetricsRegistry registry;
  registry.GetCounter("x")->Add(3);
  TimeseriesExporter exporter(&registry);
  exporter.Sample(0);

  const std::string path =
      testing::TempDir() + "/obs_exporter_test/nested/series.csv";
  ASSERT_TRUE(exporter.WriteCsv(path));
  EXPECT_EQ(ReadFileOrEmpty(path), exporter.ToCsv());
}

TEST(WriteColumnsCsvTest, MatchesCsvSeriesWriterBytes) {
  const std::vector<std::string> names = {"time_s", "txn_per_s"};
  const std::vector<std::vector<double>> columns = {
      {0.0, 10.0, 20.0}, {123.456, 0.1, 438.0}};

  CsvSeriesWriter writer;
  for (size_t i = 0; i < names.size(); ++i) {
    writer.AddColumn(names[i], columns[i]);
  }
  std::ostringstream reference;
  writer.Print(reference);

  const std::string path = testing::TempDir() + "/obs_exporter_test/cols.csv";
  ASSERT_TRUE(WriteColumnsCsv(path, names, columns));
  EXPECT_EQ(ReadFileOrEmpty(path), reference.str());
}

TEST(WriteColumnsCsvTest, PadsShortColumns) {
  const std::string path = testing::TempDir() + "/obs_exporter_test/pad.csv";
  ASSERT_TRUE(WriteColumnsCsv(path, {"a", "b"}, {{1.0, 2.0}, {5.0}}));
  EXPECT_EQ(ReadFileOrEmpty(path), "a,b\n1,5\n2,\n");
}

TEST(WriteStringToFileTest, RoundTripsAndCreatesDirs) {
  const std::string path =
      testing::TempDir() + "/obs_exporter_test/deep/dir/dump.json";
  ASSERT_TRUE(WriteStringToFile(path, "{\"ok\": true}\n"));
  EXPECT_EQ(ReadFileOrEmpty(path), "{\"ok\": true}\n");
  // Overwrites, never appends.
  ASSERT_TRUE(WriteStringToFile(path, "x"));
  EXPECT_EQ(ReadFileOrEmpty(path), "x");
}

}  // namespace
}  // namespace obs
}  // namespace pstore
