#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <string>

namespace pstore {
namespace obs {
namespace {

TEST(MetricsRegistryTest, GetReturnsStablePointers) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("cluster.txn_committed");
  Counter* b = registry.GetCounter("cluster.txn_committed");
  EXPECT_EQ(a, b);
  Gauge* g1 = registry.GetGauge("cluster.active_nodes");
  Gauge* g2 = registry.GetGauge("cluster.active_nodes");
  EXPECT_EQ(g1, g2);
  HistogramMetric* h1 = registry.GetHistogram("cluster.txn_latency_us");
  HistogramMetric* h2 = registry.GetHistogram("cluster.txn_latency_us");
  EXPECT_EQ(h1, h2);
  if (Enabled()) {
    EXPECT_NE(static_cast<void*>(a),
              static_cast<void*>(registry.GetCounter("other")));
  }
}

TEST(MetricsRegistryTest, CounterAndGaugeRecord) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("x.count");
  c->Increment();
  c->Add(4);
  Gauge* g = registry.GetGauge("x.level");
  g->Set(2.5);
  g->Add(0.5);
  if (!Enabled()) {
    EXPECT_EQ(c->value(), 0);
    EXPECT_EQ(g->value(), 0.0);
    return;
  }
  EXPECT_EQ(c->value(), 5);
  EXPECT_DOUBLE_EQ(g->value(), 3.0);
}

TEST(MetricsRegistryTest, HistogramRecordsAndMerges) {
  if (!Enabled()) GTEST_SKIP() << "observability compiled out";
  MetricsRegistry registry;
  HistogramMetric* h = registry.GetHistogram("x.latency_us");
  for (int64_t v = 1; v <= 100; ++v) h->Record(v);
  EXPECT_EQ(h->histogram().count(), 100);

  HistogramMetric other;
  for (int64_t v = 1000; v <= 1004; ++v) other.Record(v);
  h->MergeFrom(other);
  EXPECT_EQ(h->histogram().count(), 105);
  EXPECT_GE(h->histogram().max(), 1000);
}

TEST(MetricsRegistryTest, SnapshotIsSortedAndIncludesCallbacks) {
  if (!Enabled()) GTEST_SKIP() << "observability compiled out";
  MetricsRegistry registry;
  registry.GetCounter("b.count")->Add(2);
  registry.GetGauge("a.level")->Set(7);
  double depth = 11;
  registry.RegisterCallbackGauge("c.depth", [&depth]() { return depth; });

  auto snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.size(), 3u);
  // Counters, then gauges, then callbacks — each group sorted by name.
  EXPECT_EQ(snapshot[0].first, "b.count");
  EXPECT_EQ(snapshot[1].first, "a.level");
  EXPECT_EQ(snapshot[2].first, "c.depth");
  EXPECT_DOUBLE_EQ(snapshot[2].second, 11.0);
  depth = 13;  // callbacks are lazy: re-snapshot sees the new value
  EXPECT_DOUBLE_EQ(registry.Snapshot()[2].second, 13.0);
}

TEST(MetricsRegistryTest, FreezeCallbackGaugesDropsTheClosures) {
  if (!Enabled()) GTEST_SKIP() << "observability compiled out";
  MetricsRegistry registry;
  double depth = 11;
  registry.RegisterCallbackGauge("c.depth", [&depth]() { return depth; });
  registry.FreezeCallbackGauges();
  depth = 99;  // must not be read again: the closure is gone
  auto snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_EQ(snapshot[0].first, "c.depth");
  EXPECT_DOUBLE_EQ(snapshot[0].second, 11.0);
  EXPECT_NE(registry.DumpJson().find("\"c.depth\": 11"), std::string::npos);
}

TEST(MetricsRegistryTest, DumpJsonGolden) {
  if (!Enabled()) GTEST_SKIP() << "observability compiled out";
  MetricsRegistry registry;
  registry.GetCounter("m.count")->Add(3);
  registry.GetGauge("m.level")->Set(1.5);
  registry.GetHistogram("m.lat")->Record(10);
  const std::string expected =
      "{\n"
      "  \"counters\": {\n"
      "    \"m.count\": 3\n"
      "  },\n"
      "  \"gauges\": {\n"
      "    \"m.level\": 1.5\n"
      "  },\n"
      "  \"histograms\": {\n"
      "    \"m.lat\": {\"count\": 1, \"sum\": 10, \"min\": 10, \"max\": 10, "
      "\"p50\": 10, \"p95\": 10, \"p99\": 10}\n"
      "  }\n"
      "}\n";
  EXPECT_EQ(registry.DumpJson(), expected);
}

TEST(MetricsRegistryTest, FingerprintTracksContent) {
  MetricsRegistry a;
  MetricsRegistry b;
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());
  a.GetCounter("x")->Add(1);
  b.GetCounter("x")->Add(1);
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());
  if (!Enabled()) return;
  b.GetCounter("x")->Add(1);
  EXPECT_NE(a.Fingerprint(), b.Fingerprint());
}

TEST(MetricsRegistryTest, DisarmedRegistryRecordsNothing) {
  MetricsRegistry registry;
  registry.set_armed(false);
  Counter* c = registry.GetCounter("hidden.count");
  c->Add(42);
  registry.RegisterCallbackGauge("hidden.depth", []() { return 1.0; });
  EXPECT_TRUE(registry.Snapshot().empty());
  registry.set_armed(true);
  // The metric never registered; the dump stays empty.
  EXPECT_EQ(registry.Snapshot().size(), 0u);
}

TEST(FormatMetricValueTest, IntegralAndFractional) {
  EXPECT_EQ(FormatMetricValue(0), "0");
  EXPECT_EQ(FormatMetricValue(42), "42");
  EXPECT_EQ(FormatMetricValue(-7), "-7");
  EXPECT_EQ(FormatMetricValue(1.5), "1.5");
  EXPECT_EQ(FormatMetricValue(0.1), "0.1");
}

}  // namespace
}  // namespace obs
}  // namespace pstore
