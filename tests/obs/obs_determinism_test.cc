#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>

#include "cluster/engine.h"
#include "core/reactive_controller.h"
#include "migration/migration_executor.h"
#include "obs/exporter.h"
#include "obs/telemetry.h"
#include "sim/simulator.h"
#include "storage/schema.h"
#include "txn/procedure.h"

/// Same-seed determinism of the observability layer end to end: two
/// instrumented runs of a small elastic cluster must produce
/// byte-identical metric dumps, span traces, event streams and sampled
/// CSVs — the contract chaos_run and tools/check_determinism.sh rely on.

namespace pstore {
namespace {

struct TelemetryDump {
  std::string metrics_json;
  std::string metrics_csv;
  std::string spans;
  std::string events;
  uint64_t metrics_fingerprint = 0;
  uint64_t span_fingerprint = 0;
  uint64_t event_fingerprint = 0;
  int64_t committed = 0;
  int64_t moves = 0;
};

TelemetryDump RunInstrumented(uint64_t seed) {
  Catalog catalog;
  const TableId table = *catalog.AddTable(Schema(
      "KV", {{"k", ColumnType::kInt64}, {"v", ColumnType::kInt64}}, 0));
  ProcedureRegistry registry;
  const ProcedureId get = *registry.Register(ProcedureDef{
      "Get",
      [table](ExecutionContext& ctx, const TxnRequest& req) {
        TxnResult r;
        auto row = ctx.Get(table, req.key);
        if (!row.ok()) {
          r.status = row.status();
        } else {
          r.rows.push_back(std::move(row).MoveValueUnsafe());
        }
        return r;
      },
      1.0});

  Simulator sim;
  EngineConfig config;
  config.num_buckets = 64;
  config.partitions_per_node = 2;
  config.max_nodes = 4;
  config.initial_nodes = 1;
  config.txn_service_us_mean = 1000.0;
  config.txn_service_cv = 0.1;
  config.seed = seed;
  ClusterEngine engine(&sim, catalog, registry, config);

  obs::TelemetryBundle telemetry;
  telemetry.tracer.set_clock([&sim]() { return sim.Now(); });
  engine.set_telemetry(telemetry.view());

  const int64_t rows = 200;
  for (int64_t k = 0; k < rows; ++k) {
    EXPECT_TRUE(engine.LoadRow(table, Row({Value(k), Value(k)})).ok());
  }

  MigrationOptions migration;
  migration.chunk_kb = 100;
  migration.rate_kbps = 10000;
  migration.wire_kbps = 100000;
  migration.db_size_mb = 5;
  MigrationExecutor migrator(&engine, migration);
  migrator.set_telemetry(telemetry.view());

  ReactiveConfig reactive;
  reactive.q = 100.0;
  reactive.q_hat = 125.0;
  reactive.high_watermark = 0.9;
  reactive.monitor_period = kSecond;
  reactive.scale_in_hold = 5 * kSecond;
  ReactiveController controller(&engine, &migrator, reactive);
  controller.set_telemetry(telemetry.view());
  controller.Start();

  obs::TimeseriesExporter exporter(&telemetry.metrics);
  auto sample = std::make_shared<std::function<void()>>();
  // Raw-pointer capture: `sample` outlives the run, and a shared_ptr
  // capture would be a reference cycle that never frees the closure.
  *sample = [&sim, &exporter, tick = sample.get()]() {
    exporter.Sample(sim.Now());
    sim.Schedule(kSecond, *tick);
  };
  sim.Schedule(0, *sample);

  // A ramp that forces a scale-out: 50 txn/s for 10 s, then 400 txn/s.
  const double seconds = 30.0;
  int64_t i = 0;
  for (double t = 0; t < seconds; ++i) {
    TxnRequest req;
    req.proc = get;
    req.key = (i * 48271) % rows;
    sim.ScheduleAt(SecondsToDuration(t),
                   [&engine, req]() { engine.Submit(req); });
    t += t < 10.0 ? 1.0 / 50.0 : 1.0 / 400.0;
  }

  sim.RunUntil(SecondsToDuration(seconds));
  controller.Stop();
  sim.RunUntil(SecondsToDuration(seconds + 10));

  TelemetryDump out;
  out.metrics_json = telemetry.metrics.DumpJson();
  out.metrics_csv = exporter.ToCsv();
  out.spans = telemetry.tracer.ToString();
  out.events = telemetry.events.ToString();
  out.metrics_fingerprint = telemetry.metrics.Fingerprint();
  out.span_fingerprint = telemetry.tracer.Fingerprint();
  out.event_fingerprint = telemetry.events.Fingerprint();
  out.committed = engine.txns_committed();
  out.moves = static_cast<int64_t>(migrator.history().size());
  EXPECT_EQ(telemetry.tracer.mismatches(), 0);
  EXPECT_EQ(telemetry.tracer.open_spans(), 0u);
  return out;
}

TEST(ObsDeterminismTest, SameSeedSameDumps) {
  const TelemetryDump a = RunInstrumented(7);
  const TelemetryDump b = RunInstrumented(7);
  EXPECT_EQ(a.metrics_fingerprint, b.metrics_fingerprint);
  EXPECT_EQ(a.span_fingerprint, b.span_fingerprint);
  EXPECT_EQ(a.event_fingerprint, b.event_fingerprint);
  EXPECT_EQ(a.metrics_json, b.metrics_json);
  EXPECT_EQ(a.metrics_csv, b.metrics_csv);
  EXPECT_EQ(a.spans, b.spans);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.committed, b.committed);
}

TEST(ObsDeterminismTest, InstrumentedRunRecordsTheRun) {
  if (!obs::Enabled()) GTEST_SKIP() << "observability compiled out";
  const TelemetryDump dump = RunInstrumented(11);
  EXPECT_GT(dump.committed, 0);
  // The ramp overloads one node, so the reactive controller must have
  // scaled out at least once — visible in metrics, spans and events.
  EXPECT_GE(dump.moves, 1);
  EXPECT_NE(dump.metrics_json.find("\"cluster.txn_committed\": " +
                                   std::to_string(dump.committed)),
            std::string::npos);
  EXPECT_NE(dump.metrics_json.find("\"reactive.scale_outs\""),
            std::string::npos);
  EXPECT_NE(dump.spans.find("migration.move"), std::string::npos);
  EXPECT_NE(dump.events.find("reactive: overload"), std::string::npos);
  EXPECT_EQ(dump.metrics_csv.substr(0, 7), "time_s,");
}

TEST(ObsDeterminismTest, DifferentSeedsDiverge) {
  if (!obs::Enabled()) GTEST_SKIP() << "observability compiled out";
  const TelemetryDump a = RunInstrumented(7);
  const TelemetryDump b = RunInstrumented(8);
  // Service-time jitter differs, so latency histograms must differ.
  EXPECT_NE(a.metrics_json, b.metrics_json);
}

}  // namespace
}  // namespace pstore
