#include "planner/move_model.h"

#include <cmath>

#include <gtest/gtest.h>

namespace pstore {
namespace {

MoveModelConfig UnitConfig(int32_t partitions = 1) {
  // D = 1 "minute" and one partition per node makes Equation 3 read off
  // directly in units of D, matching Figure 4's axes.
  MoveModelConfig config;
  config.q = 100.0;
  config.partitions_per_node = partitions;
  config.d_minutes = 1.0;
  config.interval_minutes = 0.01;
  return config;
}

TEST(MoveModelConfigTest, ValidationCatchesBadValues) {
  MoveModelConfig c;
  EXPECT_TRUE(c.Validate().ok());
  c.q = 0;
  EXPECT_TRUE(c.Validate().IsInvalidArgument());
  c = MoveModelConfig{};
  c.partitions_per_node = 0;
  EXPECT_TRUE(c.Validate().IsInvalidArgument());
  c = MoveModelConfig{};
  c.d_minutes = -1;
  EXPECT_TRUE(c.Validate().IsInvalidArgument());
  c = MoveModelConfig{};
  c.interval_minutes = 0;
  EXPECT_TRUE(c.Validate().IsInvalidArgument());
  c = MoveModelConfig{};
  c.replication_overhead = -0.1;
  EXPECT_TRUE(c.Validate().IsInvalidArgument());
  c = MoveModelConfig{};
  c.replication_overhead = 1.0;
  EXPECT_TRUE(c.Validate().IsInvalidArgument());
  c = MoveModelConfig{};
  c.replication_overhead = 0.3;
  EXPECT_TRUE(c.Validate().ok());
}

TEST(MoveModelTest, ReplicationOverheadDeratesCapacity) {
  MoveModelConfig config = UnitConfig();
  config.replication_overhead = 0.25;
  MoveModel m(config);
  // cap(N) = Q * N * (1 - overhead): each node gives up the throughput
  // it spends re-applying writes to the backups it hosts.
  EXPECT_DOUBLE_EQ(m.Capacity(1), 75.0);
  EXPECT_DOUBLE_EQ(m.Capacity(4), 300.0);
  // Effective capacity inherits the derating through Capacity(1).
  EXPECT_DOUBLE_EQ(m.EffectiveCapacity(3, 14, 0.0), m.Capacity(3));

  // The default of 0 leaves every capacity number bit-identical.
  MoveModel plain(UnitConfig());
  EXPECT_EQ(plain.Capacity(7), 700.0);
}

TEST(MoveModelTest, MaxParallelismEquation2) {
  MoveModel m(UnitConfig(1));
  EXPECT_EQ(m.MaxParallelism(3, 3), 0);
  // Scale out: P * min(B, A - B).
  EXPECT_EQ(m.MaxParallelism(3, 5), 2);    // min(3, 2)
  EXPECT_EQ(m.MaxParallelism(3, 9), 3);    // min(3, 6)
  EXPECT_EQ(m.MaxParallelism(3, 14), 3);   // min(3, 11)
  // Scale in: P * min(A, B - A).
  EXPECT_EQ(m.MaxParallelism(5, 3), 2);
  EXPECT_EQ(m.MaxParallelism(14, 3), 3);

  MoveModel m6(UnitConfig(6));
  EXPECT_EQ(m6.MaxParallelism(3, 14), 18);
}

TEST(MoveModelTest, FractionMoved) {
  MoveModel m(UnitConfig());
  EXPECT_DOUBLE_EQ(m.FractionMoved(3, 3), 0.0);
  EXPECT_DOUBLE_EQ(m.FractionMoved(3, 14), 1.0 - 3.0 / 14.0);
  EXPECT_DOUBLE_EQ(m.FractionMoved(14, 3), 1.0 - 3.0 / 14.0);
  EXPECT_DOUBLE_EQ(m.FractionMoved(1, 2), 0.5);
}

TEST(MoveModelTest, MoveTimeEquation3) {
  MoveModel m(UnitConfig(1));
  // 3 -> 5: D / 2 * (1 - 3/5) = 0.2 D.
  EXPECT_NEAR(m.MoveTimeMinutes(3, 5), 0.2, 1e-12);
  // 3 -> 9: D / 3 * (1 - 1/3) = 2/9 D.
  EXPECT_NEAR(m.MoveTimeMinutes(3, 9), 2.0 / 9.0, 1e-12);
  // 3 -> 14: D / 3 * (11/14) = 11/42 D.
  EXPECT_NEAR(m.MoveTimeMinutes(3, 14), 11.0 / 42.0, 1e-12);
  // Scale-in is symmetric.
  EXPECT_NEAR(m.MoveTimeMinutes(14, 3), 11.0 / 42.0, 1e-12);
  EXPECT_DOUBLE_EQ(m.MoveTimeMinutes(4, 4), 0.0);
}

TEST(MoveModelTest, MoveTimeScalesWithPartitions) {
  MoveModel m1(UnitConfig(1));
  MoveModel m6(UnitConfig(6));
  EXPECT_NEAR(m6.MoveTimeMinutes(3, 14) * 6.0, m1.MoveTimeMinutes(3, 14),
              1e-12);
}

TEST(MoveModelTest, PaperScaleMoveDurations) {
  // Section 8.1: D = 77 minutes, P = 6 -> "most reconfigurations last
  // between 2 and 7 minutes".
  MoveModelConfig config;
  config.q = 285;
  config.partitions_per_node = 6;
  config.d_minutes = 77;
  config.interval_minutes = 5;
  MoveModel m(config);
  for (int32_t b = 1; b < 10; ++b) {
    const double t = m.MoveTimeMinutes(b, b + 1);
    EXPECT_GT(t, 0.5);
    EXPECT_LT(t, 8.0);
  }
  EXPECT_LT(m.MoveTimeMinutes(3, 14), 4.0);
}

TEST(MoveModelTest, MoveTimeIntervalsRoundsUp) {
  MoveModelConfig config = UnitConfig(1);
  config.interval_minutes = 0.15;
  MoveModel m(config);
  // 0.2 D / 0.15 = 1.33 -> 2 intervals.
  EXPECT_EQ(m.MoveTimeIntervals(3, 5), 2);
  EXPECT_EQ(m.MoveTimeIntervals(3, 3), 0);
}

TEST(MoveModelTest, MoveTimeIntervalsAtLeastOne) {
  MoveModelConfig config = UnitConfig(1);
  config.interval_minutes = 100.0;  // huge intervals
  MoveModel m(config);
  EXPECT_EQ(m.MoveTimeIntervals(1, 2), 1);
}

TEST(MoveModelTest, AvgMachinesCase1AllAtOnce) {
  MoveModel m(UnitConfig());
  // 3 -> 5 (delta 2 <= s 3): all 5 allocated throughout.
  EXPECT_DOUBLE_EQ(m.AvgMachinesAllocated(3, 5), 5.0);
  EXPECT_DOUBLE_EQ(m.AvgMachinesAllocated(5, 3), 5.0);
  EXPECT_DOUBLE_EQ(m.AvgMachinesAllocated(4, 4), 4.0);
}

TEST(MoveModelTest, AvgMachinesCase2PerfectMultiple) {
  MoveModel m(UnitConfig());
  // 3 -> 9 (delta 6 = 2 * 3): (2s + l) / 2 = (6 + 9)/2 = 7.5.
  EXPECT_DOUBLE_EQ(m.AvgMachinesAllocated(3, 9), 7.5);
  EXPECT_DOUBLE_EQ(m.AvgMachinesAllocated(9, 3), 7.5);
}

TEST(MoveModelTest, AvgMachinesCase3ThreePhases) {
  MoveModel m(UnitConfig());
  // 3 -> 14: delta 11, r 2, f 3. From Algorithm 4:
  // phase1 = 2 * (3/11) * 7.5 = 45/11
  // phase2 = (2/11) * 12      = 24/11
  // phase3 = (3/11) * 14      = 42/11  -> total 111/11.
  EXPECT_NEAR(m.AvgMachinesAllocated(3, 14), 111.0 / 11.0, 1e-12);
  EXPECT_NEAR(m.AvgMachinesAllocated(14, 3), 111.0 / 11.0, 1e-12);
}

TEST(MoveModelTest, AvgMachinesBounds) {
  MoveModel m(UnitConfig());
  for (int32_t b = 1; b <= 12; ++b) {
    for (int32_t a = 1; a <= 12; ++a) {
      const double avg = m.AvgMachinesAllocated(b, a);
      EXPECT_GE(avg, std::max(b, a) == std::min(b, a)
                         ? std::min(b, a)
                         : std::min(b, a) + 0.0)
          << b << "->" << a;
      EXPECT_LE(avg, std::max(b, a)) << b << "->" << a;
      // Symmetry (the paper's "allocation symmetric" note).
      EXPECT_DOUBLE_EQ(avg, m.AvgMachinesAllocated(a, b));
    }
  }
}

TEST(MoveModelTest, MoveCostEquation4) {
  MoveModelConfig config = UnitConfig(1);
  config.interval_minutes = 1.0 / 42.0;  // one interval per round, 3->14
  MoveModel m(config);
  const int32_t t = m.MoveTimeIntervals(3, 14);
  EXPECT_EQ(t, 11);
  EXPECT_NEAR(m.MoveCost(3, 14), 11.0 * 111.0 / 11.0, 1e-9);
  EXPECT_DOUBLE_EQ(m.MoveCost(5, 5), 0.0);
}

TEST(MoveModelTest, CapacityEquation5) {
  MoveModel m(UnitConfig());
  EXPECT_DOUBLE_EQ(m.Capacity(1), 100.0);
  EXPECT_DOUBLE_EQ(m.Capacity(7), 700.0);
}

TEST(MoveModelTest, EffectiveCapacityEndpointsScaleOut) {
  MoveModel m(UnitConfig());
  // f = 0: capacity of B machines. f = 1: capacity of A machines.
  EXPECT_DOUBLE_EQ(m.EffectiveCapacity(3, 14, 0.0), m.Capacity(3));
  EXPECT_NEAR(m.EffectiveCapacity(3, 14, 1.0), m.Capacity(14), 1e-9);
}

TEST(MoveModelTest, EffectiveCapacityEndpointsScaleIn) {
  MoveModel m(UnitConfig());
  EXPECT_DOUBLE_EQ(m.EffectiveCapacity(14, 3, 0.0), m.Capacity(14));
  EXPECT_NEAR(m.EffectiveCapacity(14, 3, 1.0), m.Capacity(3), 1e-9);
}

TEST(MoveModelTest, EffectiveCapacityMidpointFormula) {
  MoveModel m(UnitConfig());
  // Equation 7, B < A, f = 0.5: 1/(1/B - 0.5*(1/B - 1/A)).
  const double f_n = 1.0 / 3.0 - 0.5 * (1.0 / 3.0 - 1.0 / 14.0);
  EXPECT_NEAR(m.EffectiveCapacity(3, 14, 0.5), 100.0 / f_n, 1e-9);
}

TEST(MoveModelTest, EffectiveCapacityMonotoneInProgress) {
  MoveModel m(UnitConfig());
  // Scale-out capacity grows with f; scale-in shrinks.
  double prev_out = 0, prev_in = 1e18;
  for (double f = 0; f <= 1.0; f += 0.05) {
    const double out = m.EffectiveCapacity(2, 10, f);
    const double in = m.EffectiveCapacity(10, 2, f);
    EXPECT_GE(out, prev_out - 1e-9);
    EXPECT_LE(in, prev_in + 1e-9);
    prev_out = out;
    prev_in = in;
  }
}

TEST(MoveModelTest, EffectiveCapacityBelowAllocatedDuringBigMoves) {
  // Figure 4c's message: during 3 -> 14, effective capacity is far below
  // the allocated machine count for most of the move.
  MoveModel m(UnitConfig());
  const double halfway = m.EffectiveCapacity(3, 14, 0.5);
  EXPECT_LT(halfway, m.Capacity(6));  // nominal allocation is already >= 9
}

TEST(MoveModelTest, EffectiveCapacityClampsProgress) {
  MoveModel m(UnitConfig());
  EXPECT_DOUBLE_EQ(m.EffectiveCapacity(3, 6, -0.5),
                   m.EffectiveCapacity(3, 6, 0.0));
  EXPECT_DOUBLE_EQ(m.EffectiveCapacity(3, 6, 1.5),
                   m.EffectiveCapacity(3, 6, 1.0));
}

// Figure 4 reproduction at the model level: effective capacity in
// machine-equivalents at f = 1 equals the target size for all cases.
class Figure4SweepTest
    : public ::testing::TestWithParam<std::tuple<int32_t, int32_t>> {};

TEST_P(Figure4SweepTest, CapacityInterpolatesBetweenEndpoints) {
  const auto [b, a] = GetParam();
  MoveModel m(UnitConfig());
  for (double f = 0; f <= 1.0; f += 0.1) {
    const double cap = m.EffectiveCapacity(b, a, f);
    EXPECT_GE(cap, std::min(m.Capacity(b), m.Capacity(a)) - 1e-9);
    EXPECT_LE(cap, std::max(m.Capacity(b), m.Capacity(a)) + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Moves, Figure4SweepTest,
    ::testing::Values(std::make_tuple(3, 5), std::make_tuple(3, 9),
                      std::make_tuple(3, 14), std::make_tuple(5, 3),
                      std::make_tuple(9, 3), std::make_tuple(14, 3),
                      std::make_tuple(1, 2), std::make_tuple(2, 1),
                      std::make_tuple(7, 8), std::make_tuple(10, 40)));

}  // namespace
}  // namespace pstore
