#include "planner/dp_planner.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace pstore {
namespace {

MoveModelConfig SmallConfig() {
  // Q = 100 txn/interval-unit; moves between small clusters take 1-3
  // intervals, so plans must think ahead.
  MoveModelConfig config;
  config.q = 100.0;
  config.partitions_per_node = 1;
  config.d_minutes = 30.0;
  config.interval_minutes = 5.0;
  return config;
}

/// Independently validates a plan against the load and the move model:
/// contiguity, correct endpoints, and capacity/effective-capacity
/// feasibility at every interval. Returns the recomputed total cost.
double ValidatePlan(const Plan& plan, const std::vector<double>& load,
                    const MoveModel& model, int32_t n0) {
  EXPECT_TRUE(plan.feasible);
  EXPECT_FALSE(plan.moves.empty());
  const int32_t horizon = static_cast<int32_t>(load.size()) - 1;
  EXPECT_EQ(plan.moves.front().start_interval, 0);
  EXPECT_EQ(plan.moves.front().from_nodes, n0);
  EXPECT_EQ(plan.moves.back().end_interval, horizon);

  double cost = n0;  // base case: N0 machines for the first interval
  EXPECT_LE(load[0], model.Capacity(n0));

  int32_t prev_end = 0;
  int32_t prev_nodes = n0;
  for (const auto& mv : plan.moves) {
    EXPECT_EQ(mv.start_interval, prev_end);
    EXPECT_EQ(mv.from_nodes, prev_nodes);
    const int32_t dur = mv.end_interval - mv.start_interval;
    if (mv.IsNoop()) {
      EXPECT_EQ(dur, 1);
      EXPECT_LE(load[static_cast<size_t>(mv.end_interval)],
                model.Capacity(mv.to_nodes));
      cost += mv.from_nodes;
    } else {
      EXPECT_EQ(dur, model.MoveTimeIntervals(mv.from_nodes, mv.to_nodes));
      for (int32_t i = 1; i <= dur; ++i) {
        const double f = static_cast<double>(i) / dur;
        EXPECT_LE(
            load[static_cast<size_t>(mv.start_interval + i)],
            model.EffectiveCapacity(mv.from_nodes, mv.to_nodes, f) + 1e-9)
            << "interval " << mv.start_interval + i;
      }
      cost += model.MoveCost(mv.from_nodes, mv.to_nodes);
    }
    prev_end = mv.end_interval;
    prev_nodes = mv.to_nodes;
  }
  EXPECT_NEAR(cost, plan.total_cost, 1e-6);
  return cost;
}

/// Brute-force reference: forward search over all move sequences.
double BruteForceCost(const std::vector<double>& load, int32_t n0,
                      int32_t z, const MoveModel& model,
                      int32_t required_final = -1) {
  const int32_t horizon = static_cast<int32_t>(load.size()) - 1;
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::map<std::pair<int32_t, int32_t>, double> memo;

  std::function<double(int32_t, int32_t)> rest = [&](int32_t t,
                                                     int32_t n) -> double {
    if (t == horizon) {
      if (required_final >= 0 && n != required_final) return kInf;
      return 0.0;
    }
    auto key = std::make_pair(t, n);
    auto it = memo.find(key);
    if (it != memo.end()) return it->second;
    double best = kInf;
    // Hold one interval.
    if (load[static_cast<size_t>(t + 1)] <= model.Capacity(n)) {
      best = std::min(best, n + rest(t + 1, n));
    }
    // Real moves.
    for (int32_t a = 1; a <= z; ++a) {
      if (a == n) continue;
      const int32_t dur = model.MoveTimeIntervals(n, a);
      if (t + dur > horizon) continue;
      bool ok = true;
      for (int32_t i = 1; i <= dur; ++i) {
        const double f = static_cast<double>(i) / dur;
        if (load[static_cast<size_t>(t + i)] >
            model.EffectiveCapacity(n, a, f)) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
      best = std::min(best, model.MoveCost(n, a) + rest(t + dur, a));
    }
    memo[key] = best;
    return best;
  };

  if (load[0] > model.Capacity(n0)) return kInf;
  const double tail = rest(0, n0);
  return tail == kInf ? kInf : n0 + tail;
}

TEST(DpPlannerTest, NodesForLoad) {
  DpPlanner planner((MoveModel(SmallConfig())));
  EXPECT_EQ(planner.NodesForLoad(0), 1);
  EXPECT_EQ(planner.NodesForLoad(50), 1);
  EXPECT_EQ(planner.NodesForLoad(100), 1);
  EXPECT_EQ(planner.NodesForLoad(101), 2);
  EXPECT_EQ(planner.NodesForLoad(950), 10);
}

TEST(DpPlannerTest, FlatLoadHoldsAtMinimum) {
  MoveModel model(SmallConfig());
  DpPlanner planner(model);
  std::vector<double> load(10, 80.0);  // fits on one node
  Plan plan = planner.BestMoves(load, 1);
  ASSERT_TRUE(plan.feasible);
  EXPECT_EQ(plan.final_nodes(), 1);
  EXPECT_EQ(plan.FirstRealMove(), nullptr);
  // Base (1) + 9 hold intervals (1 each).
  EXPECT_NEAR(plan.total_cost, 10.0, 1e-9);
  ValidatePlan(plan, load, model, 1);
}

TEST(DpPlannerTest, RisingLoadScalesOutInTime) {
  MoveModel model(SmallConfig());
  DpPlanner planner(model);
  // Load fits 1 node until interval 6, then needs 2.
  std::vector<double> load(12, 80.0);
  for (size_t t = 6; t < load.size(); ++t) load[t] = 180.0;
  Plan plan = planner.BestMoves(load, 1);
  ASSERT_TRUE(plan.feasible);
  EXPECT_EQ(plan.final_nodes(), 2);
  const PlannedMove* mv = plan.FirstRealMove();
  ASSERT_NE(mv, nullptr);
  EXPECT_EQ(mv->from_nodes, 1);
  EXPECT_EQ(mv->to_nodes, 2);
  // The move must complete by interval 6 (load exceeds eff-cap before
  // the transfer finishes otherwise).
  EXPECT_LE(mv->end_interval, 6);
  ValidatePlan(plan, load, model, 1);
}

TEST(DpPlannerTest, ScaleOutDelayedAsLateAsPossible) {
  MoveModel model(SmallConfig());
  DpPlanner planner(model);
  std::vector<double> load(20, 80.0);
  for (size_t t = 15; t < load.size(); ++t) load[t] = 180.0;
  Plan plan = planner.BestMoves(load, 1);
  ASSERT_TRUE(plan.feasible);
  const PlannedMove* mv = plan.FirstRealMove();
  ASSERT_NE(mv, nullptr);
  // Minimizing cost delays the scale-out: it should not start at 0.
  EXPECT_GT(mv->start_interval, 5);
  ValidatePlan(plan, load, model, 1);
}

TEST(DpPlannerTest, FallingLoadScalesIn) {
  MoveModel model(SmallConfig());
  DpPlanner planner(model);
  std::vector<double> load(12, 250.0);
  for (size_t t = 3; t < load.size(); ++t) load[t] = 60.0;
  Plan plan = planner.BestMoves(load, 3);
  ASSERT_TRUE(plan.feasible);
  EXPECT_EQ(plan.final_nodes(), 1);
  ValidatePlan(plan, load, model, 3);
}

TEST(DpPlannerTest, InfeasibleWhenSpikeArrivesTooSoon) {
  MoveModel model(SmallConfig());
  DpPlanner planner(model);
  // From 1 node, a 9x jump at the very next interval cannot be absorbed:
  // any move is still in flight with eff-cap barely above cap(1).
  std::vector<double> load = {80.0, 900.0, 900.0, 900.0};
  Plan plan = planner.BestMoves(load, 1);
  EXPECT_FALSE(plan.feasible);
  EXPECT_TRUE(plan.moves.empty());
}

TEST(DpPlannerTest, OverloadedNowIsInfeasible) {
  DpPlanner planner((MoveModel(SmallConfig())));
  std::vector<double> load = {500.0, 500.0};
  EXPECT_FALSE(planner.BestMoves(load, 1).feasible);
}

TEST(DpPlannerTest, MaxNodesCapsPlans) {
  MoveModel model(SmallConfig());
  DpPlanner planner(model, /*max_nodes=*/2);
  std::vector<double> load(10, 80.0);
  for (size_t t = 5; t < load.size(); ++t) load[t] = 500.0;  // needs 5
  EXPECT_FALSE(planner.BestMoves(load, 1).feasible);
}

TEST(DpPlannerTest, BadInputsYieldInfeasible) {
  DpPlanner planner((MoveModel(SmallConfig())));
  EXPECT_FALSE(planner.BestMoves({}, 1).feasible);
  EXPECT_FALSE(planner.BestMoves({10.0}, 1).feasible);
  EXPECT_FALSE(planner.BestMoves({10.0, 10.0}, 0).feasible);
}

TEST(DpPlannerTest, MatchesBruteForceOnStep) {
  MoveModel model(SmallConfig());
  DpPlanner planner(model);
  std::vector<double> load = {80, 80, 80, 150, 260, 260, 170, 90, 90, 90};
  Plan plan = planner.BestMoves(load, 1);
  ASSERT_TRUE(plan.feasible);
  ValidatePlan(plan, load, model, 1);
  const int32_t z = std::max<int32_t>(
      1, static_cast<int32_t>(std::ceil(
             *std::max_element(load.begin(), load.end()) / 100.0)));
  const double brute = BruteForceCost(load, 1, z, model,
                                      plan.final_nodes());
  EXPECT_NEAR(plan.total_cost, brute, 1e-6);
}

TEST(DpPlannerTest, FinalNodesIsMinimalFeasible) {
  MoveModel model(SmallConfig());
  DpPlanner planner(model);
  // The rise to 250 arrives at interval 4, leaving just enough time for
  // the four-interval 1 -> 3 move to land.
  std::vector<double> load = {80, 80, 80, 80, 250, 250, 120, 120, 120};
  Plan plan = planner.BestMoves(load, 1);
  ASSERT_TRUE(plan.feasible);
  // No feasible plan can end with fewer machines.
  for (int32_t fewer = 1; fewer < plan.final_nodes(); ++fewer) {
    EXPECT_EQ(BruteForceCost(load, 1, 3, model, fewer),
              std::numeric_limits<double>::infinity());
  }
}

// Property sweep: on random diurnal-ish loads, plans validate and match
// the brute-force optimum for their final machine count.
class DpPlannerRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(DpPlannerRandomTest, OptimalAndValid) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  MoveModel model(SmallConfig());
  DpPlanner planner(model);
  const int32_t horizon = 10;
  std::vector<double> load(static_cast<size_t>(horizon) + 1);
  const double base = 60 + rng.NextDouble() * 60;
  const double amp = rng.NextDouble() * 250;
  const double phase = rng.NextDouble() * 6.28;
  for (size_t t = 0; t < load.size(); ++t) {
    load[t] = std::max(
        10.0, base + amp * (0.5 + 0.5 * std::sin(phase + 0.5 * t)) +
                  rng.NextGaussian() * 10);
  }
  const int32_t n0 =
      std::max<int32_t>(1, static_cast<int32_t>(std::ceil(load[0] / 100.0)));

  // Match the planner's internal machine bound Z so the reference
  // search explores exactly the same action space.
  const int32_t z = std::max<int32_t>(
      n0, static_cast<int32_t>(std::ceil(
              *std::max_element(load.begin(), load.end()) / 100.0)));
  Plan plan = planner.BestMoves(load, n0);
  if (!plan.feasible) {
    // Brute force must agree that nothing works.
    EXPECT_EQ(BruteForceCost(load, n0, z, model),
              std::numeric_limits<double>::infinity());
    return;
  }
  ValidatePlan(plan, load, model, n0);
  const double brute =
      BruteForceCost(load, n0, z, model, plan.final_nodes());
  EXPECT_NEAR(plan.total_cost, brute, 1e-6) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, DpPlannerRandomTest,
                         ::testing::Range(0, 25));

TEST(PlannedMoveTest, ToStringFormats) {
  PlannedMove hold{0, 1, 2, 2};
  EXPECT_NE(hold.ToString().find("hold"), std::string::npos);
  PlannedMove move{2, 5, 2, 4};
  EXPECT_NE(move.ToString().find("2 -> 4"), std::string::npos);
}

TEST(PlanTest, ToStringHandlesInfeasible) {
  Plan p;
  EXPECT_NE(p.ToString().find("infeasible"), std::string::npos);
}

}  // namespace
}  // namespace pstore
