#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "planner/dp_planner.h"

/// \file dp_pruning_test.cc
/// Equivalence suite for the tabled + pruned DP planner: the default
/// (fast) mode must return exactly the plan the textbook recursion
/// returns — same moves, same cost, same feasibility, and even the
/// same number of DP cells evaluated (the prune only skips states the
/// exhaustive recursion rejects before touching the memo).

namespace pstore {
namespace {

MoveModelConfig SmallConfig() {
  MoveModelConfig config;
  config.q = 100.0;
  config.partitions_per_node = 1;
  config.d_minutes = 30.0;
  config.interval_minutes = 5.0;
  return config;
}

void ExpectIdenticalPlans(const Plan& fast, const Plan& reference) {
  EXPECT_EQ(fast.feasible, reference.feasible);
  EXPECT_EQ(fast.total_cost, reference.total_cost);
  EXPECT_EQ(fast.dp_cells_evaluated, reference.dp_cells_evaluated);
  ASSERT_EQ(fast.moves.size(), reference.moves.size());
  for (size_t i = 0; i < fast.moves.size(); ++i) {
    EXPECT_EQ(fast.moves[i], reference.moves[i]) << "move " << i;
  }
}

void ExpectEquivalentOn(const std::vector<double>& load, int32_t n0,
                        int32_t max_nodes) {
  DpPlanner fast(MoveModel(SmallConfig()), max_nodes);
  DpPlanner exhaustive(MoveModel(SmallConfig()), max_nodes);
  exhaustive.set_exhaustive(true);
  ASSERT_FALSE(fast.exhaustive());
  ASSERT_TRUE(exhaustive.exhaustive());
  ExpectIdenticalPlans(fast.BestMoves(load, n0),
                       exhaustive.BestMoves(load, n0));
}

TEST(DpPruningTest, SineLoadsAcrossHorizons) {
  for (const int32_t horizon : {4, 8, 16, 32}) {
    std::vector<double> load(static_cast<size_t>(horizon) + 1);
    for (size_t t = 0; t < load.size(); ++t) {
      load[t] = 250.0 + 180.0 * std::sin(2 * M_PI * static_cast<double>(t) /
                                         static_cast<double>(horizon));
    }
    ExpectEquivalentOn(load, 3, 8);
  }
}

TEST(DpPruningTest, RandomLoadsAcrossSeeds) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    const int32_t horizon = 6 + static_cast<int32_t>(rng.NextBounded(10));
    std::vector<double> load(static_cast<size_t>(horizon) + 1);
    // First entry must be coverable by n0 for a feasible instance, but
    // infeasible instances must agree too, so don't force it.
    for (size_t t = 0; t < load.size(); ++t) {
      load[t] = 50.0 + 550.0 * rng.NextDouble();
    }
    const int32_t n0 = 1 + static_cast<int32_t>(rng.NextBounded(6));
    const int32_t max_nodes = 6 + static_cast<int32_t>(rng.NextBounded(4));
    ExpectEquivalentOn(load, n0, max_nodes);
  }
}

TEST(DpPruningTest, SpikeAndCrashShapes) {
  // Sharp spike: forces a scale-out planned ahead of the peak.
  std::vector<double> spike = {100, 100, 100, 600, 600, 100, 100, 100};
  ExpectEquivalentOn(spike, 1, 10);

  // Monotone decay: the planner should ride the scale-in.
  std::vector<double> decay = {800, 700, 550, 400, 300, 200, 120, 90};
  ExpectEquivalentOn(decay, 8, 10);

  // Flat at a capacity boundary: amin sits exactly on the edge.
  std::vector<double> edge(9, 300.0);  // == Capacity(3) with q = 100
  ExpectEquivalentOn(edge, 3, 6);
}

TEST(DpPruningTest, InfeasibleInstancesAgree) {
  // Load beyond any allowed machine count: both modes must return the
  // same infeasible plan.
  std::vector<double> load = {100, 100, 9999, 100};
  DpPlanner fast(MoveModel(SmallConfig()), 4);
  DpPlanner exhaustive(MoveModel(SmallConfig()), 4);
  exhaustive.set_exhaustive(true);
  const Plan a = fast.BestMoves(load, 1);
  const Plan b = exhaustive.BestMoves(load, 1);
  EXPECT_FALSE(a.feasible);
  ExpectIdenticalPlans(a, b);
}

}  // namespace
}  // namespace pstore
