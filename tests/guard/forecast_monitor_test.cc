#include "guard/forecast_monitor.h"

#include <string>

#include "gtest/gtest.h"
#include "obs/telemetry.h"

namespace pstore {
namespace guard {
namespace {

GuardConfig Enabled() {
  GuardConfig config;
  config.enabled = true;
  return config;
}

TEST(ForecastMonitorTest, StateNamesAreDistinct) {
  EXPECT_STREQ(GuardStateName(GuardState::kHealthy), "healthy");
  EXPECT_STREQ(GuardStateName(GuardState::kSuspect), "suspect");
  EXPECT_STREQ(GuardStateName(GuardState::kDiverged), "diverged");
}

TEST(ForecastMonitorTest, AccurateForecastsStayHealthy) {
  ForecastMonitor monitor(Enabled());
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(monitor.Observe(100.0 + (i % 3), 100.0),
              GuardState::kHealthy);
  }
  EXPECT_EQ(monitor.divergences(), 0);
  EXPECT_EQ(monitor.windows_observed(), 100);
  EXPECT_LT(monitor.ewma_abs_residual(), 0.1);
}

TEST(ForecastMonitorTest, LargeMissDivergesAfterHysteresis) {
  GuardConfig config = Enabled();
  config.diverge_windows = 2;
  ForecastMonitor monitor(config);
  monitor.Observe(100.0, 100.0);
  // A 3x surge against a flat forecast: first alarming window is only
  // suspect evidence; the second confirms.
  EXPECT_EQ(monitor.Observe(300.0, 100.0), GuardState::kSuspect);
  EXPECT_EQ(monitor.Observe(300.0, 100.0), GuardState::kDiverged);
  EXPECT_EQ(monitor.divergences(), 1);
}

TEST(ForecastMonitorTest, OneSettledWindowClearsSuspicion) {
  ForecastMonitor monitor(Enabled());
  monitor.Observe(300.0, 100.0);
  ASSERT_EQ(monitor.state(), GuardState::kSuspect);
  // Settling is enough to clear suspect (hysteresis binds only on the
  // costly transitions) — but the EWMA must first decay below the
  // suspect threshold.
  while (monitor.state() == GuardState::kSuspect) {
    monitor.Observe(100.0, 100.0);
  }
  EXPECT_EQ(monitor.state(), GuardState::kHealthy);
  EXPECT_EQ(monitor.divergences(), 0);
}

TEST(ForecastMonitorTest, SustainedSmallBiasTripsCusum) {
  GuardConfig config = Enabled();
  config.suspect_threshold = 10.0;  // EWMA path disabled for the test.
  ForecastMonitor monitor(config);
  // A persistent 40% under-forecast never trips the (disabled) EWMA
  // alarm, but banks 0.15 of CUSUM mass per window; h = 1.5 trips
  // after ten windows plus the two-window diverge hysteresis.
  int windows = 0;
  while (monitor.state() != GuardState::kDiverged && windows < 100) {
    monitor.Observe(140.0, 100.0);
    ++windows;
  }
  EXPECT_EQ(monitor.state(), GuardState::kDiverged);
  EXPECT_GT(monitor.cusum_high(), config.cusum_h);
  EXPECT_DOUBLE_EQ(monitor.cusum_low(), 0.0);
}

TEST(ForecastMonitorTest, OverForecastTripsLowSideCusum) {
  GuardConfig config = Enabled();
  config.suspect_threshold = 10.0;
  ForecastMonitor monitor(config);
  int windows = 0;
  while (monitor.state() != GuardState::kDiverged && windows < 100) {
    monitor.Observe(60.0, 100.0);
    ++windows;
  }
  EXPECT_EQ(monitor.state(), GuardState::kDiverged);
  EXPECT_GT(monitor.cusum_low(), config.cusum_h);
  EXPECT_DOUBLE_EQ(monitor.cusum_high(), 0.0);
}

TEST(ForecastMonitorTest, CusumCapBoundsRejoinInertia) {
  GuardConfig config = Enabled();
  ForecastMonitor monitor(config);
  // A long surge must not bank unbounded mass: without the cap, 50
  // windows of residual 2.0 would take (2 - 0.25) * 50 / 0.25 = 350
  // settled windows to drain.
  for (int i = 0; i < 50; ++i) monitor.Observe(300.0, 100.0);
  EXPECT_EQ(monitor.state(), GuardState::kDiverged);
  EXPECT_LE(monitor.cusum_high(), config.cusum_cap);
  int settled = 0;
  while (monitor.state() == GuardState::kDiverged && settled < 100) {
    monitor.Observe(100.0, 100.0);
    ++settled;
  }
  EXPECT_EQ(monitor.state(), GuardState::kHealthy);
  // Cap drain (~(cap - h)/k windows) + EWMA decay + rejoin hysteresis:
  // well under 30 windows at the defaults.
  EXPECT_LT(settled, 30);
}

TEST(ForecastMonitorTest, RejoinRequiresConsecutiveSettledWindows) {
  GuardConfig config = Enabled();
  config.diverge_windows = 2;
  config.rejoin_windows = 3;
  ForecastMonitor monitor(config);
  for (int i = 0; i < 3; ++i) monitor.Observe(300.0, 100.0);
  ASSERT_EQ(monitor.state(), GuardState::kDiverged);
  // Drain the trackers until individual windows stop alarming, then
  // interleave one alarming window: the settle streak must restart.
  while (monitor.ewma_abs_residual() > config.suspect_threshold ||
         monitor.cusum_high() > config.cusum_h) {
    monitor.Observe(100.0, 100.0);
  }
  EXPECT_EQ(monitor.state(), GuardState::kDiverged);  // Not enough yet.
  monitor.Observe(100.0, 100.0);
  monitor.Observe(400.0, 100.0);  // Alarm again: streak resets.
  EXPECT_EQ(monitor.state(), GuardState::kDiverged);
  int more = 0;
  while (monitor.state() == GuardState::kDiverged && more < 100) {
    monitor.Observe(100.0, 100.0);
    ++more;
  }
  EXPECT_EQ(monitor.state(), GuardState::kHealthy);
  EXPECT_GT(more, config.rejoin_windows - 1);
  EXPECT_EQ(monitor.rejoins(), 1);
  // The surge's CUSUM mass is dropped on rejoin: carrying it over
  // would re-trip on the first post-rejoin window.
  EXPECT_DOUBLE_EQ(monitor.cusum_high(), 0.0);
  EXPECT_DOUBLE_EQ(monitor.cusum_low(), 0.0);
}

TEST(ForecastMonitorTest, NearZeroForecastUsesRateFloor) {
  GuardConfig config = Enabled();
  config.min_rate = 10.0;
  ForecastMonitor monitor(config);
  // predicted = 0: without the floor the residual would be infinite.
  monitor.Observe(5.0, 0.0);
  EXPECT_DOUBLE_EQ(monitor.ewma_abs_residual(),
                   config.ewma_alpha * 0.5);
}

TEST(ForecastMonitorTest, MetricsTrackStateAndCounts) {
  obs::TelemetryBundle telemetry;
  ForecastMonitor monitor(Enabled());
  monitor.set_telemetry(telemetry.view());
  for (int i = 0; i < 3; ++i) monitor.Observe(300.0, 100.0);
  const std::string dump = telemetry.metrics.DumpJson();
  EXPECT_NE(dump.find("guard.windows"), std::string::npos);
  EXPECT_NE(dump.find("guard.divergences"), std::string::npos);
  EXPECT_NE(dump.find("guard.cusum_high"), std::string::npos);
}

}  // namespace
}  // namespace guard
}  // namespace pstore
