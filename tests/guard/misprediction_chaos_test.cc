#include <cmath>
#include <functional>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "../test_util.h"
#include "core/predictive_controller.h"
#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "fault/invariant_checker.h"
#include "migration/migration_executor.h"
#include "prediction/spar.h"
#include "sim/simulator.h"

/// \file misprediction_chaos_test.cc
/// 50-seed misprediction chaos sweep (DESIGN.md §16), sharded five
/// seeds per ctest unit. Each seed drives a SPAR-fed
/// PredictiveController with the forecast-divergence guard enabled
/// through a random control-plane fault mix — flash crowds the
/// forecast cannot see, trace dropouts that starve the controller of
/// fresh telemetry, plus crashes, restarts and migration faults — with
/// the InvariantChecker auditing every virtual second. The hard lines:
/// zero invariant violations (so no bucket is ever stranded or
/// double-owned by an aborted plan), plan-repair bookkeeping that
/// reconciles exactly, and guard counters that obey their own algebra.

namespace pstore {
namespace {

using testing_util::MakeKvDatabase;

struct SweepOutcome {
  int64_t flash_crowds = 0;
  int64_t trace_dropouts = 0;
  int64_t crashes = 0;
  int64_t divergences = 0;
  int64_t rejoins = 0;
  int64_t vetoes = 0;
  int64_t plan_repairs = 0;
  int64_t moves_truncated = 0;
  int64_t moves_aborted = 0;
  int64_t committed = 0;
  int64_t checks = 0;
  std::vector<InvariantViolation> violations;
};

SweepOutcome RunMispredictionChaos(uint64_t seed) {
  testing_util::KvDatabase db = MakeKvDatabase();
  Simulator sim;
  EngineConfig config = testing_util::SmallEngineConfig();
  config.initial_nodes = 3;
  ClusterEngine engine(&sim, db.catalog, db.registry, config);
  const int64_t rows = 200;
  for (int64_t k = 0; k < rows; ++k) {
    EXPECT_TRUE(engine.LoadRow(db.table, Row({Value(k), Value(k)})).ok());
  }

  MigrationOptions migration;
  migration.chunk_kb = 100;
  migration.rate_kbps = 500;  // Slow moves: repairs catch them mid-flight.
  migration.wire_kbps = 50000;
  migration.db_size_mb = 10;
  MigrationExecutor migrator(&engine, migration);

  // SPAR fitted on four minutes of seasonal history at 2 s slots; the
  // generator below offers the same base load, so only the injected
  // flash crowds (which the forecast never sees) cause divergence.
  SparConfig spar_config;
  spar_config.period = 30;
  spar_config.num_periods = 2;
  spar_config.num_recent = 5;
  SparPredictor spar(spar_config);
  std::vector<double> history;
  for (int32_t i = 0; i < 120; ++i) {
    history.push_back(200.0 + 20.0 * std::sin(2.0 * M_PI * i / 30.0));
  }
  ControllerConfig pc;
  pc.move_model.q = 100.0;
  pc.move_model.partitions_per_node = 2;
  pc.move_model.d_minutes = 0.6;
  pc.move_model.interval_minutes = 2.0 / 60.0;
  pc.q_hat = 125.0;
  pc.horizon_intervals = 8;
  pc.prediction_inflation = 0.15;
  pc.guard.enabled = true;
  EXPECT_TRUE(spar.Fit(history, pc.horizon_intervals).ok());
  PredictiveController controller(&engine, &migrator, &spar, pc);
  controller.SeedHistory(std::move(history));

  // The control-plane faults dominate the mix, with crashes, restarts
  // and migration faults riding along so repairs race real failures.
  ChaosConfig chaos;
  chaos.horizon = 60 * kSecond;
  chaos.num_events = 8;
  chaos.max_window = 15 * kSecond;
  chaos.max_stall = 2 * kSecond;
  chaos.flash_crowd_weight = 3.0;
  chaos.trace_dropout_weight = 2.0;
  Rng plan_rng(seed ^ 0x9e3779b97f4a7c15ULL);
  const FaultPlan plan = RandomFaultPlan(&plan_rng, chaos);

  FaultInjector injector(&engine, &migrator, seed);
  EXPECT_TRUE(injector.Arm(plan).ok());
  controller.set_trace_dropout_probe(
      [&injector]() { return injector.trace_dropout_active(); });
  controller.Start();

  InvariantChecker checker(&engine, &migrator);
  checker.set_expected_rows(rows);
  checker.StartPeriodic(kSecond);

  // Self-scheduling generator: 200 txn/s base, multiplied live by the
  // injector's offered load scale so flash-crowd windows genuinely
  // surge while the forecast path stays blind to them.
  const double seconds = 60.0;
  auto generate = std::make_shared<std::function<void(int64_t)>>();
  *generate = [&sim, &engine, &injector, &db, rows, seconds,
               self = generate.get()](int64_t i) {
    if (sim.Now() >= SecondsToDuration(seconds)) return;
    TxnRequest req;
    req.proc = db.get;
    req.key = (i * 48271) % rows;
    engine.Submit(req);
    const double rate = 200.0 * injector.offered_load_scale();
    const auto gap = static_cast<SimDuration>(1e6 / rate);
    sim.Schedule(gap < 1 ? 1 : gap, [self, i]() { (*self)(i + 1); });
  };
  sim.Schedule(0, [self = generate.get()]() { (*self)(0); });

  sim.RunUntil(SecondsToDuration(seconds));
  checker.Stop();
  controller.Stop();
  sim.RunUntil(SecondsToDuration(seconds + 20));
  (void)checker.Check();

  SweepOutcome out;
  out.flash_crowds = injector.flash_crowds();
  out.trace_dropouts = injector.trace_dropouts();
  out.crashes = injector.crashes();
  out.divergences = controller.guard_monitor()->divergences();
  out.rejoins = controller.guard_monitor()->rejoins();
  out.vetoes = controller.guard_vetoes();
  out.plan_repairs = controller.plan_repairs();
  out.moves_truncated = migrator.moves_truncated();
  out.moves_aborted = migrator.moves_aborted();
  out.committed = engine.txns_committed();
  out.checks = checker.checks_run();
  out.violations = checker.violations();
  return out;
}

constexpr uint64_t kSeedsPerShard = 5;

class MispredictionSeedShard : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MispredictionSeedShard, GuardedControlSurvivesMispredictionChaos) {
  const uint64_t first = GetParam();
  for (uint64_t seed = first; seed < first + kSeedsPerShard; ++seed) {
    const SweepOutcome out = RunMispredictionChaos(seed);
    // The hard line: every audit clean — ownership single and live,
    // no orphan rows, and the plan-repair section's proof that no
    // bucket was stranded or double-owned by an aborted plan.
    EXPECT_TRUE(out.violations.empty())
        << "seed " << seed << ": " << out.violations.size()
        << " violation(s); first: " << out.violations[0].ToString();
    EXPECT_GT(out.checks, 0) << "seed " << seed;
    EXPECT_GT(out.committed, 0) << "seed " << seed;
    // Repair bookkeeping reconciles: the controller's repairs are the
    // only source of truncation, and truncations abort.
    EXPECT_EQ(out.plan_repairs, out.moves_truncated) << "seed " << seed;
    EXPECT_LE(out.moves_truncated, out.moves_aborted) << "seed " << seed;
    // Guard algebra: rejoins never outnumber divergences, and each
    // divergence vetoes at least the window that confirmed it.
    EXPECT_LE(out.rejoins, out.divergences) << "seed " << seed;
    EXPECT_GE(out.vetoes, out.divergences) << "seed " << seed;
    // With no flash crowd drawn, the forecast matches the offered load
    // and the guard must never fire (dropouts alone feed it stale but
    // *accurate* samples of the steady base).
    if (out.flash_crowds == 0 && out.crashes == 0) {
      EXPECT_EQ(out.divergences, 0) << "seed " << seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(FiftySeeds, MispredictionSeedShard,
                         ::testing::Range(uint64_t{1}, uint64_t{51},
                                          kSeedsPerShard));

}  // namespace
}  // namespace pstore
