#include "guard/hybrid_arbiter.h"

#include "gtest/gtest.h"

namespace pstore {
namespace guard {
namespace {

GuardConfig Enabled() {
  GuardConfig config;
  config.enabled = true;
  return config;
}

ArbiterInputs Diverged(int32_t active, int32_t needed, int32_t floor,
                       int32_t max) {
  ArbiterInputs in;
  in.state = GuardState::kDiverged;
  in.active_nodes = active;
  in.needed_nodes = needed;
  in.min_floor = floor;
  in.max_nodes = max;
  return in;
}

TEST(HybridArbiterTest, ActionNamesAreDistinct) {
  EXPECT_STREQ(ArbiterActionName(ArbiterAction::kAllowPredictive),
               "allow-predictive");
  EXPECT_STREQ(ArbiterActionName(ArbiterAction::kReactiveControl),
               "reactive-control");
  EXPECT_STREQ(ArbiterActionName(ArbiterAction::kRepairInFlight),
               "repair-in-flight");
}

TEST(HybridArbiterTest, HealthyAndSuspectAllowPredictive) {
  HybridArbiter arbiter(Enabled());
  ArbiterInputs in;
  in.state = GuardState::kHealthy;
  EXPECT_EQ(arbiter.Decide(in).action, ArbiterAction::kAllowPredictive);
  // Suspect is hysteresis, not a ruling: prediction keeps control
  // until the divergence is confirmed.
  in.state = GuardState::kSuspect;
  EXPECT_EQ(arbiter.Decide(in).action, ArbiterAction::kAllowPredictive);
}

TEST(HybridArbiterTest, DivergedTracksMeasuredNeed) {
  HybridArbiter arbiter(Enabled());
  const ArbiterRuling ruling = arbiter.Decide(Diverged(3, 6, 1, 8));
  EXPECT_EQ(ruling.action, ArbiterAction::kReactiveControl);
  EXPECT_EQ(ruling.reactive_target, 6);
}

TEST(HybridArbiterTest, DivergenceNeverShrinksTheCluster) {
  HybridArbiter arbiter(Enabled());
  // Measured need below the current size: while diverged the arbiter
  // holds capacity — the measurements condemning the forecast are not
  // trusted enough to release machines either.
  const ArbiterRuling ruling = arbiter.Decide(Diverged(5, 2, 1, 8));
  EXPECT_EQ(ruling.action, ArbiterAction::kReactiveControl);
  EXPECT_EQ(ruling.reactive_target, 5);
}

TEST(HybridArbiterTest, ReactiveTargetRespectsFloorAndCeiling) {
  HybridArbiter arbiter(Enabled());
  // k-aware floor binds even when need and active sit below it.
  EXPECT_EQ(arbiter.Decide(Diverged(2, 1, 3, 8)).reactive_target, 3);
  // max_nodes caps a need the cluster cannot provision.
  EXPECT_EQ(arbiter.Decide(Diverged(3, 20, 1, 8)).reactive_target, 8);
}

TEST(HybridArbiterTest, UndersizedInFlightMoveIsRepaired) {
  HybridArbiter arbiter(Enabled());
  ArbiterInputs in = Diverged(3, 6, 1, 8);
  in.move_in_flight = true;
  in.move_target = 2;  // A stale-forecast scale-in, now exactly wrong.
  const ArbiterRuling ruling = arbiter.Decide(in);
  EXPECT_EQ(ruling.action, ArbiterAction::kRepairInFlight);
  EXPECT_EQ(ruling.reactive_target, 6);
}

TEST(HybridArbiterTest, AdequateInFlightMoveIsLeftAlone) {
  HybridArbiter arbiter(Enabled());
  ArbiterInputs in = Diverged(3, 6, 1, 8);
  in.move_in_flight = true;
  in.move_target = 7;  // Already heading past the reactive target.
  const ArbiterRuling ruling = arbiter.Decide(in);
  EXPECT_EQ(ruling.action, ArbiterAction::kReactiveControl);
  EXPECT_EQ(ruling.reactive_target, 6);
}

TEST(HybridArbiterTest, InFlightMoveIgnoredWhileHealthy) {
  HybridArbiter arbiter(Enabled());
  ArbiterInputs in;
  in.state = GuardState::kHealthy;
  in.move_in_flight = true;
  in.move_target = 2;
  EXPECT_EQ(arbiter.Decide(in).action, ArbiterAction::kAllowPredictive);
}

}  // namespace
}  // namespace guard
}  // namespace pstore
