#include "guard/guard_config.h"

#include <functional>
#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace pstore {
namespace guard {
namespace {

TEST(GuardConfigTest, DefaultsAreValidAndDisabled) {
  GuardConfig config;
  EXPECT_FALSE(config.enabled);
  EXPECT_TRUE(config.Validate().ok());
}

TEST(GuardConfigTest, ValidateRejectsBadKnobsTableDriven) {
  struct Case {
    const char* what;
    std::function<void(GuardConfig*)> mutate;
    const char* error;
  };
  const std::vector<Case> cases = {
      {"zero ewma alpha", [](GuardConfig* c) { c->ewma_alpha = 0.0; },
       "ewma_alpha outside (0, 1]"},
      {"alpha above one", [](GuardConfig* c) { c->ewma_alpha = 1.5; },
       "ewma_alpha outside (0, 1]"},
      {"negative cusum k", [](GuardConfig* c) { c->cusum_k = -0.1; },
       "cusum_k < 0"},
      {"zero cusum h", [](GuardConfig* c) { c->cusum_h = 0.0; },
       "cusum_h <= 0"},
      {"cap at threshold",
       [](GuardConfig* c) { c->cusum_cap = c->cusum_h; },
       "cusum_cap must be > cusum_h"},
      {"cap below threshold",
       [](GuardConfig* c) { c->cusum_cap = 0.5; },
       "cusum_cap must be > cusum_h"},
      {"zero suspect threshold",
       [](GuardConfig* c) { c->suspect_threshold = 0.0; },
       "suspect_threshold <= 0"},
      {"zero diverge windows",
       [](GuardConfig* c) { c->diverge_windows = 0; },
       "diverge_windows < 1"},
      {"zero rejoin windows",
       [](GuardConfig* c) { c->rejoin_windows = 0; },
       "rejoin_windows < 1"},
      {"zero min rate", [](GuardConfig* c) { c->min_rate = 0.0; },
       "min_rate <= 0"},
  };
  for (const Case& c : cases) {
    GuardConfig config;
    config.enabled = true;
    c.mutate(&config);
    const Status st = config.Validate();
    EXPECT_FALSE(st.ok()) << c.what;
    EXPECT_NE(st.ToString().find(c.error), std::string::npos)
        << c.what << ": " << st.ToString();
  }
}

}  // namespace
}  // namespace guard
}  // namespace pstore
