#include "storage/value.h"

#include <gtest/gtest.h>

namespace pstore {
namespace {

TEST(ValueTest, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_FALSE(v.is_int64());
  EXPECT_EQ(v.ToString(), "NULL");
}

TEST(ValueTest, Int64) {
  Value v(int64_t{42});
  EXPECT_TRUE(v.is_int64());
  EXPECT_EQ(v.as_int64(), 42);
  EXPECT_EQ(v.ToString(), "42");
}

TEST(ValueTest, Double) {
  Value v(2.5);
  EXPECT_TRUE(v.is_double());
  EXPECT_DOUBLE_EQ(v.as_double(), 2.5);
  EXPECT_EQ(v.ToString(), "2.5");
}

TEST(ValueTest, StringAndCString) {
  Value a(std::string("hi"));
  Value b("hi");
  EXPECT_TRUE(a.is_string());
  EXPECT_TRUE(b.is_string());
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.ToString(), "'hi'");
}

TEST(ValueTest, Equality) {
  EXPECT_EQ(Value(int64_t{1}), Value(int64_t{1}));
  EXPECT_FALSE(Value(int64_t{1}) == Value(int64_t{2}));
  EXPECT_FALSE(Value(int64_t{1}) == Value(1.0));
  EXPECT_EQ(Value(), Value());
}

TEST(ValueTest, ByteSizeScalesWithStrings) {
  EXPECT_EQ(Value().ByteSize(), 1u);
  EXPECT_EQ(Value(int64_t{1}).ByteSize(), 8u);
  EXPECT_EQ(Value(1.0).ByteSize(), 8u);
  EXPECT_GT(Value(std::string(100, 'x')).ByteSize(), 100u);
}

TEST(RowTest, BasicAccess) {
  Row r({Value(int64_t{1}), Value("a")});
  EXPECT_EQ(r.size(), 2u);
  EXPECT_EQ(r.at(0).as_int64(), 1);
  EXPECT_EQ(r.at(1).as_string(), "a");
}

TEST(RowTest, SetGrowsRow) {
  Row r;
  r.Set(2, Value(int64_t{9}));
  EXPECT_EQ(r.size(), 3u);
  EXPECT_TRUE(r.at(0).is_null());
  EXPECT_EQ(r.at(2).as_int64(), 9);
}

TEST(RowTest, Equality) {
  Row a({Value(int64_t{1}), Value("x")});
  Row b({Value(int64_t{1}), Value("x")});
  Row c({Value(int64_t{2}), Value("x")});
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
}

TEST(RowTest, ToString) {
  Row r({Value(int64_t{1}), Value("a"), Value()});
  EXPECT_EQ(r.ToString(), "(1, 'a', NULL)");
}

TEST(RowTest, ByteSizeIncludesValues) {
  Row small({Value(int64_t{1})});
  Row big({Value(int64_t{1}), Value(std::string(1000, 'y'))});
  EXPECT_GT(big.ByteSize(), small.ByteSize() + 900);
}

TEST(ColumnTypeTest, Names) {
  EXPECT_STREQ(ColumnTypeToString(ColumnType::kInt64), "BIGINT");
  EXPECT_STREQ(ColumnTypeToString(ColumnType::kDouble), "DOUBLE");
  EXPECT_STREQ(ColumnTypeToString(ColumnType::kString), "VARCHAR");
}

}  // namespace
}  // namespace pstore
