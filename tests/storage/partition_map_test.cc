#include "storage/partition_map.h"

#include <algorithm>
#include <numeric>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace pstore {
namespace {

TEST(PartitionMapTest, RoundRobinInitialLayout) {
  PartitionMap map(12, 3);
  const auto counts = map.BucketCounts();
  ASSERT_EQ(counts.size(), 3u);
  for (int32_t c : counts) EXPECT_EQ(c, 4);
  EXPECT_EQ(map.PartitionOfBucket(0), 0);
  EXPECT_EQ(map.PartitionOfBucket(1), 1);
  EXPECT_EQ(map.PartitionOfBucket(3), 0);
}

TEST(PartitionMapTest, KeyRoutingConsistent) {
  PartitionMap map(64, 4);
  for (int64_t key = 0; key < 100; ++key) {
    const BucketId b = KeyToBucket(key, 64);
    EXPECT_EQ(map.PartitionOfKey(key), map.PartitionOfBucket(b));
  }
}

TEST(PartitionMapTest, BucketsOfPartition) {
  PartitionMap map(10, 2);
  const auto p0 = map.BucketsOfPartition(0);
  const auto p1 = map.BucketsOfPartition(1);
  EXPECT_EQ(p0.size(), 5u);
  EXPECT_EQ(p1.size(), 5u);
  std::set<BucketId> all(p0.begin(), p0.end());
  all.insert(p1.begin(), p1.end());
  EXPECT_EQ(all.size(), 10u);
}

TEST(PartitionMapTest, AssignMovesBucket) {
  PartitionMap map(8, 2);
  map.Assign(0, 1);
  EXPECT_EQ(map.PartitionOfBucket(0), 1);
  EXPECT_EQ(map.BucketCounts()[0], 3);
  EXPECT_EQ(map.BucketCounts()[1], 5);
}

TEST(PartitionMapTest, RebalancedScaleOutBalances) {
  PartitionMap map(12, 2);
  PartitionMap target = map.Rebalanced(4);
  const auto counts = target.BucketCounts();
  ASSERT_EQ(counts.size(), 4u);
  for (int32_t c : counts) EXPECT_EQ(c, 3);
}

TEST(PartitionMapTest, RebalancedScaleOutOnlyMovesToNewPartitions) {
  PartitionMap map(12, 2);
  PartitionMap target = map.Rebalanced(4);
  for (const auto& move : map.DiffTo(target)) {
    EXPECT_LT(move.from, 2);   // senders are original partitions
    EXPECT_GE(move.to, 0);
  }
}

TEST(PartitionMapTest, RebalancedScaleInDrainsRemovedPartitions) {
  PartitionMap map(12, 4);
  PartitionMap target = map.Rebalanced(2);
  const auto counts = target.BucketCounts();
  EXPECT_EQ(counts[0], 6);
  EXPECT_EQ(counts[1], 6);
  for (const auto& move : map.DiffTo(target)) {
    EXPECT_GE(move.from, 2);  // only removed partitions send
    EXPECT_LT(move.to, 2);
  }
}

TEST(PartitionMapTest, RebalancedMovesMinimalOnScaleOut) {
  // Moving 2 -> 4 over 12 buckets should move exactly 6 buckets.
  PartitionMap map(12, 2);
  EXPECT_EQ(map.DiffTo(map.Rebalanced(4)).size(), 6u);
}

TEST(PartitionMapTest, DiffToSelfIsEmpty) {
  PartitionMap map(16, 4);
  EXPECT_TRUE(map.DiffTo(map).empty());
}

TEST(PartitionMapTest, VersionTracking) {
  PartitionMap map(4, 2);
  EXPECT_EQ(map.version(), 0);
  map.set_version(7);
  EXPECT_EQ(map.version(), 7);
}

TEST(PartitionMapTest, ToStringMentionsCounts) {
  PartitionMap map(4, 2);
  const std::string s = map.ToString();
  EXPECT_NE(s.find("p0=2"), std::string::npos);
  EXPECT_NE(s.find("p1=2"), std::string::npos);
}

// Property sweep: Rebalanced always yields floor/ceil shares, and the
// diff size equals the theoretical minimum.
class RebalanceSweepTest
    : public ::testing::TestWithParam<std::tuple<int32_t, int32_t>> {};

TEST_P(RebalanceSweepTest, BalancedAndMinimal) {
  const auto [from, to] = GetParam();
  const int32_t buckets = 1024;
  PartitionMap map(buckets, from);
  PartitionMap target = map.Rebalanced(to);

  const auto counts = target.BucketCounts();
  const int32_t base = buckets / to;
  int32_t total = 0;
  ASSERT_GE(static_cast<int32_t>(counts.size()), to);
  for (int32_t p = 0; p < to; ++p) {
    EXPECT_GE(counts[static_cast<size_t>(p)], base);
    EXPECT_LE(counts[static_cast<size_t>(p)], base + 1);
    total += counts[static_cast<size_t>(p)];
  }
  EXPECT_EQ(total, buckets);

  // Minimal moves: sum over partitions of max(0, have - quota).
  const auto before = map.BucketCounts();
  int64_t minimal = 0;
  for (size_t p = 0; p < before.size(); ++p) {
    const int64_t quota =
        static_cast<int32_t>(p) < to
            ? counts[p]  // its final share
            : 0;
    minimal += std::max<int64_t>(0, before[p] - quota);
  }
  EXPECT_EQ(static_cast<int64_t>(map.DiffTo(target).size()), minimal);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, RebalanceSweepTest,
    ::testing::Values(std::make_tuple(1, 2), std::make_tuple(2, 4),
                      std::make_tuple(3, 14), std::make_tuple(14, 3),
                      std::make_tuple(3, 9), std::make_tuple(9, 3),
                      std::make_tuple(3, 5), std::make_tuple(5, 3),
                      std::make_tuple(7, 8), std::make_tuple(10, 1),
                      std::make_tuple(6, 6), std::make_tuple(5, 60)));

// --- Incremental-count equivalence ------------------------------------
//
// Assign maintains per-partition counts and num_partitions incrementally
// (O(1) per call instead of an O(num_buckets) rescan). These tests pin
// the incremental state to a brute-force recompute from the assignment
// under randomized Assign/Rebalanced churn.

/// Reference implementation: what BucketCounts/num_partitions meant
/// before the incremental bookkeeping existed.
std::vector<int32_t> ReferenceCounts(const PartitionMap& map) {
  PartitionId max_p = 0;
  for (BucketId b = 0; b < map.num_buckets(); ++b) {
    max_p = std::max(max_p, map.PartitionOfBucket(b));
  }
  std::vector<int32_t> counts(static_cast<size_t>(max_p) + 1, 0);
  for (BucketId b = 0; b < map.num_buckets(); ++b) {
    ++counts[static_cast<size_t>(map.PartitionOfBucket(b))];
  }
  return counts;
}

void ExpectCountsMatchReference(const PartitionMap& map) {
  const std::vector<int32_t> reference = ReferenceCounts(map);
  EXPECT_EQ(map.BucketCounts(), reference);
}

TEST(PartitionMapEquivalenceTest, RandomAssignChurnMatchesReference) {
  for (const uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL, 5ULL}) {
    Rng rng(seed);
    const int32_t buckets = 64 + static_cast<int32_t>(rng.NextBounded(192));
    const int32_t partitions = 1 + static_cast<int32_t>(rng.NextBounded(12));
    PartitionMap map(buckets, partitions);
    ExpectCountsMatchReference(map);
    for (int32_t step = 0; step < 500; ++step) {
      const BucketId b =
          static_cast<BucketId>(rng.NextBounded(static_cast<uint64_t>(
              buckets)));
      const PartitionId p = static_cast<PartitionId>(
          rng.NextBounded(static_cast<uint64_t>(partitions + 4)));
      map.Assign(b, p);
      // num_partitions folds to max assigned partition + 1 on Assign.
      PartitionId max_p = 0;
      for (BucketId bb = 0; bb < map.num_buckets(); ++bb) {
        max_p = std::max(max_p, map.PartitionOfBucket(bb));
      }
      ASSERT_EQ(map.num_partitions(), max_p + 1)
          << "seed " << seed << " step " << step;
      if (step % 25 == 0) ExpectCountsMatchReference(map);
    }
    ExpectCountsMatchReference(map);
  }
}

TEST(PartitionMapEquivalenceTest, InterleavedRebalanceMatchesReference) {
  for (const uint64_t seed : {7ULL, 8ULL, 9ULL}) {
    Rng rng(seed);
    PartitionMap map(256, 4);
    for (int32_t round = 0; round < 20; ++round) {
      // A few random reassignments (migration/failover churn)...
      for (int32_t i = 0; i < 10; ++i) {
        map.Assign(static_cast<BucketId>(rng.NextBounded(256)),
                   static_cast<PartitionId>(rng.NextBounded(10)));
      }
      ExpectCountsMatchReference(map);
      // ...then a rebalance to a random target size.
      const int32_t target = 1 + static_cast<int32_t>(rng.NextBounded(12));
      map = map.Rebalanced(target);
      ExpectCountsMatchReference(map);
      ASSERT_EQ(map.num_partitions(), target);
      // The rebalanced counts must be the balanced quota split.
      const std::vector<int32_t> counts = map.BucketCounts();
      const int32_t base = 256 / target;
      const int32_t extra = 256 % target;
      for (int32_t p = 0; p < target; ++p) {
        EXPECT_EQ(counts[static_cast<size_t>(p)], base + (p < extra ? 1 : 0))
            << "seed " << seed << " round " << round << " partition " << p;
      }
    }
  }
}

TEST(PartitionMapEquivalenceTest, AssignShrinksTrailingEmptyPartitions) {
  PartitionMap map(16, 2);
  map.Assign(0, 9);  // grow: partition 9 now exists
  EXPECT_EQ(map.num_partitions(), 10);
  ExpectCountsMatchReference(map);
  map.Assign(0, 1);  // partition 9 empties; trailing zeros must fold
  EXPECT_EQ(map.num_partitions(), 2);
  EXPECT_EQ(map.BucketCounts().size(), 2u);
  ExpectCountsMatchReference(map);
}

}  // namespace
}  // namespace pstore
