#include "storage/schema.h"

#include <gtest/gtest.h>

namespace pstore {
namespace {

Schema TestSchema() {
  return Schema("T",
                {{"id", ColumnType::kInt64},
                 {"amount", ColumnType::kDouble},
                 {"note", ColumnType::kString}},
                0);
}

TEST(SchemaTest, Basics) {
  Schema s = TestSchema();
  EXPECT_EQ(s.name(), "T");
  EXPECT_EQ(s.num_columns(), 3u);
  EXPECT_EQ(s.partition_key_column(), 0u);
}

TEST(SchemaTest, ColumnIndex) {
  Schema s = TestSchema();
  EXPECT_EQ(s.ColumnIndex("id"), 0);
  EXPECT_EQ(s.ColumnIndex("note"), 2);
  EXPECT_EQ(s.ColumnIndex("missing"), -1);
}

TEST(SchemaTest, ValidateAcceptsMatchingRow) {
  Schema s = TestSchema();
  EXPECT_TRUE(s.Validate(Row({Value(int64_t{1}), Value(2.0), Value("x")}))
                  .ok());
}

TEST(SchemaTest, ValidateAcceptsNullsInNonKeyColumns) {
  Schema s = TestSchema();
  EXPECT_TRUE(s.Validate(Row({Value(int64_t{1}), Value(), Value()})).ok());
}

TEST(SchemaTest, ValidateRejectsNullKey) {
  Schema s = TestSchema();
  EXPECT_TRUE(s.Validate(Row({Value(), Value(2.0), Value("x")}))
                  .IsInvalidArgument());
}

TEST(SchemaTest, ValidateRejectsWrongArity) {
  Schema s = TestSchema();
  EXPECT_TRUE(s.Validate(Row({Value(int64_t{1})})).IsInvalidArgument());
}

TEST(SchemaTest, ValidateRejectsWrongTypes) {
  Schema s = TestSchema();
  EXPECT_TRUE(s.Validate(Row({Value(int64_t{1}), Value("no"), Value("x")}))
                  .IsInvalidArgument());
  EXPECT_TRUE(s.Validate(Row({Value(1.0), Value(2.0), Value("x")}))
                  .IsInvalidArgument());
}

TEST(SchemaTest, PartitionKeyExtraction) {
  Schema s = TestSchema();
  EXPECT_EQ(s.PartitionKey(Row({Value(int64_t{77}), Value(1.0), Value("")})),
            77);
}

TEST(CatalogTest, AddAndLookup) {
  Catalog c;
  auto id1 = c.AddTable(TestSchema());
  ASSERT_TRUE(id1.ok());
  auto id2 = c.AddTable(Schema("U", {{"k", ColumnType::kInt64}}, 0));
  ASSERT_TRUE(id2.ok());
  EXPECT_NE(*id1, *id2);
  EXPECT_EQ(c.num_tables(), 2u);
  EXPECT_EQ(c.GetSchema(*id1).name(), "T");
  auto found = c.TableIdByName("U");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, *id2);
}

TEST(CatalogTest, DuplicateNameRejected) {
  Catalog c;
  ASSERT_TRUE(c.AddTable(TestSchema()).ok());
  EXPECT_TRUE(c.AddTable(TestSchema()).status().IsAlreadyExists());
}

TEST(CatalogTest, MissingTableNotFound) {
  Catalog c;
  EXPECT_TRUE(c.TableIdByName("nope").status().IsNotFound());
}

}  // namespace
}  // namespace pstore
