#include "storage/fragment.h"

#include <gtest/gtest.h>

namespace pstore {
namespace {

class FragmentTest : public ::testing::Test {
 protected:
  FragmentTest() {
    auto id = catalog_.AddTable(Schema(
        "T", {{"id", ColumnType::kInt64}, {"payload", ColumnType::kString}},
        0));
    table_ = *id;
    auto id2 = catalog_.AddTable(
        Schema("U", {{"id", ColumnType::kInt64}}, 0));
    table2_ = *id2;
  }

  Row MakeRow(int64_t key, const std::string& payload = "p") {
    return Row({Value(key), Value(payload)});
  }

  Catalog catalog_;
  TableId table_;
  TableId table2_;
};

TEST_F(FragmentTest, InsertAndGet) {
  StorageFragment frag(&catalog_, 16);
  ASSERT_TRUE(frag.Insert(table_, MakeRow(1, "a")).ok());
  auto row = frag.Get(table_, 1);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row->at(1).as_string(), "a");
  EXPECT_TRUE(frag.Contains(table_, 1));
  EXPECT_FALSE(frag.Contains(table_, 2));
}

TEST_F(FragmentTest, InsertDuplicateFails) {
  StorageFragment frag(&catalog_, 16);
  ASSERT_TRUE(frag.Insert(table_, MakeRow(1)).ok());
  EXPECT_TRUE(frag.Insert(table_, MakeRow(1)).IsAlreadyExists());
  EXPECT_EQ(frag.RowCount(table_), 1);
}

TEST_F(FragmentTest, InsertValidatesSchema) {
  StorageFragment frag(&catalog_, 16);
  EXPECT_TRUE(frag.Insert(table_, Row({Value(int64_t{1})}))
                  .IsInvalidArgument());
}

TEST_F(FragmentTest, UpsertInsertsAndReplaces) {
  StorageFragment frag(&catalog_, 16);
  ASSERT_TRUE(frag.Upsert(table_, MakeRow(5, "v1")).ok());
  ASSERT_TRUE(frag.Upsert(table_, MakeRow(5, "v2")).ok());
  EXPECT_EQ(frag.RowCount(table_), 1);
  EXPECT_EQ(frag.Get(table_, 5)->at(1).as_string(), "v2");
}

TEST_F(FragmentTest, DeleteRemoves) {
  StorageFragment frag(&catalog_, 16);
  ASSERT_TRUE(frag.Insert(table_, MakeRow(3)).ok());
  ASSERT_TRUE(frag.Delete(table_, 3).ok());
  EXPECT_FALSE(frag.Contains(table_, 3));
  EXPECT_TRUE(frag.Delete(table_, 3).IsNotFound());
  EXPECT_EQ(frag.RowCount(table_), 0);
}

TEST_F(FragmentTest, GetMissingIsNotFound) {
  StorageFragment frag(&catalog_, 16);
  EXPECT_TRUE(frag.Get(table_, 99).status().IsNotFound());
}

TEST_F(FragmentTest, ByteAccountingTracksMutations) {
  StorageFragment frag(&catalog_, 16);
  EXPECT_EQ(frag.TotalBytes(), 0);
  ASSERT_TRUE(frag.Insert(table_, MakeRow(1, std::string(100, 'x'))).ok());
  const int64_t after_insert = frag.TotalBytes();
  EXPECT_GT(after_insert, 100);
  ASSERT_TRUE(frag.Upsert(table_, MakeRow(1, std::string(200, 'x'))).ok());
  EXPECT_GT(frag.TotalBytes(), after_insert);
  ASSERT_TRUE(frag.Delete(table_, 1).ok());
  EXPECT_EQ(frag.TotalBytes(), 0);
}

TEST_F(FragmentTest, BucketBytesSumsToTotal) {
  StorageFragment frag(&catalog_, 8);
  for (int64_t k = 0; k < 100; ++k) {
    ASSERT_TRUE(frag.Insert(table_, MakeRow(k)).ok());
  }
  int64_t sum = 0;
  for (BucketId b = 0; b < 8; ++b) sum += frag.BucketBytes(b);
  EXPECT_EQ(sum, frag.TotalBytes());
}

TEST_F(FragmentTest, RowCountsPerTable) {
  StorageFragment frag(&catalog_, 8);
  ASSERT_TRUE(frag.Insert(table_, MakeRow(1)).ok());
  ASSERT_TRUE(frag.Insert(table2_, Row({Value(int64_t{1})})).ok());
  ASSERT_TRUE(frag.Insert(table2_, Row({Value(int64_t{2})})).ok());
  EXPECT_EQ(frag.RowCount(table_), 1);
  EXPECT_EQ(frag.RowCount(table2_), 2);
  EXPECT_EQ(frag.TotalRowCount(), 3);
}

TEST_F(FragmentTest, ExtractInstallMovesAllTables) {
  StorageFragment src(&catalog_, 4);
  StorageFragment dst(&catalog_, 4);
  // Find keys landing in bucket 2.
  std::vector<int64_t> keys;
  for (int64_t k = 0; keys.size() < 10; ++k) {
    if (KeyToBucket(k, 4) == 2) keys.push_back(k);
  }
  for (int64_t k : keys) {
    ASSERT_TRUE(src.Insert(table_, MakeRow(k)).ok());
    ASSERT_TRUE(src.Insert(table2_, Row({Value(k)})).ok());
  }
  const int64_t bytes_before = src.BucketBytes(2);
  auto data = src.ExtractBucket(2);
  EXPECT_EQ(src.TotalRowCount(), 0);
  EXPECT_EQ(src.BucketBytes(2), 0);
  ASSERT_TRUE(dst.InstallBucket(2, std::move(data)).ok());
  EXPECT_EQ(dst.TotalRowCount(), 20);
  EXPECT_EQ(dst.BucketBytes(2), bytes_before);
  for (int64_t k : keys) {
    EXPECT_TRUE(dst.Contains(table_, k));
    EXPECT_TRUE(dst.Contains(table2_, k));
  }
}

TEST_F(FragmentTest, ExtractEmptyBucketIsEmpty) {
  StorageFragment frag(&catalog_, 4);
  EXPECT_TRUE(frag.ExtractBucket(1).empty());
}

TEST_F(FragmentTest, InstallCollisionIsInternalError) {
  StorageFragment a(&catalog_, 4);
  StorageFragment b(&catalog_, 4);
  int64_t key = 0;
  while (KeyToBucket(key, 4) != 1) ++key;
  ASSERT_TRUE(a.Insert(table_, MakeRow(key)).ok());
  ASSERT_TRUE(b.Insert(table_, MakeRow(key)).ok());
  auto data = a.ExtractBucket(1);
  EXPECT_TRUE(b.InstallBucket(1, std::move(data)).IsInternal());
}

TEST_F(FragmentTest, BucketKeysListsBucketContents) {
  StorageFragment frag(&catalog_, 4);
  std::vector<int64_t> expected;
  for (int64_t k = 0; k < 50; ++k) {
    ASSERT_TRUE(frag.Insert(table_, MakeRow(k)).ok());
    if (KeyToBucket(k, 4) == 0) expected.push_back(k);
  }
  auto keys = frag.BucketKeys(table_, 0);
  EXPECT_EQ(keys.size(), expected.size());
}

}  // namespace
}  // namespace pstore
