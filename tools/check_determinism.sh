#!/usr/bin/env bash
# Runs the chaos example twice with the same seed and verifies the
# telemetry artifacts (metrics JSON/CSV, span trace, event stream, fault
# trace) are byte-identical — the repo's same-seed determinism contract.
# A second pair of runs repeats the check under --spike (overload
# control: load spikes, shedding, breakers, retries), a third under
# --recovery (replication: promotion failover, replica lag, checkpoint +
# log-replay restarts, re-replication), a fourth under --partition
# (simulated network: partitions, message loss/duplication/delay,
# lease fencing, retransmission), a fifth under
# --spike --trace-sample=0.1 (transaction lifecycle tracing: sampled
# txn traces and the Chrome trace_event JSON must also be
# byte-identical across same-seed runs), and a sixth under
# --corruption --trace-sample=0.1 (content-modeled durability: disk
# corruption, torn writes, disk stalls, scrubbing and repair -- plus
# sampled traces -- must replay byte-identically too).
#
# Usage: [CHAOS_RUN=path/to/chaos_run] [SEED=N] [EVENTS=N] \
#          tools/check_determinism.sh
# Exits 0 on byte-identical runs, 1 otherwise.
set -u

CHAOS_RUN="${CHAOS_RUN:-build/examples/chaos_run}"
SEED="${SEED:-42}"
EVENTS="${EVENTS:-10}"

if [ ! -x "$CHAOS_RUN" ]; then
  echo "check_determinism: $CHAOS_RUN not found or not executable" >&2
  echo "build first: cmake --build build" >&2
  exit 1
fi

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

status=0
for run in a b c d e f g h i j k l; do
  flags=""
  { [ "$run" = c ] || [ "$run" = d ]; } && flags="--spike"
  { [ "$run" = e ] || [ "$run" = f ]; } && flags="--recovery"
  { [ "$run" = g ] || [ "$run" = h ]; } && flags="--partition"
  { [ "$run" = i ] || [ "$run" = j ]; } && flags="--spike --trace-sample=0.1"
  { [ "$run" = k ] || [ "$run" = l ]; } && flags="--corruption --trace-sample=0.1"
  if ! "$CHAOS_RUN" --seed="$SEED" --events="$EVENTS" $flags \
       --out="$workdir/$run" > "$workdir/$run.stdout" 2>&1; then
    echo "check_determinism: run $run FAILED; tail of output:" >&2
    tail -20 "$workdir/$run.stdout" >&2
    status=1
  fi
done
[ "$status" -ne 0 ] && exit "$status"

for pair in "a b plain" "c d spike" "e f recovery" "g h partition" \
            "i j spike+trace" "k l corruption+trace"; do
  set -- $pair
  if diff -r "$workdir/$1" "$workdir/$2" > "$workdir/diff.out" 2>&1; then
    files=$(ls "$workdir/$1" | wc -l | tr -d ' ')
    echo "check_determinism: OK — $files artifacts byte-identical" \
         "(seed $SEED, $EVENTS events, $3)"
  else
    echo "check_determinism: MISMATCH between same-seed $3 runs:" >&2
    cat "$workdir/diff.out" >&2
    status=1
  fi
done
exit "$status"
