#!/usr/bin/env bash
# Runs the chaos example twice with the same seed and verifies the
# telemetry artifacts (metrics JSON/CSV, span trace, event stream, fault
# trace) are byte-identical — the repo's same-seed determinism contract.
#
# Usage: [CHAOS_RUN=path/to/chaos_run] [SEED=N] [EVENTS=N] \
#          tools/check_determinism.sh
# Exits 0 on byte-identical runs, 1 otherwise.
set -u

CHAOS_RUN="${CHAOS_RUN:-build/examples/chaos_run}"
SEED="${SEED:-42}"
EVENTS="${EVENTS:-10}"

if [ ! -x "$CHAOS_RUN" ]; then
  echo "check_determinism: $CHAOS_RUN not found or not executable" >&2
  echo "build first: cmake --build build" >&2
  exit 1
fi

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

status=0
for run in a b; do
  if ! "$CHAOS_RUN" --seed="$SEED" --events="$EVENTS" \
       --out="$workdir/$run" > "$workdir/$run.stdout" 2>&1; then
    echo "check_determinism: run $run FAILED; tail of output:" >&2
    tail -20 "$workdir/$run.stdout" >&2
    status=1
  fi
done
[ "$status" -ne 0 ] && exit "$status"

if diff -r "$workdir/a" "$workdir/b" > "$workdir/diff.out" 2>&1; then
  files=$(ls "$workdir/a" | wc -l | tr -d ' ')
  echo "check_determinism: OK — $files artifacts byte-identical" \
       "(seed $SEED, $EVENTS events)"
else
  echo "check_determinism: MISMATCH between same-seed runs:" >&2
  cat "$workdir/diff.out" >&2
  status=1
fi
exit "$status"
