#!/usr/bin/env bash
# Runs the chaos example twice with the same seed and verifies the
# telemetry artifacts (metrics JSON/CSV, span trace, event stream, fault
# trace) are byte-identical — the repo's same-seed determinism contract.
# A second pair of runs repeats the check under --spike (overload
# control: load spikes, shedding, breakers, retries), a third under
# --recovery (replication: promotion failover, replica lag, checkpoint +
# log-replay restarts, re-replication), a fourth under --partition
# (simulated network: partitions, message loss/duplication/delay,
# lease fencing, retransmission), a fifth under
# --spike --trace-sample=0.1 (transaction lifecycle tracing: sampled
# txn traces and the Chrome trace_event JSON must also be
# byte-identical across same-seed runs), a sixth under
# --corruption --trace-sample=0.1 (content-modeled durability: disk
# corruption, torn writes, disk stalls, scrubbing and repair -- plus
# sampled traces -- must replay byte-identically too), a seventh
# under --revocation (topology: spot-revocation notices, graceful
# drain with deadline evacuation, and a correlated domain outage), and
# an eighth under --flashcrowd --trace-sample=0.1 (control-plane guard:
# an unforecast flash crowd under a telemetry dropout, with divergence
# handoff, mid-flight plan repair and rejoin -- plus sampled traces --
# must replay byte-identically too).
#
# The scenario list is cross-checked against the binary's own
# --list-scenarios output first, so a scenario added to chaos_run
# without a determinism pair here — or a pair naming a scenario the
# binary no longer knows — fails loudly instead of silently shrinking
# coverage.
#
# Usage: [CHAOS_RUN=path/to/chaos_run] [SEED=N] [EVENTS=N] \
#          tools/check_determinism.sh
# Exits 0 on byte-identical runs, 1 otherwise.
set -u

CHAOS_RUN="${CHAOS_RUN:-build/examples/chaos_run}"
SEED="${SEED:-42}"
EVENTS="${EVENTS:-10}"

if [ ! -x "$CHAOS_RUN" ]; then
  echo "check_determinism: $CHAOS_RUN not found or not executable" >&2
  echo "build first: cmake --build build" >&2
  exit 1
fi

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

# Every scenario flag exercised below must be one the binary itself
# advertises, and every advertised scenario must have a pair below.
if ! "$CHAOS_RUN" --list-scenarios > "$workdir/scenarios.out" 2>&1; then
  echo "check_determinism: $CHAOS_RUN --list-scenarios failed:" >&2
  cat "$workdir/scenarios.out" >&2
  exit 1
fi
covered="(default) --spike --recovery --partition --corruption --revocation --flashcrowd"
status=0
for scenario in $covered; do
  if ! grep -q -- "^  $scenario " "$workdir/scenarios.out"; then
    echo "check_determinism: scenario '$scenario' has a determinism" \
         "pair here but $CHAOS_RUN --list-scenarios does not know it" >&2
    status=1
  fi
done
while read -r name _; do
  case " $covered " in
    *" $name "*) ;;
    *)
      echo "check_determinism: $CHAOS_RUN --list-scenarios advertises" \
           "'$name' but no determinism pair covers it — add one" >&2
      status=1
      ;;
  esac
done < <(sed -n 's/^  \([^ ]*\)  .*/\1/p' "$workdir/scenarios.out")
[ "$status" -ne 0 ] && exit "$status"

for run in a b c d e f g h i j k l m n o p; do
  flags=""
  { [ "$run" = c ] || [ "$run" = d ]; } && flags="--spike"
  { [ "$run" = e ] || [ "$run" = f ]; } && flags="--recovery"
  { [ "$run" = g ] || [ "$run" = h ]; } && flags="--partition"
  { [ "$run" = i ] || [ "$run" = j ]; } && flags="--spike --trace-sample=0.1"
  { [ "$run" = k ] || [ "$run" = l ]; } && flags="--corruption --trace-sample=0.1"
  { [ "$run" = m ] || [ "$run" = n ]; } && flags="--revocation"
  { [ "$run" = o ] || [ "$run" = p ]; } && flags="--flashcrowd --trace-sample=0.1"
  if ! "$CHAOS_RUN" --seed="$SEED" --events="$EVENTS" $flags \
       --out="$workdir/$run" > "$workdir/$run.stdout" 2>&1; then
    echo "check_determinism: run $run FAILED; tail of output:" >&2
    tail -20 "$workdir/$run.stdout" >&2
    status=1
  fi
done
[ "$status" -ne 0 ] && exit "$status"

for pair in "a b plain" "c d spike" "e f recovery" "g h partition" \
            "i j spike+trace" "k l corruption+trace" "m n revocation" \
            "o p flashcrowd+trace"; do
  set -- $pair
  if diff -r "$workdir/$1" "$workdir/$2" > "$workdir/diff.out" 2>&1; then
    files=$(ls "$workdir/$1" | wc -l | tr -d ' ')
    echo "check_determinism: OK — $files artifacts byte-identical" \
         "(seed $SEED, $EVENTS events, $3)"
  else
    echo "check_determinism: MISMATCH between same-seed $3 runs:" >&2
    cat "$workdir/diff.out" >&2
    status=1
  fi
done
exit "$status"
