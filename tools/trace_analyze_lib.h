#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

/// \file trace_analyze_lib.h
/// The analysis logic behind tools/trace_analyze: read a Chrome
/// `trace_event` JSON document (written by obs::ToChromeTraceJson, e.g.
/// chaos_run --trace-sample=0.1 --out=DIR) and compute per-phase latency
/// attribution across all sampled transactions, the top-k slowest
/// transactions with their full phase breakdown, and the critical path
/// of each migration (its rounds, and the longest round that gates the
/// move). All inputs are virtual-time microseconds, so reports are
/// deterministic for deterministic traces.

namespace pstore {
namespace trace {

/// Aggregated time spent in one lifecycle phase.
struct PhaseStat {
  std::string phase;
  int64_t total_us = 0;
  int64_t count = 0;  ///< Intervals aggregated.
};

/// One transaction's end-to-end latency and its phase breakdown.
struct TxnBreakdown {
  int64_t tid = 0;          ///< Transaction id (the trace's tid).
  std::string proc;         ///< Procedure name (from the B event args).
  int64_t start_us = 0;     ///< First phase begin (virtual us).
  int64_t total_us = 0;     ///< Last phase end - first begin.
  std::vector<PhaseStat> phases;  ///< In first-occurrence order.
};

/// One migration move's critical path.
struct MigrationCritical {
  std::string name;          ///< e.g. "migration.move 3->4".
  int64_t start_us = 0;
  int64_t duration_us = 0;
  int32_t rounds = 0;        ///< Rounds nested inside the move.
  std::string longest_round; ///< The round gating the move's duration.
  int64_t longest_round_us = 0;
};

/// The full report.
struct TraceAnalysis {
  int64_t txns = 0;                       ///< Transactions analyzed.
  std::vector<PhaseStat> attribution;     ///< Sorted by total desc.
  std::vector<TxnBreakdown> slowest;      ///< Top-k by total desc.
  std::vector<MigrationCritical> migrations;  ///< In start order.
};

/// Parses a Chrome trace_event JSON document and computes the report.
/// Transaction phases are the pid-1 B/E pairs (per-tid sequential, as
/// the exporter emits them); migrations are the pid-0 complete ("X")
/// spans named "migration.move ..." with their nested
/// "migration.round ..." spans. Fails on malformed JSON or a missing
/// traceEvents array.
Result<TraceAnalysis> AnalyzeChromeTrace(const std::string& json,
                                         int32_t top_k);

/// Renders the report as the CLI's human-readable text.
std::string RenderAnalysis(const TraceAnalysis& analysis);

}  // namespace trace
}  // namespace pstore
