#include "bench_compare_lib.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace pstore {
namespace bench {

namespace {

constexpr int kSchemaVersion = 1;

const char* StatusLabel(CaseStatus s) {
  switch (s) {
    case CaseStatus::kOk:
      return "ok";
    case CaseStatus::kImproved:
      return "IMPROVED";
    case CaseStatus::kRegressed:
      return "REGRESSED";
    case CaseStatus::kMissing:
      return "MISSING";
    case CaseStatus::kNew:
      return "new";
  }
  return "?";
}

/// Pulls {name, value} pairs for cases of the gated unit out of a
/// "cases" array; other units are untracked metrics.
Status CollectCases(const JsonValue& cases, const std::string& unit,
                    std::vector<std::pair<std::string, double>>* out) {
  if (!cases.is_array()) {
    return Status::InvalidArgument("\"cases\" is not an array");
  }
  for (size_t i = 0; i < cases.size(); ++i) {
    const JsonValue& c = cases.at(i);
    if (!c.is_object()) {
      return Status::InvalidArgument("case entry is not an object");
    }
    const std::string name = c.GetStringOr("name", "");
    if (name.empty()) {
      return Status::InvalidArgument("case entry has no name");
    }
    if (c.GetStringOr("unit", "") != unit) continue;
    out->emplace_back(name, c.GetNumberOr("value", 0.0));
  }
  return Status::OK();
}

}  // namespace

std::string CompareReport::ToString() const {
  std::ostringstream os;
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%-36s %14s %14s %9s %9s  %s\n", "case",
                "baseline ns/op", "current ns/op", "ratio", "norm", "status");
  os << buf;
  for (const CaseComparison& c : cases) {
    if (c.status == CaseStatus::kMissing) {
      std::snprintf(buf, sizeof(buf), "%-36s %14.1f %14s %9s %9s  %s\n",
                    c.name.c_str(), c.baseline_ns, "-", "-", "-",
                    StatusLabel(c.status));
    } else if (c.status == CaseStatus::kNew) {
      std::snprintf(buf, sizeof(buf), "%-36s %14s %14.1f %9s %9s  %s\n",
                    c.name.c_str(), "-", c.current_ns, "-", "-",
                    StatusLabel(c.status));
    } else {
      std::snprintf(buf, sizeof(buf), "%-36s %14.1f %14.1f %9.3f %9.3f  %s\n",
                    c.name.c_str(), c.baseline_ns, c.current_ns, c.raw_ratio,
                    c.normalized_ratio, StatusLabel(c.status));
    }
    os << buf;
  }
  std::snprintf(buf, sizeof(buf),
                "median ratio %.3f | %d regressed, %d missing, %d improved, "
                "%d new -> %s\n",
                median_ratio, regressed, missing, improved, added,
                pass ? "PASS" : "FAIL");
  os << buf;
  return os.str();
}

Result<JsonValue> ExtractLatestCases(const JsonValue& doc) {
  if (!doc.is_object()) {
    return Status::InvalidArgument("bench JSON: top level is not an object");
  }
  const double version = doc.GetNumberOr("schema_version", -1);
  if (static_cast<int>(version) != kSchemaVersion) {
    return Status::InvalidArgument(
        "bench JSON: unsupported schema_version " + std::to_string(version));
  }
  const JsonValue* runs = doc.Get("runs");
  if (runs != nullptr) {
    if (!runs->is_array() || runs->size() == 0) {
      return Status::InvalidArgument("bench JSON: empty \"runs\"");
    }
    const JsonValue& last = runs->at(runs->size() - 1);
    const JsonValue* cases = last.is_object() ? last.Get("cases") : nullptr;
    if (cases == nullptr) {
      return Status::InvalidArgument("bench JSON: run without \"cases\"");
    }
    return *cases;
  }
  const JsonValue* cases = doc.Get("cases");
  if (cases == nullptr) {
    return Status::InvalidArgument("bench JSON: no \"cases\"");
  }
  return *cases;
}

Result<CompareReport> CompareBenchDocs(const JsonValue& baseline,
                                       const JsonValue& current,
                                       const CompareOptions& options) {
  auto baseline_cases = ExtractLatestCases(baseline);
  if (!baseline_cases.ok()) {
    return Status::InvalidArgument("baseline: " +
                                   baseline_cases.status().message());
  }
  auto current_cases = ExtractLatestCases(current);
  if (!current_cases.ok()) {
    return Status::InvalidArgument("current: " +
                                   current_cases.status().message());
  }
  std::vector<std::pair<std::string, double>> base, cur;
  PSTORE_RETURN_NOT_OK(
      CollectCases(baseline_cases.ValueOrDie(), options.unit, &base));
  PSTORE_RETURN_NOT_OK(
      CollectCases(current_cases.ValueOrDie(), options.unit, &cur));
  if (base.empty()) {
    return Status::InvalidArgument("baseline tracks no " + options.unit +
                                   " cases");
  }

  auto find = [](const std::vector<std::pair<std::string, double>>& v,
                 const std::string& name) -> const double* {
    for (const auto& [n, value] : v) {
      if (n == name) return &value;
    }
    return nullptr;
  };

  CompareReport report;
  std::vector<double> ratios;
  for (const auto& [name, base_ns] : base) {
    const double* cur_ns = find(cur, name);
    if (cur_ns != nullptr && base_ns > 0.0) {
      ratios.push_back(*cur_ns / base_ns);
    }
  }
  if (options.normalize && !ratios.empty()) {
    std::vector<double> sorted = ratios;
    std::sort(sorted.begin(), sorted.end());
    const size_t n = sorted.size();
    report.median_ratio = (n % 2 == 1)
                              ? sorted[n / 2]
                              : 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);
    if (report.median_ratio <= 0.0) report.median_ratio = 1.0;
  }

  const double fail_above = 1.0 + options.threshold;
  for (const auto& [name, base_ns] : base) {
    CaseComparison c;
    c.name = name;
    c.baseline_ns = base_ns;
    const double* cur_ns = find(cur, name);
    if (cur_ns == nullptr) {
      c.status = CaseStatus::kMissing;
      ++report.missing;
      report.cases.push_back(std::move(c));
      continue;
    }
    c.current_ns = *cur_ns;
    c.raw_ratio = base_ns > 0.0 ? *cur_ns / base_ns : 0.0;
    c.normalized_ratio = c.raw_ratio / report.median_ratio;
    if (c.normalized_ratio > fail_above) {
      c.status = CaseStatus::kRegressed;
      ++report.regressed;
    } else if (c.normalized_ratio < 1.0 / fail_above) {
      c.status = CaseStatus::kImproved;
      ++report.improved;
    }
    report.cases.push_back(std::move(c));
  }
  for (const auto& [name, cur_ns] : cur) {
    if (find(base, name) != nullptr) continue;
    CaseComparison c;
    c.name = name;
    c.current_ns = cur_ns;
    c.status = CaseStatus::kNew;
    ++report.added;
    report.cases.push_back(std::move(c));
  }
  report.pass = report.regressed == 0 && report.missing == 0;
  return report;
}

Status AppendRunToBaseline(JsonValue* baseline, const JsonValue& current,
                           const std::string& label) {
  if (baseline == nullptr || !baseline->is_object()) {
    return Status::InvalidArgument("baseline is not an object");
  }
  const JsonValue* cases = current.Get("cases");
  const JsonValue* run_meta = current.Get("run");
  if (cases == nullptr) {
    return Status::InvalidArgument("current run has no \"cases\"");
  }
  if (baseline->Get("runs") == nullptr) {
    // Convert single-run format in place: its own cases become run 0.
    JsonValue runs = JsonValue::Array();
    const JsonValue* own_cases = baseline->Get("cases");
    if (own_cases != nullptr) {
      JsonValue first = JsonValue::Object();
      first.Set("label", JsonValue("baseline"));
      if (const JsonValue* own_run = baseline->Get("run")) {
        first.Set("run", *own_run);
      }
      first.Set("cases", *own_cases);
      runs.Append(std::move(first));
    }
    baseline->Set("runs", std::move(runs));
  }
  JsonValue entry = JsonValue::Object();
  entry.Set("label", JsonValue(label));
  if (run_meta != nullptr) entry.Set("run", *run_meta);
  entry.Set("cases", *cases);
  // Get() returns const; rebuild the runs array with the new entry.
  JsonValue runs = *baseline->Get("runs");
  runs.Append(std::move(entry));
  baseline->Set("runs", std::move(runs));
  return Status::OK();
}

Result<JsonValue> ReadJsonFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  auto parsed = JsonValue::Parse(buffer.str());
  if (!parsed.ok()) {
    return Status::InvalidArgument(path + ": " + parsed.status().message());
  }
  return parsed;
}

}  // namespace bench
}  // namespace pstore
