#include "trace_analyze_lib.h"

#include <algorithm>
#include <cstdio>
#include <map>

#include "common/json.h"

namespace pstore {
namespace trace {

namespace {

bool StartsWith(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

/// Adds `us` to the named phase in an ordered stat list (first
/// occurrence fixes the position, keeping reports deterministic).
void AddPhase(std::vector<PhaseStat>* stats, const std::string& phase,
              int64_t us) {
  for (PhaseStat& s : *stats) {
    if (s.phase == phase) {
      s.total_us += us;
      ++s.count;
      return;
    }
  }
  stats->push_back(PhaseStat{phase, us, 1});
}

std::string FormatUs(int64_t us) {
  char buf[32];
  if (us >= 1000000) {
    std::snprintf(buf, sizeof(buf), "%.3fs", static_cast<double>(us) / 1e6);
  } else if (us >= 1000) {
    std::snprintf(buf, sizeof(buf), "%.1fms", static_cast<double>(us) / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%lldus", static_cast<long long>(us));
  }
  return buf;
}

}  // namespace

Result<TraceAnalysis> AnalyzeChromeTrace(const std::string& json,
                                         int32_t top_k) {
  auto doc = JsonValue::Parse(json);
  if (!doc.ok()) return doc.status();
  if (!doc->is_object()) {
    return Status::InvalidArgument("trace document is not a JSON object");
  }
  const JsonValue* events = doc->Get("traceEvents");
  if (events == nullptr || !events->is_array()) {
    return Status::InvalidArgument("missing traceEvents array");
  }

  struct OpenPhase {
    std::string name;
    int64_t ts = 0;
  };
  struct TxnAccum {
    TxnBreakdown breakdown;
    OpenPhase open;
    bool has_open = false;
    bool has_start = false;
    int64_t last_end = 0;
  };
  // std::map keys iterate sorted, so tie-broken output is stable.
  std::map<int64_t, TxnAccum> txns;

  struct Span {
    std::string name;
    int64_t ts = 0;
    int64_t dur = 0;
  };
  std::vector<Span> moves;
  std::vector<Span> rounds;

  for (size_t i = 0; i < events->size(); ++i) {
    const JsonValue& e = events->at(i);
    if (!e.is_object()) {
      return Status::InvalidArgument("traceEvents[" + std::to_string(i) +
                                     "] is not an object");
    }
    const std::string ph = e.GetStringOr("ph", "");
    const int64_t pid = static_cast<int64_t>(e.GetNumberOr("pid", -1));
    const int64_t ts = static_cast<int64_t>(e.GetNumberOr("ts", 0));
    const std::string name = e.GetStringOr("name", "");
    if (pid == 0 && ph == "X") {
      const int64_t dur = static_cast<int64_t>(e.GetNumberOr("dur", 0));
      if (StartsWith(name, "migration.move")) {
        moves.push_back(Span{name, ts, dur});
      } else if (StartsWith(name, "migration.round")) {
        rounds.push_back(Span{name, ts, dur});
      }
      continue;
    }
    if (pid != 1) continue;
    const int64_t tid = static_cast<int64_t>(e.GetNumberOr("tid", 0));
    TxnAccum& acc = txns[tid];
    acc.breakdown.tid = tid;
    if (ph == "B") {
      if (acc.has_open) {
        return Status::InvalidArgument(
            "unmatched B event for txn " + std::to_string(tid) + " at ts " +
            std::to_string(ts));
      }
      acc.open = OpenPhase{name, ts};
      acc.has_open = true;
      if (!acc.has_start) {
        acc.breakdown.start_us = ts;
        acc.has_start = true;
      }
      if (acc.breakdown.proc.empty()) {
        const JsonValue* args = e.Get("args");
        if (args != nullptr && args->is_object()) {
          acc.breakdown.proc = args->GetStringOr("proc", "");
        }
      }
    } else if (ph == "E") {
      if (!acc.has_open || acc.open.name != name) {
        return Status::InvalidArgument(
            "unmatched E event for txn " + std::to_string(tid) + " at ts " +
            std::to_string(ts));
      }
      AddPhase(&acc.breakdown.phases, name, ts - acc.open.ts);
      acc.has_open = false;
      acc.last_end = ts;
    }
    // Instant ("i") terminal markers carry no duration.
  }

  TraceAnalysis out;
  for (auto& [tid, acc] : txns) {
    (void)tid;
    if (acc.has_open) {
      // A still-open phase means the txn never finished inside the run
      // window; attribute what we saw and close at the open point.
      AddPhase(&acc.breakdown.phases, acc.open.name, 0);
    }
    acc.breakdown.total_us = acc.last_end - acc.breakdown.start_us;
    for (const PhaseStat& p : acc.breakdown.phases) {
      bool found = false;
      for (PhaseStat& a : out.attribution) {
        if (a.phase == p.phase) {
          a.total_us += p.total_us;
          a.count += p.count;
          found = true;
          break;
        }
      }
      if (!found) out.attribution.push_back(p);
    }
    ++out.txns;
    out.slowest.push_back(acc.breakdown);
  }
  std::stable_sort(out.attribution.begin(), out.attribution.end(),
                   [](const PhaseStat& a, const PhaseStat& b) {
                     return a.total_us > b.total_us;
                   });
  std::stable_sort(out.slowest.begin(), out.slowest.end(),
                   [](const TxnBreakdown& a, const TxnBreakdown& b) {
                     return a.total_us > b.total_us;
                   });
  if (top_k >= 0 && out.slowest.size() > static_cast<size_t>(top_k)) {
    out.slowest.resize(static_cast<size_t>(top_k));
  }

  std::stable_sort(moves.begin(), moves.end(),
                   [](const Span& a, const Span& b) { return a.ts < b.ts; });
  for (const Span& move : moves) {
    MigrationCritical mc;
    mc.name = move.name;
    mc.start_us = move.ts;
    mc.duration_us = move.dur;
    for (const Span& round : rounds) {
      // A round is the move's child when its interval nests inside.
      if (round.ts >= move.ts && round.ts + round.dur <= move.ts + move.dur) {
        ++mc.rounds;
        if (round.dur >= mc.longest_round_us) {
          mc.longest_round_us = round.dur;
          mc.longest_round = round.name;
        }
      }
    }
    out.migrations.push_back(std::move(mc));
  }
  return out;
}

std::string RenderAnalysis(const TraceAnalysis& analysis) {
  std::string out;
  char buf[256];

  out += "== Per-phase latency attribution ==\n";
  int64_t grand_total = 0;
  for (const PhaseStat& p : analysis.attribution) grand_total += p.total_us;
  std::snprintf(buf, sizeof(buf), "%lld sampled txns, %s traced time\n",
                static_cast<long long>(analysis.txns),
                FormatUs(grand_total).c_str());
  out += buf;
  for (const PhaseStat& p : analysis.attribution) {
    const double pct =
        grand_total > 0
            ? 100.0 * static_cast<double>(p.total_us) /
                  static_cast<double>(grand_total)
            : 0.0;
    std::snprintf(buf, sizeof(buf),
                  "  %-12s %10s  %5.1f%%  (%lld intervals)\n",
                  p.phase.c_str(), FormatUs(p.total_us).c_str(), pct,
                  static_cast<long long>(p.count));
    out += buf;
  }

  out += "\n== Slowest transactions ==\n";
  for (const TxnBreakdown& t : analysis.slowest) {
    std::snprintf(buf, sizeof(buf), "  txn %lld (%s) total %s:",
                  static_cast<long long>(t.tid),
                  t.proc.empty() ? "?" : t.proc.c_str(),
                  FormatUs(t.total_us).c_str());
    out += buf;
    for (const PhaseStat& p : t.phases) {
      std::snprintf(buf, sizeof(buf), " %s=%s", p.phase.c_str(),
                    FormatUs(p.total_us).c_str());
      out += buf;
    }
    out += '\n';
  }

  out += "\n== Migration critical paths ==\n";
  if (analysis.migrations.empty()) out += "  (no migrations in trace)\n";
  for (const MigrationCritical& m : analysis.migrations) {
    std::snprintf(buf, sizeof(buf),
                  "  %s: %s over %d rounds; critical: %s (%s)\n",
                  m.name.c_str(), FormatUs(m.duration_us).c_str(), m.rounds,
                  m.longest_round.empty() ? "-" : m.longest_round.c_str(),
                  FormatUs(m.longest_round_us).c_str());
    out += buf;
  }
  return out;
}

}  // namespace trace
}  // namespace pstore
