/// trace_analyze: read a Chrome trace_event JSON dump (written by
/// chaos_run --trace-sample=P --out=DIR, or any obs::ToChromeTraceJson
/// output) and print per-phase latency attribution, the top-k slowest
/// transactions with their phase breakdown, and each migration's
/// critical path.
///
///   ./build/tools/trace_analyze DIR_OR_FILE [--top=10]
///
/// A directory argument reads DIR/trace.json. Exit status: 0 on
/// success, 1 on unreadable or malformed input.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "trace_analyze_lib.h"

namespace {

bool ReadFile(const std::string& path, std::string* out) {
  std::error_code ec;
  if (!std::filesystem::is_regular_file(path, ec)) return false;
  std::ifstream file(path, std::ios::binary);
  if (!file) return false;
  std::ostringstream ss;
  ss << file.rdbuf();
  *out = ss.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string input;
  int32_t top_k = 10;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--top=", 6) == 0) {
      top_k = std::atoi(argv[i] + 6);
    } else if (input.empty()) {
      input = argv[i];
    } else {
      std::fprintf(stderr, "unexpected argument: %s\n", argv[i]);
      return 1;
    }
  }
  if (input.empty()) {
    std::fprintf(stderr, "usage: trace_analyze DIR_OR_FILE [--top=N]\n");
    return 1;
  }

  std::string json;
  if (!ReadFile(input, &json)) {
    // A directory (or anything unreadable as a file): try DIR/trace.json.
    const std::string nested = input + "/trace.json";
    if (!ReadFile(nested, &json)) {
      std::fprintf(stderr, "cannot read %s or %s\n", input.c_str(),
                   nested.c_str());
      return 1;
    }
    input = nested;
  }

  auto analysis = pstore::trace::AnalyzeChromeTrace(json, top_k);
  if (!analysis.ok()) {
    std::fprintf(stderr, "failed to analyze %s: %s\n", input.c_str(),
                 analysis.status().ToString().c_str());
    return 1;
  }
  std::printf("trace: %s\n\n", input.c_str());
  std::printf("%s", pstore::trace::RenderAnalysis(*analysis).c_str());
  return 0;
}
