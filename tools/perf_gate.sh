#!/bin/sh
# Perf regression gate (DESIGN.md §12): run the microbenchmark suite,
# then diff its JSON output against the committed baseline trajectory.
# A second stage runs bench_recovery_mttr and gates its deterministic
# virtual-clock MTTR grid (unit "s") against its own committed
# trajectory — so recovery-path regressions (slower replay planning,
# scrubbing overhead) trip the gate the same way hot-path ns/op
# regressions do. A third stage runs bench_partition_availability and
# gates both its outage grid (unit "s": dark/recovery seconds per
# partition x lease cell) and its latency percentiles (unit "us") the
# same deterministic way. A fourth stage runs bench_overload_degradation
# and gates its goodput grid (unit "us/txn": inverse goodput, so a
# goodput collapse raises the value) plus its p99 grid (unit "ms").
# Exits non-zero when any tracked case regresses past the threshold or
# vanishes from the suite.
#
# Environment overrides (defaults assume running from the repo root
# with the standard ./build tree):
#   BENCH_MICRO_PERF     path to the bench_micro_perf binary
#   BENCH_RECOVERY_MTTR  path to the bench_recovery_mttr binary
#   BENCH_COMPARE        path to the bench_compare binary
#   BASELINE             committed micro-perf trajectory JSON
#   CURRENT              where bench_micro_perf writes its JSON
#   BASELINE_RECOVERY    committed recovery-MTTR trajectory JSON
#   CURRENT_RECOVERY     where bench_recovery_mttr writes its JSON
#   BENCH_PARTITION_AVAILABILITY  path to that bench binary
#   BASELINE_PARTITION   committed partition-availability trajectory JSON
#   CURRENT_PARTITION    where bench_partition_availability writes JSON
#   BENCH_OVERLOAD_DEGRADATION  path to that bench binary
#   BASELINE_OVERLOAD    committed overload-degradation trajectory JSON
#   CURRENT_OVERLOAD     where bench_overload_degradation writes JSON
#   THRESHOLD            tolerated normalized slowdown (default 0.5 = +50%)
set -u

BENCH_MICRO_PERF="${BENCH_MICRO_PERF:-build/bench/bench_micro_perf}"
BENCH_RECOVERY_MTTR="${BENCH_RECOVERY_MTTR:-build/bench/bench_recovery_mttr}"
BENCH_COMPARE="${BENCH_COMPARE:-build/tools/bench_compare}"
BASELINE="${BASELINE:-bench/baselines/BENCH_micro_perf.json}"
CURRENT="${CURRENT:-bench_out/BENCH_micro_perf.json}"
BASELINE_RECOVERY="${BASELINE_RECOVERY:-bench/baselines/BENCH_recovery_mttr.json}"
CURRENT_RECOVERY="${CURRENT_RECOVERY:-bench_out/BENCH_recovery_mttr.json}"
BENCH_PARTITION_AVAILABILITY="${BENCH_PARTITION_AVAILABILITY:-build/bench/bench_partition_availability}"
BASELINE_PARTITION="${BASELINE_PARTITION:-bench/baselines/BENCH_partition_availability.json}"
CURRENT_PARTITION="${CURRENT_PARTITION:-bench_out/BENCH_partition_availability.json}"
BENCH_OVERLOAD_DEGRADATION="${BENCH_OVERLOAD_DEGRADATION:-build/bench/bench_overload_degradation}"
BASELINE_OVERLOAD="${BASELINE_OVERLOAD:-bench/baselines/BENCH_overload_degradation.json}"
CURRENT_OVERLOAD="${CURRENT_OVERLOAD:-bench_out/BENCH_overload_degradation.json}"
THRESHOLD="${THRESHOLD:-0.5}"

for f in "$BENCH_MICRO_PERF" "$BENCH_RECOVERY_MTTR" \
    "$BENCH_PARTITION_AVAILABILITY" "$BENCH_OVERLOAD_DEGRADATION" \
    "$BENCH_COMPARE"; do
  if [ ! -x "$f" ]; then
    echo "perf_gate: missing binary $f (build first)" >&2
    exit 2
  fi
done
for f in "$BASELINE" "$BASELINE_RECOVERY" "$BASELINE_PARTITION" \
    "$BASELINE_OVERLOAD"; do
  if [ ! -f "$f" ]; then
    echo "perf_gate: missing baseline $f" >&2
    exit 2
  fi
done

status=0

rm -f "$CURRENT"
if ! "$BENCH_MICRO_PERF" --benchmark_min_time=0.05; then
  echo "perf_gate: bench_micro_perf exited non-zero" >&2
  exit 1
fi
if [ ! -f "$CURRENT" ]; then
  echo "perf_gate: bench_micro_perf wrote no JSON at $CURRENT" >&2
  exit 1
fi
if ! "$BENCH_COMPARE" --baseline="$BASELINE" --current="$CURRENT" \
    --threshold="$THRESHOLD"; then
  status=1
fi

rm -f "$CURRENT_RECOVERY"
if ! "$BENCH_RECOVERY_MTTR" --seconds=30; then
  echo "perf_gate: bench_recovery_mttr exited non-zero" >&2
  exit 1
fi
if [ ! -f "$CURRENT_RECOVERY" ]; then
  echo "perf_gate: bench_recovery_mttr wrote no JSON at $CURRENT_RECOVERY" >&2
  exit 1
fi
# The MTTR grid is virtual-clock deterministic (same seed, same clock),
# so no median normalization: any drift is a real behavior change.
if ! "$BENCH_COMPARE" --baseline="$BASELINE_RECOVERY" \
    --current="$CURRENT_RECOVERY" --threshold="$THRESHOLD" \
    --unit=s --no-normalize; then
  status=1
fi

rm -f "$CURRENT_PARTITION"
if ! "$BENCH_PARTITION_AVAILABILITY"; then
  echo "perf_gate: bench_partition_availability exited non-zero" >&2
  exit 1
fi
if [ ! -f "$CURRENT_PARTITION" ]; then
  echo "perf_gate: bench_partition_availability wrote no JSON at" \
       "$CURRENT_PARTITION" >&2
  exit 1
fi
# Also virtual-clock deterministic; the grid records two units — outage
# seconds per cell and the nominal cell's latency percentiles — so the
# gate compares each unit separately.
if ! "$BENCH_COMPARE" --baseline="$BASELINE_PARTITION" \
    --current="$CURRENT_PARTITION" --threshold="$THRESHOLD" \
    --unit=s --no-normalize; then
  status=1
fi
if ! "$BENCH_COMPARE" --baseline="$BASELINE_PARTITION" \
    --current="$CURRENT_PARTITION" --threshold="$THRESHOLD" \
    --unit=us --no-normalize; then
  status=1
fi

rm -f "$CURRENT_OVERLOAD"
if ! "$BENCH_OVERLOAD_DEGRADATION" --seconds=10; then
  echo "perf_gate: bench_overload_degradation exited non-zero" >&2
  exit 1
fi
if [ ! -f "$CURRENT_OVERLOAD" ]; then
  echo "perf_gate: bench_overload_degradation wrote no JSON at" \
       "$CURRENT_OVERLOAD" >&2
  exit 1
fi
# Virtual-clock deterministic like the MTTR grid. Goodput is tracked as
# us per good transaction (a goodput drop raises the value), p99 in ms;
# both gated exactly, no machine-speed normalization. The baseline was
# recorded with --seconds=10, matching the invocation above.
if ! "$BENCH_COMPARE" --baseline="$BASELINE_OVERLOAD" \
    --current="$CURRENT_OVERLOAD" --threshold="$THRESHOLD" \
    --unit=us/txn --no-normalize; then
  status=1
fi
if ! "$BENCH_COMPARE" --baseline="$BASELINE_OVERLOAD" \
    --current="$CURRENT_OVERLOAD" --threshold="$THRESHOLD" \
    --unit=ms --no-normalize; then
  status=1
fi

exit "$status"
