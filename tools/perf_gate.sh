#!/bin/sh
# Perf regression gate (DESIGN.md §12): run the microbenchmark suite,
# then diff its JSON output against the committed baseline trajectory.
# Exits non-zero when any tracked case regresses past the threshold or
# vanishes from the suite.
#
# Environment overrides (defaults assume running from the repo root
# with the standard ./build tree):
#   BENCH_MICRO_PERF  path to the bench_micro_perf binary
#   BENCH_COMPARE     path to the bench_compare binary
#   BASELINE          committed trajectory JSON
#   CURRENT           where the bench writes its JSON
#   THRESHOLD         tolerated normalized slowdown (default 0.5 = +50%)
set -u

BENCH_MICRO_PERF="${BENCH_MICRO_PERF:-build/bench/bench_micro_perf}"
BENCH_COMPARE="${BENCH_COMPARE:-build/tools/bench_compare}"
BASELINE="${BASELINE:-bench/baselines/BENCH_micro_perf.json}"
CURRENT="${CURRENT:-bench_out/BENCH_micro_perf.json}"
THRESHOLD="${THRESHOLD:-0.5}"

for f in "$BENCH_MICRO_PERF" "$BENCH_COMPARE"; do
  if [ ! -x "$f" ]; then
    echo "perf_gate: missing binary $f (build first)" >&2
    exit 2
  fi
done
if [ ! -f "$BASELINE" ]; then
  echo "perf_gate: missing baseline $BASELINE" >&2
  exit 2
fi

rm -f "$CURRENT"
if ! "$BENCH_MICRO_PERF" --benchmark_min_time=0.05; then
  echo "perf_gate: bench_micro_perf exited non-zero" >&2
  exit 1
fi
if [ ! -f "$CURRENT" ]; then
  echo "perf_gate: bench_micro_perf wrote no JSON at $CURRENT" >&2
  exit 1
fi

exec "$BENCH_COMPARE" --baseline="$BASELINE" --current="$CURRENT" \
  --threshold="$THRESHOLD"
