#pragma once

#include <string>
#include <vector>

#include "common/json.h"
#include "common/status.h"

/// \file bench_compare_lib.h
/// The regression-gate logic behind tools/bench_compare: diff a current
/// BENCH_*.json run (written by bench_util) against the committed
/// baseline trajectory in bench/baselines/ and fail on any tracked case
/// that slowed down by more than the threshold.
///
/// Machine-speed robustness: absolute ns/op differs across hosts, so by
/// default every per-case ratio (current / baseline) is divided by the
/// median ratio across all cases before gating. A uniform slowdown
/// (slower CI host, debug build) cancels out; a single hot path
/// regressing 2x still trips the gate.

namespace pstore {
namespace bench {

struct CompareOptions {
  /// Max tolerated per-case slowdown after normalization: a case fails
  /// when normalized current/baseline > 1 + threshold.
  double threshold = 0.5;
  /// Divide per-case ratios by the median ratio (see file comment).
  bool normalize = true;
  /// Which case unit the gate tracks. The default gates wall-clock
  /// microbenchmark cases; "s" gates deterministic virtual-clock grids
  /// (e.g. bench_recovery_mttr's MTTR cells), where --no-normalize is
  /// the right companion since there is no machine-speed factor to
  /// cancel.
  std::string unit = "ns/op";
};

enum class CaseStatus {
  kOk,        ///< Within threshold.
  kImproved,  ///< Faster than 1 / (1 + threshold) — informational.
  kRegressed, ///< Slower than 1 + threshold — fails the gate.
  kMissing,   ///< In baseline but absent from current — fails the gate.
  kNew,       ///< In current but absent from baseline — informational.
};

/// One tracked case's verdict.
struct CaseComparison {
  std::string name;
  double baseline_ns = 0.0;
  double current_ns = 0.0;
  double raw_ratio = 0.0;         ///< current / baseline, unnormalized.
  double normalized_ratio = 0.0;  ///< raw / median (== raw if !normalize).
  CaseStatus status = CaseStatus::kOk;
};

/// Full gate verdict over one baseline/current pair.
struct CompareReport {
  std::vector<CaseComparison> cases;
  double median_ratio = 1.0;  ///< Normalization factor applied.
  bool pass = false;
  int32_t regressed = 0;
  int32_t missing = 0;
  int32_t improved = 0;
  int32_t added = 0;

  /// Human-readable table plus verdict line.
  std::string ToString() const;
};

/// Extracts the gated case list (every case whose unit matches the
/// CompareOptions unit; {name -> value}) from a result document: either
/// a single-run file (top-level "cases") or a trajectory baseline
/// ("runs" array — the LAST run is the baseline). Fails on
/// schema_version mismatch or missing fields.
Result<JsonValue> ExtractLatestCases(const JsonValue& doc);

/// Diffs `current` (single-run document) against `baseline` (single-run
/// or trajectory document). Never fails on regressions — that verdict
/// is CompareReport::pass; a Status error means malformed input.
Result<CompareReport> CompareBenchDocs(const JsonValue& baseline,
                                       const JsonValue& current,
                                       const CompareOptions& options);

/// Appends `current`'s run (with `label`) to trajectory-format
/// `baseline` in place, converting a single-run baseline to trajectory
/// format first. Used by bench_compare --update to advance the
/// committed trajectory after an accepted optimization.
Status AppendRunToBaseline(JsonValue* baseline, const JsonValue& current,
                           const std::string& label);

/// Reads and parses a JSON document from `path`.
Result<JsonValue> ReadJsonFile(const std::string& path);

}  // namespace bench
}  // namespace pstore
