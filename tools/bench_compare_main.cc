#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "bench_compare_lib.h"

/// \file bench_compare_main.cc
/// CLI for the bench regression gate:
///
///   bench_compare --baseline=bench/baselines/BENCH_micro_perf.json
///                 --current=bench_out/BENCH_micro_perf.json
///
/// Exits 0 when every tracked case is within threshold, 1 on any
/// regression or missing case, 2 on malformed input / bad usage.
/// `--update --label=<text>` instead appends the current run to the
/// baseline trajectory (used when committing an accepted optimization).

namespace {

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --baseline=FILE --current=FILE [--threshold=F]\n"
      "          [--unit=U] [--no-normalize] [--update --label=TEXT]\n",
      argv0);
}

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  const size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0 || arg[n] != '=') return false;
  *out = arg + n + 1;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using pstore::bench::CompareOptions;
  std::string baseline_path, current_path, threshold_str, label;
  bool update = false;
  CompareOptions options;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (ParseFlag(argv[i], "--baseline", &baseline_path)) continue;
    if (ParseFlag(argv[i], "--current", &current_path)) continue;
    if (ParseFlag(argv[i], "--label", &label)) continue;
    if (ParseFlag(argv[i], "--unit", &options.unit)) continue;
    if (ParseFlag(argv[i], "--threshold", &threshold_str)) {
      char* end = nullptr;
      options.threshold = std::strtod(threshold_str.c_str(), &end);
      if (end == threshold_str.c_str() || options.threshold < 0.0) {
        std::fprintf(stderr, "bench_compare: bad --threshold '%s'\n",
                     threshold_str.c_str());
        return 2;
      }
      continue;
    }
    if (std::strcmp(argv[i], "--no-normalize") == 0) {
      options.normalize = false;
      continue;
    }
    if (std::strcmp(argv[i], "--update") == 0) {
      update = true;
      continue;
    }
    std::fprintf(stderr, "bench_compare: unknown argument '%s'\n", argv[i]);
    Usage(argv[0]);
    return 2;
  }
  if (baseline_path.empty() || current_path.empty()) {
    Usage(argv[0]);
    return 2;
  }

  auto baseline = pstore::bench::ReadJsonFile(baseline_path);
  if (!baseline.ok()) {
    std::fprintf(stderr, "bench_compare: %s\n",
                 baseline.status().ToString().c_str());
    return 2;
  }
  auto current = pstore::bench::ReadJsonFile(current_path);
  if (!current.ok()) {
    std::fprintf(stderr, "bench_compare: %s\n",
                 current.status().ToString().c_str());
    return 2;
  }

  if (update) {
    if (label.empty()) {
      std::fprintf(stderr, "bench_compare: --update requires --label\n");
      return 2;
    }
    pstore::Status st = pstore::bench::AppendRunToBaseline(
        &baseline.ValueOrDie(), current.ValueOrDie(), label);
    if (!st.ok()) {
      std::fprintf(stderr, "bench_compare: %s\n", st.ToString().c_str());
      return 2;
    }
    std::ofstream out(baseline_path);
    if (!out) {
      std::fprintf(stderr, "bench_compare: cannot write %s\n",
                   baseline_path.c_str());
      return 2;
    }
    out << baseline.ValueOrDie().Dump();
    std::printf("bench_compare: appended run '%s' to %s\n", label.c_str(),
                baseline_path.c_str());
    return 0;
  }

  auto report = pstore::bench::CompareBenchDocs(baseline.ValueOrDie(),
                                                current.ValueOrDie(), options);
  if (!report.ok()) {
    std::fprintf(stderr, "bench_compare: %s\n",
                 report.status().ToString().c_str());
    return 2;
  }
  std::fputs(report.ValueOrDie().ToString().c_str(), stdout);
  return report.ValueOrDie().pass ? 0 : 1;
}
