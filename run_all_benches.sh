#!/bin/sh
# Runs every figure/table reproduction harness, mirroring the paper's
# evaluation section. Outputs land on stdout and CSVs in ./bench_out/.
# A harness that exits non-zero aborts the sweep immediately, naming
# the offender (set -e alone would hide which binary failed).
for b in build/bench/*; do
  if ! "$b"; then
    echo "run_all_benches: FAILED: $b exited non-zero" >&2
    exit 1
  fi
done
