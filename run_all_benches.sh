#!/bin/sh
# Runs every figure/table reproduction harness, mirroring the paper's
# evaluation section. Outputs land on stdout and CSVs in ./bench_out/.
# A harness that exits non-zero aborts the sweep immediately, naming
# the offender (set -e alone would hide which binary failed).
#
# An optional substring argument filters the sweep:
#   ./run_all_benches.sh            # everything
#   ./run_all_benches.sh recovery   # only build/bench/*recovery*
filter="${1:-}"
ran=0
for b in build/bench/*; do
  case "$(basename "$b")" in
    *"$filter"*) ;;
    *) continue ;;
  esac
  ran=$((ran + 1))
  if ! "$b"; then
    echo "run_all_benches: FAILED: $b exited non-zero" >&2
    exit 1
  fi
done
if [ "$ran" -eq 0 ]; then
  echo "run_all_benches: no bench matches filter '$filter'" >&2
  exit 1
fi
