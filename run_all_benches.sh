#!/bin/sh
# Runs every figure/table reproduction harness, mirroring the paper's
# evaluation section. Outputs land on stdout and CSVs in ./bench_out/.
set -e
for b in build/bench/*; do
  "$b"
done
