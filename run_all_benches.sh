#!/bin/sh
# Runs every figure/table reproduction harness, mirroring the paper's
# evaluation section. Outputs land on stdout, CSVs and schema-versioned
# BENCH_*.json result documents in ./bench_out/. Instrumented harnesses
# also surface their registry latency histograms as interpolated
# <metric>/p50..p999 cases inside those JSONs (bench_util
# WriteRunTelemetry; DESIGN.md §13). A harness that exits
# non-zero OR writes no JSON aborts the sweep immediately, naming the
# offender (set -e alone would hide which binary failed, and a bench
# that silently stops emitting results is as broken as one that
# crashes).
#
# An optional substring argument filters the sweep:
#   ./run_all_benches.sh            # everything
#   ./run_all_benches.sh recovery   # only build/bench/*recovery*
filter="${1:-}"
ran=0
mkdir -p bench_out
stamp="bench_out/.run_all_benches.stamp"
for b in build/bench/*; do
  case "$(basename "$b")" in
    *"$filter"*) ;;
    *) continue ;;
  esac
  ran=$((ran + 1))
  touch "$stamp"
  if ! "$b"; then
    echo "run_all_benches: FAILED: $b exited non-zero" >&2
    rm -f "$stamp"
    exit 1
  fi
  if ! find bench_out -name 'BENCH_*.json' -newer "$stamp" | grep -q .; then
    echo "run_all_benches: FAILED: $b wrote no BENCH_*.json" >&2
    rm -f "$stamp"
    exit 1
  fi
done
rm -f "$stamp"
if [ "$ran" -eq 0 ]; then
  echo "run_all_benches: no bench matches filter '$filter'" >&2
  exit 1
fi
echo "run_all_benches: $ran benches OK; JSON + CSV in bench_out/"
