/// Revocation survival: committed-row loss and goodput dip through a
/// spot revocation, as functions of the notice period and the failure
/// domain count. A 6-node k=1 cluster with the topology layer enabled
/// serves a steady read/write mix; at t=10s one node receives a
/// revocation notice and starts a deadline-aware graceful drain —
/// hottest buckets evacuate first, and whatever the notice window
/// cannot fit falls back to replica promotion when the hard kill lands
/// at the deadline. With domain-diverse placement every bucket keeps an
/// out-of-domain replica, so committed rows survive regardless of how
/// short the notice is; the notice period only buys a smaller goodput
/// dip (evacuated buckets move gracefully instead of failing over).
///
/// Output: survival table + bench_out CSV (revocation_survival.csv) +
/// one nominal cell's telemetry dump.

#include <algorithm>
#include <cstdio>
#include <functional>
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "cluster/engine.h"
#include "common/table_writer.h"
#include "migration/migration_executor.h"
#include "sim/simulator.h"
#include "storage/schema.h"
#include "txn/procedure.h"

using namespace pstore;

namespace {

constexpr double kRevokeSecond = 10.0;
constexpr double kRunSeconds = 30.0;
constexpr double kDrainSeconds = 15.0;
constexpr int64_t kRows = 600;
constexpr double kRateTps = 400.0;
constexpr NodeId kRevokedNode = 5;

struct CellResult {
  double notice_ms = 0;
  int32_t num_domains = 0;
  double baseline_tps = 0;  ///< Mean committed/s before the notice.
  double dip_tps = 0;       ///< Min committed/s in the drain window.
  double dark_s = 0;        ///< Seconds with zero commits, whole run.
  int64_t buckets_evacuated = 0;
  int64_t left_to_promotion = 0;
  int64_t promotions = 0;
  int64_t drains = 0;
  int64_t drain_kills = 0;
  int64_t kills_infeasible = 0;
  int64_t rows_lost = 0;
  int64_t rows_at_end = 0;
  int64_t degraded_at_end = 0;
};

/// One (notice period, domain count) cell: revoke node 5 at t=10s with
/// the given notice; the drain hook starts the deadline evacuation and
/// the engine hard-kills the node when the notice expires.
CellResult RunCell(double notice_ms, int32_t num_domains,
                   obs::TelemetryBundle* telemetry) {
  Catalog catalog;
  const TableId table = *catalog.AddTable(Schema(
      "KV", {{"k", ColumnType::kInt64}, {"v", ColumnType::kInt64}}, 0));
  ProcedureRegistry registry;
  const ProcedureId get = *registry.Register(ProcedureDef{
      "Get",
      [table](ExecutionContext& ctx, const TxnRequest& req) {
        TxnResult r;
        auto row = ctx.Get(table, req.key);
        if (!row.ok()) {
          r.status = row.status();
        } else {
          r.rows.push_back(std::move(row).MoveValueUnsafe());
        }
        return r;
      },
      1.0});
  const ProcedureId put = *registry.Register(ProcedureDef{
      "Put",
      [table](ExecutionContext& ctx, const TxnRequest& req) {
        TxnResult r;
        r.status = ctx.Upsert(
            table, Row({Value(req.key), req.args.empty()
                                            ? Value(int64_t{0})
                                            : req.args[0]}));
        return r;
      },
      1.0});

  Simulator sim;
  EngineConfig config;
  config.num_buckets = 64;
  config.partitions_per_node = 2;
  config.max_nodes = 6;
  config.initial_nodes = 6;
  config.txn_service_us_mean = 2000.0;  // 500 txn/s per partition.
  config.txn_service_cv = 0.0;
  config.replication.enabled = true;
  config.replication.k = 1;
  config.replication.db_size_mb = 10.0;
  config.replication.rebuild_chunk_kb = 100.0;
  config.replication.rebuild_rate_kbps = 10240.0;
  config.replication.wire_kbps = 102400.0;
  config.replication.checkpoint_period = 5 * kSecond;
  config.topology.enabled = true;
  config.topology.num_domains = num_domains;
  config.topology.spot_from_node = 1;
  ClusterEngine engine(&sim, catalog, registry, config);
  if (telemetry != nullptr && obs::Enabled()) {
    engine.set_telemetry(telemetry->view());
  }
  for (int64_t k = 0; k < kRows; ++k) {
    if (!engine.LoadRow(table, Row({Value(k), Value(k)})).ok()) return {};
  }

  MigrationOptions migration;
  migration.chunk_kb = 100;
  migration.rate_kbps = 10000;
  migration.wire_kbps = 100000;
  migration.db_size_mb = 10;
  MigrationExecutor migrator(&engine, migration);
  if (telemetry != nullptr && obs::Enabled()) {
    migrator.set_telemetry(telemetry->view());
  }
  engine.set_drain_hook([&migrator](NodeId n, SimTime deadline) {
    (void)migrator.StartEvacuation(n, deadline);
  });

  // Steady load, one write in four, upserts restricted to preloaded
  // keys so the total row count is conserved exactly.
  const auto arrivals = static_cast<int64_t>(kRateTps * kRunSeconds);
  for (int64_t i = 0; i < arrivals; ++i) {
    TxnRequest req;
    req.key = (i * 48271) % kRows;
    if (i % 4 == 0) {
      req.proc = put;
      req.args.push_back(Value(i));
    } else {
      req.proc = get;
    }
    const SimTime at =
        static_cast<SimTime>(static_cast<double>(i) * 1e6 / kRateTps);
    sim.ScheduleAt(at, [&engine, req]() { engine.Submit(req); });
  }

  // The fault: a spot-revocation notice for node 5. The engine starts
  // the graceful drain (the hook above kicks the evacuation) and
  // schedules the hard kill at the deadline itself.
  sim.ScheduleAt(SecondsToDuration(kRevokeSecond), [&engine, notice_ms]() {
    (void)engine.StartDrain(
        kRevokedNode, SecondsToDuration(notice_ms / 1000.0));
  });

  // Goodput sampler: committed/s.
  std::vector<int64_t> committed_per_s;
  auto sample = std::make_shared<std::function<void(int64_t)>>();
  *sample = [&](int64_t last_committed) {
    committed_per_s.push_back(engine.txns_committed() - last_committed);
    if (sim.Now() < SecondsToDuration(kRunSeconds)) {
      sim.Schedule(kSecond, [&, c = engine.txns_committed()]() {
        (*sample)(c);
      });
    }
  };
  sim.Schedule(kSecond, [&]() { (*sample)(0); });

  sim.RunUntil(SecondsToDuration(kRunSeconds));
  // Drain: kill aftermath — rebuilds restore k on the survivors.
  sim.RunUntil(SecondsToDuration(kRunSeconds + kDrainSeconds));

  CellResult cell;
  cell.notice_ms = notice_ms;
  cell.num_domains = num_domains;
  // The disruption window spans the notice plus the failover tail; cap
  // it at the end of the sampled run.
  const double window_end =
      std::min(kRevokeSecond + notice_ms / 1000.0 + 3.0, kRunSeconds - 1);
  double base_sum = 0;
  size_t base_n = 0;
  cell.dip_tps = kRateTps;
  for (size_t i = 1; i < committed_per_s.size(); ++i) {
    const auto second = static_cast<double>(i);
    if (second < kRevokeSecond) {
      base_sum += static_cast<double>(committed_per_s[i]);
      ++base_n;
    } else if (second < window_end) {
      cell.dip_tps = std::min(
          cell.dip_tps, static_cast<double>(committed_per_s[i]));
    }
    if (second < kRunSeconds - 1 && committed_per_s[i] == 0) {
      cell.dark_s += 1.0;
    }
  }
  cell.baseline_tps = base_n > 0 ? base_sum / static_cast<double>(base_n)
                                 : 0;
  cell.buckets_evacuated = migrator.buckets_evacuated();
  cell.left_to_promotion = migrator.evacuations_deadline_skipped();
  cell.promotions = engine.replication()->promotions();
  cell.drains = engine.drains_started();
  cell.drain_kills = engine.drain_kills();
  cell.kills_infeasible = engine.drain_kills_infeasible();
  cell.rows_lost = engine.rows_lost();
  cell.rows_at_end = engine.TotalRowCount();
  cell.degraded_at_end = engine.replication()->degraded_buckets();
  if (telemetry != nullptr) telemetry->metrics.FreezeCallbackGauges();
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  bench::PrintBanner(
      "Revocation survival",
      "committed-row loss and goodput dip through a spot revocation, by "
      "notice period and failure-domain count",
      "domain-diverse placement makes row survival independent of the "
      "notice period: every bucket keeps an out-of-domain replica, so "
      "the hard kill promotes instead of losing data — the notice only "
      "buys a smaller goodput dip via graceful evacuation");

  (void)bench::DoubleFlag(argc, argv, "seconds", kRunSeconds);
  const std::vector<double> notice_ms = {20.0, 100.0, 5000.0};
  const std::vector<int32_t> domain_counts = {2, 3, 4};
  const double nominal_notice = 100.0;
  const int32_t nominal_domains = 3;

  TableWriter table({"notice (ms)", "domains", "base (txn/s)",
                     "dip (txn/s)", "dark (s)", "evacuated", "promoted",
                     "promotions", "rows lost"});
  std::vector<double> notice_col, domain_col, base_col, dip_col, dark_col,
      evac_col, left_col, promo_col, lost_col;
  obs::TelemetryBundle telemetry;
  int failures = 0;
  for (const double notice : notice_ms) {
    for (const int32_t domains : domain_counts) {
      const bool nominal =
          notice == nominal_notice && domains == nominal_domains;
      const CellResult cell =
          RunCell(notice, domains, nominal ? &telemetry : nullptr);
      {
        char prefix[64];
        std::snprintf(prefix, sizeof(prefix), "survival/notice%.0f_dom%d",
                      notice, domains);
        const std::string p(prefix);
        bench::RecordBenchCase(
            {p + "/dip_tps", cell.dip_tps, "", 0.0, 0});
        bench::RecordBenchCase(
            {p + "/rows_lost", static_cast<double>(cell.rows_lost), "",
             0.0, 0});
        bench::RecordBenchCase(
            {p + "/evacuated",
             static_cast<double>(cell.buckets_evacuated), "", 0.0, 0});
      }
      table.AddRow(
          {TableWriter::Fmt(notice, 0),
           TableWriter::Fmt(static_cast<double>(domains), 0),
           TableWriter::Fmt(cell.baseline_tps, 0),
           TableWriter::Fmt(cell.dip_tps, 0),
           TableWriter::Fmt(cell.dark_s, 0),
           TableWriter::Fmt(static_cast<double>(cell.buckets_evacuated),
                            0),
           TableWriter::Fmt(static_cast<double>(cell.left_to_promotion),
                            0),
           TableWriter::Fmt(static_cast<double>(cell.promotions), 0),
           TableWriter::Fmt(static_cast<double>(cell.rows_lost), 0)});
      notice_col.push_back(notice);
      domain_col.push_back(static_cast<double>(domains));
      base_col.push_back(cell.baseline_tps);
      dip_col.push_back(cell.dip_tps);
      dark_col.push_back(cell.dark_s);
      evac_col.push_back(static_cast<double>(cell.buckets_evacuated));
      left_col.push_back(static_cast<double>(cell.left_to_promotion));
      promo_col.push_back(static_cast<double>(cell.promotions));
      lost_col.push_back(static_cast<double>(cell.rows_lost));
      // Acceptance: exactly one drain and one hard kill fire; with 6
      // nodes and >= 2 domains a domain-diverse replica set always
      // exists, so no committed row may be lost however short the
      // notice; the survivors rebuild back to full replication factor;
      // and the workload's upserts touch only preloaded keys so the
      // row count is conserved exactly.
      if (cell.drains != 1 || cell.drain_kills != 1) {
        std::fprintf(stderr,
                     "FAIL: drains=%ld kills=%ld (notice=%.0f dom=%d)\n",
                     static_cast<long>(cell.drains),
                     static_cast<long>(cell.drain_kills), notice, domains);
        ++failures;
      }
      if (cell.kills_infeasible != 0 || cell.rows_lost != 0 ||
          cell.rows_at_end != kRows) {
        std::fprintf(stderr,
                     "FAIL: infeasible=%ld rows lost=%ld at_end=%ld "
                     "(notice=%.0f dom=%d)\n",
                     static_cast<long>(cell.kills_infeasible),
                     static_cast<long>(cell.rows_lost),
                     static_cast<long>(cell.rows_at_end), notice, domains);
        ++failures;
      }
      if (cell.degraded_at_end != 0) {
        std::fprintf(stderr,
                     "FAIL: %ld buckets still degraded after drain "
                     "(notice=%.0f dom=%d)\n",
                     static_cast<long>(cell.degraded_at_end), notice,
                     domains);
        ++failures;
      }
      if (cell.baseline_tps <= 0) {
        std::fprintf(stderr,
                     "FAIL: no baseline goodput (notice=%.0f dom=%d)\n",
                     notice, domains);
        ++failures;
      }
    }
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape: rows lost stays zero in every cell — "
               "survival comes from domain-diverse placement, not the "
               "notice. Longer notices evacuate more buckets before the "
               "kill (fewer fall back to promotion), shrinking the "
               "goodput dip.\n";
  bench::WriteCsv("revocation_survival.csv",
                  {"notice_ms", "num_domains", "baseline_tps", "dip_tps",
                   "dark_s", "buckets_evacuated", "left_to_promotion",
                   "promotions", "rows_lost"},
                  {notice_col, domain_col, base_col, dip_col, dark_col,
                   evac_col, left_col, promo_col, lost_col});
  bench::WriteRunTelemetry("revocation_survival", &telemetry);
  return failures == 0 ? 0 : 1;
}
