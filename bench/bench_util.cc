#include "bench_util.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "common/table_writer.h"
#include "obs/exporter.h"

namespace pstore {
namespace bench {

void PrintBanner(const std::string& artifact, const std::string& title,
                 const std::string& paper_note) {
  std::cout << "\n==================================================="
               "=============================\n";
  std::cout << artifact << ": " << title << "\n";
  if (!paper_note.empty()) std::cout << "Paper: " << paper_note << "\n";
  std::cout << "====================================================="
               "===========================\n";
}

void PrintSeries(const std::string& label, const std::vector<double>& values,
                 size_t width) {
  if (values.empty()) {
    std::cout << label << ": (empty)\n";
    return;
  }
  double lo = values[0], hi = values[0], sum = 0;
  for (double v : values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
    sum += v;
  }
  std::printf("%-28s min=%10.1f mean=%10.1f max=%10.1f\n", label.c_str(), lo,
              sum / static_cast<double>(values.size()), hi);
  std::cout << "  " << Sparkline(values, width) << "\n";
}

void WriteCsv(const std::string& file,
              const std::vector<std::string>& names,
              const std::vector<std::vector<double>>& columns) {
  // obs::WriteColumnsCsv creates the full parent chain (so files under
  // bench_out/sub/ work too) and warns instead of silently dropping the
  // CSV when the path cannot be written. Output bytes are identical to
  // the old CsvSeriesWriter path.
  const std::string path = "bench_out/" + file;
  if (obs::WriteColumnsCsv(path, names, columns)) {
    std::cout << "  [series written to " << path << "]\n";
  }
}

void WriteRunTelemetry(const std::string& prefix,
                       obs::TelemetryBundle* telemetry,
                       const obs::TimeseriesExporter* exporter) {
  if (!obs::Enabled()) return;  // disarmed builds keep bench_out pristine
  const std::string base = "bench_out/" + prefix;
  bool ok = obs::WriteStringToFile(base + "_metrics.json",
                                   telemetry->metrics.DumpJson());
  if (exporter != nullptr) {
    ok = exporter->WriteCsv(base + "_metrics.csv") && ok;
  }
  ok = obs::WriteStringToFile(base + "_events.txt",
                              telemetry->events.ToString()) &&
       ok;
  if (ok) {
    std::cout << "  [telemetry written to " << base << "_metrics.json";
    if (exporter != nullptr) std::cout << " / _metrics.csv";
    std::cout << " / _events.txt]\n";
  }
}

namespace {
std::string FlagValue(int argc, char** argv, const std::string& key) {
  const std::string prefix = "--" + key + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
  }
  return "";
}
}  // namespace

int64_t IntFlag(int argc, char** argv, const std::string& key,
                int64_t fallback) {
  const std::string v = FlagValue(argc, argv, key);
  return v.empty() ? fallback : std::strtoll(v.c_str(), nullptr, 10);
}

double DoubleFlag(int argc, char** argv, const std::string& key,
                  double fallback) {
  const std::string v = FlagValue(argc, argv, key);
  return v.empty() ? fallback : std::strtod(v.c_str(), nullptr);
}

void PrintExperiment(const ExperimentResult& result) {
  std::cout << "\n--- " << result.strategy_name << " ---\n";

  // Machines-allocated series sampled per 10 s window for the chart.
  std::vector<double> machines;
  if (!result.allocation.empty() && !result.throughput_txn_s.empty()) {
    size_t idx = 0;
    for (size_t w = 0; w < result.throughput_txn_s.size(); ++w) {
      const SimTime t = static_cast<SimTime>(w) * 10 * kSecond;
      while (idx + 1 < result.allocation.size() &&
             result.allocation[idx + 1].at <= t) {
        ++idx;
      }
      machines.push_back(result.allocation[idx].nodes);
    }
  }
  PrintSeries("throughput (txn/s)", result.throughput_txn_s);
  std::vector<double> p99_ms, mean_ms;
  for (const auto& w : result.latency_windows) {
    p99_ms.push_back(static_cast<double>(w.p99) / 1000.0);
    mean_ms.push_back(w.mean / 1000.0);
  }
  PrintSeries("avg latency (ms)", mean_ms);
  PrintSeries("p99 latency (ms)", p99_ms);
  if (!machines.empty()) PrintSeries("machines allocated", machines);

  std::printf(
      "  txns: %lld submitted, %lld committed, %lld aborted\n",
      static_cast<long long>(result.submitted),
      static_cast<long long>(result.committed),
      static_cast<long long>(result.aborted));
  std::printf(
      "  SLA violations (>500 ms): p50=%lld p95=%lld p99=%lld | avg "
      "machines=%.2f | reconfigurations=%zu\n",
      static_cast<long long>(result.violations_p50),
      static_cast<long long>(result.violations_p95),
      static_cast<long long>(result.violations_p99), result.avg_machines,
      result.moves.size());
}

}  // namespace bench
}  // namespace pstore
