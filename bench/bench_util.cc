#include "bench_util.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <thread>

#include "common/json.h"
#include "common/table_writer.h"
#include "obs/exporter.h"
#include "obs/histogram.h"

namespace pstore {
namespace bench {

namespace {

/// Process-wide collector behind the PrintBanner/PrintSeries hooks:
/// the first banner names the output file, series calls accumulate
/// cases, and an atexit handler writes bench_out/BENCH_<slug>.json.
struct BenchJsonCollector {
  std::string slug;
  std::vector<BenchCaseResult> cases;
  bool atexit_registered = false;
};

BenchJsonCollector& Collector() {
  static BenchJsonCollector collector;
  return collector;
}

/// "Figure 9" -> "figure_9": lowercase, runs of non-alphanumerics
/// collapse to one underscore, no leading/trailing underscore.
std::string Slugify(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      out.push_back(static_cast<char>(
          std::tolower(static_cast<unsigned char>(c))));
    } else if (!out.empty() && out.back() != '_') {
      out.push_back('_');
    }
  }
  while (!out.empty() && out.back() == '_') out.pop_back();
  return out;
}

void FlushBenchJsonAtExit() {
  BenchJsonCollector& c = Collector();
  if (c.slug.empty()) return;
  // Flush even with zero recorded cases: benches that report only via
  // TableWriter/CSV still leave a schema-versioned attestation that
  // they ran to a clean exit, which run_all_benches.sh enforces.
  WriteBenchJson(c.slug, "metrics", c.cases);
}

}  // namespace

bool WriteBenchJson(const std::string& bench, const std::string& kind,
                    const std::vector<BenchCaseResult>& cases) {
  JsonValue doc = JsonValue::Object();
  doc.Set("schema_version",
          JsonValue(static_cast<int64_t>(kBenchJsonSchemaVersion)));
  doc.Set("bench", JsonValue(bench));
  doc.Set("kind", JsonValue(kind));
  JsonValue run = JsonValue::Object();
#ifdef NDEBUG
  run.Set("build_type", JsonValue("optimized"));
#else
  run.Set("build_type", JsonValue("debug"));
#endif
  run.Set("hardware_threads", JsonValue(static_cast<int64_t>(
                                  std::thread::hardware_concurrency())));
  doc.Set("run", std::move(run));
  JsonValue case_array = JsonValue::Array();
  for (const BenchCaseResult& c : cases) {
    JsonValue entry = JsonValue::Object();
    entry.Set("name", JsonValue(c.name));
    entry.Set("value", JsonValue(c.value));
    entry.Set("unit", JsonValue(c.unit));
    if (c.items_per_s > 0.0) {
      entry.Set("items_per_s", JsonValue(c.items_per_s));
    }
    if (c.iterations > 0) {
      entry.Set("iterations", JsonValue(c.iterations));
    }
    case_array.Append(std::move(entry));
  }
  doc.Set("cases", std::move(case_array));
  const std::string path = "bench_out/BENCH_" + bench + ".json";
  if (!obs::WriteStringToFile(path, doc.Dump())) return false;
  std::cout << "  [bench result written to " << path << "]\n";
  return true;
}

void RecordBenchCase(const BenchCaseResult& result) {
  BenchJsonCollector& c = Collector();
  if (!c.atexit_registered) {
    std::atexit(FlushBenchJsonAtExit);
    c.atexit_registered = true;
  }
  c.cases.push_back(result);
}

void PrintBanner(const std::string& artifact, const std::string& title,
                 const std::string& paper_note) {
  BenchJsonCollector& c = Collector();
  if (c.slug.empty()) {
    c.slug = Slugify(artifact);
    if (!c.atexit_registered) {
      std::atexit(FlushBenchJsonAtExit);
      c.atexit_registered = true;
    }
  }
  std::cout << "\n==================================================="
               "=============================\n";
  std::cout << artifact << ": " << title << "\n";
  if (!paper_note.empty()) std::cout << "Paper: " << paper_note << "\n";
  std::cout << "====================================================="
               "===========================\n";
}

void PrintSeries(const std::string& label, const std::vector<double>& values,
                 size_t width) {
  if (values.empty()) {
    std::cout << label << ": (empty)\n";
    return;
  }
  double lo = values[0], hi = values[0], sum = 0;
  for (double v : values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
    sum += v;
  }
  const double mean = sum / static_cast<double>(values.size());
  std::printf("%-28s min=%10.1f mean=%10.1f max=%10.1f\n", label.c_str(), lo,
              mean, hi);
  std::cout << "  " << Sparkline(values, width) << "\n";
  const std::string slug = Slugify(label);
  RecordBenchCase({slug + "/min", lo, "", 0.0, 0});
  RecordBenchCase({slug + "/mean", mean, "", 0.0, 0});
  RecordBenchCase({slug + "/max", hi, "", 0.0, 0});
}

void WriteCsv(const std::string& file,
              const std::vector<std::string>& names,
              const std::vector<std::vector<double>>& columns) {
  // obs::WriteColumnsCsv creates the full parent chain (so files under
  // bench_out/sub/ work too) and warns instead of silently dropping the
  // CSV when the path cannot be written. Output bytes are identical to
  // the old CsvSeriesWriter path.
  const std::string path = "bench_out/" + file;
  if (obs::WriteColumnsCsv(path, names, columns)) {
    std::cout << "  [series written to " << path << "]\n";
  }
}

void WriteRunTelemetry(const std::string& prefix,
                       obs::TelemetryBundle* telemetry,
                       const obs::TimeseriesExporter* exporter) {
  if (!obs::Enabled()) return;  // disarmed builds keep bench_out pristine
  const std::string base = "bench_out/" + prefix;
  bool ok = obs::WriteStringToFile(base + "_metrics.json",
                                   telemetry->metrics.DumpJson());
  if (exporter != nullptr) {
    ok = exporter->WriteCsv(base + "_metrics.csv") && ok;
  }
  ok = obs::WriteStringToFile(base + "_events.txt",
                              telemetry->events.ToString()) &&
       ok;
  if (ok) {
    std::cout << "  [telemetry written to " << base << "_metrics.json";
    if (exporter != nullptr) std::cout << " / _metrics.csv";
    std::cout << " / _events.txt]\n";
  }
  // Surface every populated latency histogram as percentile cases in the
  // run's BENCH_*.json, so regressions in tail latency are diffable the
  // same way as throughput numbers.
  for (const auto& [name, hist] : telemetry->metrics.Histograms()) {
    if (hist->count() == 0) continue;
    const obs::Quantiles q = obs::ComputeQuantiles(*hist);
    const std::string slug = Slugify(name);
    RecordBenchCase({slug + "/p50", q.p50, "us", 0.0, 0});
    RecordBenchCase({slug + "/p90", q.p90, "us", 0.0, 0});
    RecordBenchCase({slug + "/p99", q.p99, "us", 0.0, 0});
    RecordBenchCase({slug + "/p999", q.p999, "us", 0.0, 0});
  }
}

namespace {
std::string FlagValue(int argc, char** argv, const std::string& key) {
  const std::string prefix = "--" + key + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
  }
  return "";
}
}  // namespace

int64_t IntFlag(int argc, char** argv, const std::string& key,
                int64_t fallback) {
  const std::string v = FlagValue(argc, argv, key);
  return v.empty() ? fallback : std::strtoll(v.c_str(), nullptr, 10);
}

double DoubleFlag(int argc, char** argv, const std::string& key,
                  double fallback) {
  const std::string v = FlagValue(argc, argv, key);
  return v.empty() ? fallback : std::strtod(v.c_str(), nullptr);
}

void PrintExperiment(const ExperimentResult& result) {
  std::cout << "\n--- " << result.strategy_name << " ---\n";

  // Machines-allocated series sampled per 10 s window for the chart.
  std::vector<double> machines;
  if (!result.allocation.empty() && !result.throughput_txn_s.empty()) {
    size_t idx = 0;
    for (size_t w = 0; w < result.throughput_txn_s.size(); ++w) {
      const SimTime t = static_cast<SimTime>(w) * 10 * kSecond;
      while (idx + 1 < result.allocation.size() &&
             result.allocation[idx + 1].at <= t) {
        ++idx;
      }
      machines.push_back(result.allocation[idx].nodes);
    }
  }
  PrintSeries("throughput (txn/s)", result.throughput_txn_s);
  std::vector<double> p99_ms, mean_ms;
  for (const auto& w : result.latency_windows) {
    p99_ms.push_back(static_cast<double>(w.p99) / 1000.0);
    mean_ms.push_back(w.mean / 1000.0);
  }
  PrintSeries("avg latency (ms)", mean_ms);
  PrintSeries("p99 latency (ms)", p99_ms);
  if (!machines.empty()) PrintSeries("machines allocated", machines);

  std::printf(
      "  txns: %lld submitted, %lld committed, %lld aborted\n",
      static_cast<long long>(result.submitted),
      static_cast<long long>(result.committed),
      static_cast<long long>(result.aborted));
  std::printf(
      "  SLA violations (>500 ms): p50=%lld p95=%lld p99=%lld | avg "
      "machines=%.2f | reconfigurations=%zu\n",
      static_cast<long long>(result.violations_p50),
      static_cast<long long>(result.violations_p95),
      static_cast<long long>(result.violations_p99), result.avg_machines,
      result.moves.size());

  const std::string slug = Slugify(result.strategy_name);
  RecordBenchCase(
      {slug + "/committed", static_cast<double>(result.committed), "", 0.0, 0});
  RecordBenchCase(
      {slug + "/aborted", static_cast<double>(result.aborted), "", 0.0, 0});
  RecordBenchCase({slug + "/avg_machines", result.avg_machines, "", 0.0, 0});
  RecordBenchCase({slug + "/reconfigurations",
                   static_cast<double>(result.moves.size()), "", 0.0, 0});
}

}  // namespace bench
}  // namespace pstore
