/// Recovery MTTR: mean time to restore k-safety and the goodput dip
/// after a primary crash, as functions of partition size (virtual
/// db_size_mb) and re-replication chunk rate. A 3-node k=1 cluster
/// serves a steady read/write mix; node 2 crashes mid-run (promotion
/// failover, zero committed rows lost), restarts two seconds later
/// (checkpoint + command-log replay on the virtual clock), and chunked
/// re-replication restores every bucket to full replication factor.
///
/// A second grid turns on the content-modeled durable store (DESIGN.md
/// §14) and bit-rots the crashed node's disk before the restart:
/// recovery must *detect* the damage and degrade (previous-checkpoint
/// fallback or wire re-replication), so MTTR now also sweeps corruption
/// probability x scrub rate — the scrubber repairs residual damage from
/// the surviving replica after the node is back.
///
/// Both grids are virtual-clock deterministic; their MTTR cells are
/// recorded with unit "s" and gated by perf_gate.sh stage 2 against
/// bench/baselines/BENCH_recovery_mttr.json (--unit=s --no-normalize).
///
/// Output: MTTR tables + bench_out CSVs (recovery_mttr.csv,
/// recovery_mttr_corruption.csv) + one nominal cell's telemetry dump
/// (recovery_mttr_metrics.json / _events.txt).

#include <algorithm>
#include <cstdio>
#include <functional>
#include <iostream>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "cluster/engine.h"
#include "common/rng.h"
#include "common/table_writer.h"
#include "durability/content_store.h"
#include "sim/simulator.h"
#include "storage/schema.h"
#include "txn/procedure.h"

using namespace pstore;

namespace {

constexpr double kCrashSecond = 10.0;
constexpr double kCorruptSecond = 11.0;
constexpr double kRestartSecond = 12.0;
constexpr double kLiveCorruptSecond = 15.0;

struct CellResult {
  double db_size_mb = 0;
  double rebuild_rate_kbps = 0;
  double mttr_s = -1;          ///< Crash -> k-safety restored.
  double replay_s = 0;         ///< Restart -> node back up.
  double baseline_tps = 0;     ///< Mean committed/s before the crash.
  double dip_tps = 0;          ///< Worst committed/s after the crash.
  int64_t promotions = 0;
  int64_t rebuild_chunks = 0;
  int64_t rows_lost = 0;
  // Durability-grid extras (zero while durability is off).
  int64_t damage_detected = 0;   ///< CRC failures + torn segments found.
  int64_t fallbacks = 0;         ///< Previous-checkpoint recoveries.
  int64_t rereplicates = 0;      ///< Unrecoverable -> wire restores.
  int64_t scrub_repairs = 0;     ///< Damage fixed from a live replica.
  int64_t corrupt_served = 0;    ///< Tripwire; must stay zero.
};

/// Durable-store knobs for the corruption grid. Defaults reproduce the
/// historical counter-modeled run (base grid).
struct DurabilitySetup {
  bool enabled = false;
  double scrub_rate_kbps = 0.0;
  double corruption_p = 0.0;  ///< Bit-rot on the crashed node's disk.
};

/// One (partition size, chunk rate) cell; `telemetry` optionally
/// receives the run's metrics/spans/events.
CellResult RunCell(double db_size_mb, double rebuild_rate_kbps,
                   double seconds, const DurabilitySetup& dura,
                   obs::TelemetryBundle* telemetry) {
  Catalog catalog;
  const TableId table = *catalog.AddTable(Schema(
      "KV", {{"k", ColumnType::kInt64}, {"v", ColumnType::kInt64}}, 0));
  ProcedureRegistry registry;
  const ProcedureId get = *registry.Register(ProcedureDef{
      "Get",
      [table](ExecutionContext& ctx, const TxnRequest& req) {
        TxnResult r;
        auto row = ctx.Get(table, req.key);
        if (!row.ok()) {
          r.status = row.status();
        } else {
          r.rows.push_back(std::move(row).MoveValueUnsafe());
        }
        return r;
      },
      1.0});
  const ProcedureId put = *registry.Register(ProcedureDef{
      "Put",
      [table](ExecutionContext& ctx, const TxnRequest& req) {
        TxnResult r;
        r.status = ctx.Upsert(
            table, Row({Value(req.key), req.args.empty()
                                            ? Value(int64_t{0})
                                            : req.args[0]}));
        return r;
      },
      1.0});

  Simulator sim;
  EngineConfig config;
  config.num_buckets = 64;
  config.partitions_per_node = 2;
  config.max_nodes = 3;
  config.initial_nodes = 3;
  config.txn_service_us_mean = 2000.0;  // 500 txn/s per partition.
  config.txn_service_cv = 0.0;
  config.replication.enabled = true;
  config.replication.k = 1;
  config.replication.db_size_mb = db_size_mb;
  config.replication.rebuild_chunk_kb = 100.0;
  config.replication.rebuild_rate_kbps = rebuild_rate_kbps;
  config.replication.wire_kbps = 102400.0;
  config.replication.checkpoint_period = 5 * kSecond;
  config.replication.durability.enabled = dura.enabled;
  config.replication.durability.scrub_rate_kbps = dura.scrub_rate_kbps;
  ClusterEngine engine(&sim, catalog, registry, config);
  if (telemetry != nullptr && obs::Enabled()) {
    engine.set_telemetry(telemetry->view());
  }
  const int64_t rows = 600;
  for (int64_t k = 0; k < rows; ++k) {
    if (!engine.LoadRow(table, Row({Value(k), Value(k)})).ok()) return {};
  }

  // Steady 400 txn/s, one write in four (writes feed the command log
  // and the synchronous backup applies).
  const double rate_tps = 400.0;
  const auto arrivals = static_cast<int64_t>(rate_tps * seconds);
  for (int64_t i = 0; i < arrivals; ++i) {
    TxnRequest req;
    req.key = (i * 48271) % rows;
    if (i % 4 == 0) {
      req.proc = put;
      req.args.push_back(Value(i));
    } else {
      req.proc = get;
    }
    const SimTime at =
        static_cast<SimTime>(static_cast<double>(i) * 1e6 / rate_tps);
    sim.ScheduleAt(at, [&engine, req]() { engine.Submit(req); });
  }

  // The fault script: crash node 2, restart it two seconds later. With
  // the content store on, bit-rot the crashed node's disk in between so
  // the restart has to detect the damage and degrade.
  sim.ScheduleAt(SecondsToDuration(kCrashSecond),
                 [&engine]() { (void)engine.CrashNode(2); });
  if (dura.enabled && dura.corruption_p > 0.0) {
    sim.ScheduleAt(SecondsToDuration(kCorruptSecond), [&engine, &dura]() {
      Rng rot(0x5ca1ab1e);  // Fixed seed: the grid stays deterministic.
      (void)engine.replication()->content()->CorruptRecords(
          2, &rot, dura.corruption_p);
    });
    // Bit-rot a *live* node too: nothing restarts it, so only the
    // scrubber can find and repair this damage (from the intact
    // replica) — the scrub-rate axis of the grid.
    sim.ScheduleAt(SecondsToDuration(kLiveCorruptSecond),
                   [&engine, &dura]() {
                     Rng rot(0xdecafbad);
                     (void)engine.replication()->content()->CorruptRecords(
                         1, &rot, dura.corruption_p);
                   });
  }
  sim.ScheduleAt(SecondsToDuration(kRestartSecond),
                 [&engine]() { (void)engine.RestartNode(2); });

  // Samplers: committed/s for the goodput dip, and the first virtual
  // time at which every bucket is back at full replication factor.
  std::vector<int64_t> committed_per_s;
  SimTime k_restored_at = -1;
  auto sample = std::make_shared<std::function<void(int64_t)>>();
  *sample = [&](int64_t last_committed) {
    committed_per_s.push_back(engine.txns_committed() - last_committed);
    if (k_restored_at < 0 && sim.Now() >= SecondsToDuration(kCrashSecond) &&
        engine.replication()->degraded_buckets() == 0) {
      k_restored_at = sim.Now();
    }
    if (sim.Now() < SecondsToDuration(seconds)) {
      sim.Schedule(kSecond, [&, c = engine.txns_committed()]() {
        (*sample)(c);
      });
    }
  };
  sim.Schedule(kSecond, [&]() { (*sample)(0); });
  // Tighter probe for the restoration instant (1 s sampling would
  // quantize fast rebuilds to a full second).
  auto probe = std::make_shared<std::function<void()>>();
  *probe = [&]() {
    if (k_restored_at < 0 &&
        engine.replication()->degraded_buckets() == 0) {
      k_restored_at = sim.Now();
    }
    if (k_restored_at < 0 && sim.Now() < SecondsToDuration(seconds)) {
      sim.Schedule(10 * kMillisecond, [&]() { (*probe)(); });
    }
  };
  sim.ScheduleAt(SecondsToDuration(kCrashSecond) + 1,
                 [&]() { (*probe)(); });

  sim.RunUntil(SecondsToDuration(seconds));

  CellResult cell;
  cell.db_size_mb = db_size_mb;
  cell.rebuild_rate_kbps = rebuild_rate_kbps;
  if (k_restored_at >= 0) {
    cell.mttr_s =
        DurationToSeconds(k_restored_at - SecondsToDuration(kCrashSecond));
  }
  cell.replay_s = DurationToSeconds(engine.total_recovery_time());
  const auto crash_idx = static_cast<size_t>(kCrashSecond);
  double base_sum = 0;
  for (size_t i = 1; i < crash_idx && i < committed_per_s.size(); ++i) {
    base_sum += static_cast<double>(committed_per_s[i]);
  }
  cell.baseline_tps = crash_idx > 1 ? base_sum / (crash_idx - 1) : 0;
  cell.dip_tps = cell.baseline_tps;
  for (size_t i = crash_idx;
       i < committed_per_s.size() && i < crash_idx + 5; ++i) {
    cell.dip_tps =
        std::min(cell.dip_tps, static_cast<double>(committed_per_s[i]));
  }
  cell.promotions = engine.replication()->promotions();
  cell.rebuild_chunks = engine.replication()->rebuild_chunks_landed();
  cell.rows_lost = engine.rows_lost();
  if (const durability::ContentDurableStore* store =
          engine.replication()->content()) {
    cell.damage_detected =
        store->crc_failures_detected() + store->torn_segments_detected();
    cell.fallbacks = store->checkpoint_fallbacks();
    cell.rereplicates = store->replays_unrecoverable();
    cell.scrub_repairs = store->scrub_repairs();
    cell.corrupt_served = store->corrupt_records_served();
  }
  // Callback gauges capture the stack-local engine; evaluate them into
  // plain gauges now so the dump in main() cannot call freed state.
  if (telemetry != nullptr) telemetry->metrics.FreezeCallbackGauges();
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  bench::PrintBanner(
      "Recovery MTTR",
      "k-safety restoration time and goodput dip after a crash",
      "promotion failover keeps serving (no bulk teleport); chunked "
      "re-replication restores k at the configured rate, so MTTR scales "
      "with partition size / chunk rate");

  const double seconds = bench::DoubleFlag(argc, argv, "seconds", 30.0);
  const std::vector<double> sizes_mb = {5.0, 20.0, 80.0};
  const std::vector<double> rates_kbps = {1024.0, 10240.0, 102400.0};
  const double nominal_size = 20.0, nominal_rate = 10240.0;

  TableWriter table({"db (MB)", "rate (kB/s)", "MTTR (s)", "replay (s)",
                     "base (txn/s)", "dip (txn/s)", "promotions",
                     "chunks"});
  std::vector<double> size_col, rate_col, mttr_col, replay_col, base_col,
      dip_col, promo_col, chunk_col;
  obs::TelemetryBundle telemetry;
  int failures = 0;
  for (const double size : sizes_mb) {
    for (const double rate : rates_kbps) {
      const bool nominal = size == nominal_size && rate == nominal_rate;
      const CellResult cell = RunCell(size, rate, seconds, DurabilitySetup{},
                                      nominal ? &telemetry : nullptr);
      {
        char name[64];
        std::snprintf(name, sizeof(name), "mttr/db%.0f_rate%.0f", size,
                      rate);
        bench::RecordBenchCase({name, cell.mttr_s, "s", 0.0, 0});
      }
      table.AddRow({TableWriter::Fmt(size, 0), TableWriter::Fmt(rate, 0),
                    TableWriter::Fmt(cell.mttr_s, 3),
                    TableWriter::Fmt(cell.replay_s, 3),
                    TableWriter::Fmt(cell.baseline_tps, 0),
                    TableWriter::Fmt(cell.dip_tps, 0),
                    TableWriter::Fmt(static_cast<double>(cell.promotions),
                                     0),
                    TableWriter::Fmt(
                        static_cast<double>(cell.rebuild_chunks), 0)});
      size_col.push_back(size);
      rate_col.push_back(rate);
      mttr_col.push_back(cell.mttr_s);
      replay_col.push_back(cell.replay_s);
      base_col.push_back(cell.baseline_tps);
      dip_col.push_back(cell.dip_tps);
      promo_col.push_back(static_cast<double>(cell.promotions));
      chunk_col.push_back(static_cast<double>(cell.rebuild_chunks));
      // Acceptance: single crash with k=1 never loses a committed row,
      // k-safety is restored within the run, and replay takes real
      // (nonzero) virtual time.
      if (cell.rows_lost != 0) {
        std::fprintf(stderr, "FAIL: %ld rows lost (db=%.0f rate=%.0f)\n",
                     static_cast<long>(cell.rows_lost), size, rate);
        ++failures;
      }
      if (cell.mttr_s <= 0) {
        std::fprintf(stderr,
                     "FAIL: k-safety never restored (db=%.0f rate=%.0f)\n",
                     size, rate);
        ++failures;
      }
      if (cell.replay_s <= 0) {
        std::fprintf(stderr,
                     "FAIL: recovery replay took no virtual time "
                     "(db=%.0f rate=%.0f)\n",
                     size, rate);
        ++failures;
      }
    }
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape: MTTR grows with partition size and "
               "shrinks with chunk rate; the goodput dip is transient "
               "(promotion, replay and apply work, not data loss).\n";
  bench::WriteCsv("recovery_mttr.csv",
                  {"db_size_mb", "rebuild_rate_kbps", "mttr_s", "replay_s",
                   "baseline_tps", "dip_tps", "promotions",
                   "rebuild_chunks"},
                  {size_col, rate_col, mttr_col, replay_col, base_col,
                   dip_col, promo_col, chunk_col});

  // --- Corruption grid: content-modeled durability on, crashed disk
  // bit-rotted before the restart (DESIGN.md §14). Recovery must detect
  // and degrade; the scrubber repairs what restart left behind.
  std::cout << "\n--- durability on: corruption p x scrub rate (db="
            << nominal_size << " MB, rate=" << nominal_rate << " kB/s)\n\n";
  TableWriter ctable({"corrupt p", "scrub (kB/s)", "MTTR (s)", "replay (s)",
                      "detected", "fallbacks", "rereplicate", "scrubfix"});
  std::vector<double> p_col, scrub_col, cmttr_col, creplay_col, det_col,
      fb_col, rr_col, fix_col;
  const std::vector<double> corruption_ps = {0.05, 0.2, 0.5};
  const std::vector<double> scrub_rates = {0.0, 256.0};
  for (const double p : corruption_ps) {
    for (const double scrub : scrub_rates) {
      DurabilitySetup dura;
      dura.enabled = true;
      dura.scrub_rate_kbps = scrub;
      dura.corruption_p = p;
      const CellResult cell =
          RunCell(nominal_size, nominal_rate, seconds, dura, nullptr);
      ctable.AddRow(
          {TableWriter::Fmt(p, 2), TableWriter::Fmt(scrub, 0),
           TableWriter::Fmt(cell.mttr_s, 3),
           TableWriter::Fmt(cell.replay_s, 3),
           TableWriter::Fmt(static_cast<double>(cell.damage_detected), 0),
           TableWriter::Fmt(static_cast<double>(cell.fallbacks), 0),
           TableWriter::Fmt(static_cast<double>(cell.rereplicates), 0),
           TableWriter::Fmt(static_cast<double>(cell.scrub_repairs), 0)});
      p_col.push_back(p);
      scrub_col.push_back(scrub);
      cmttr_col.push_back(cell.mttr_s);
      creplay_col.push_back(cell.replay_s);
      det_col.push_back(static_cast<double>(cell.damage_detected));
      fb_col.push_back(static_cast<double>(cell.fallbacks));
      rr_col.push_back(static_cast<double>(cell.rereplicates));
      fix_col.push_back(static_cast<double>(cell.scrub_repairs));
      char name[64];
      std::snprintf(name, sizeof(name), "mttr_corruption/p%.2f_scrub%.0f",
                    p, scrub);
      bench::RecordBenchCase({name, cell.mttr_s, "s", 0.0, 0});
      // Acceptance: damage is always *detected* (never silently
      // replayed — the tripwire stays zero), recovery degrades instead
      // of losing data (the surviving replica keeps every committed
      // row), and k-safety still comes back.
      if (cell.corrupt_served != 0) {
        std::fprintf(stderr,
                     "FAIL: %ld corrupt records served (p=%.2f scrub=%.0f)\n",
                     static_cast<long>(cell.corrupt_served), p, scrub);
        ++failures;
      }
      if (cell.damage_detected <= 0) {
        std::fprintf(stderr,
                     "FAIL: corruption went undetected (p=%.2f scrub=%.0f)\n",
                     p, scrub);
        ++failures;
      }
      if (cell.fallbacks + cell.rereplicates <= 0) {
        std::fprintf(
            stderr,
            "FAIL: recovery never degraded despite damage (p=%.2f "
            "scrub=%.0f)\n",
            p, scrub);
        ++failures;
      }
      if (scrub > 0 && cell.scrub_repairs <= 0) {
        std::fprintf(stderr,
                     "FAIL: scrubber repaired nothing on the live node "
                     "(p=%.2f scrub=%.0f)\n",
                     p, scrub);
        ++failures;
      }
      if (scrub == 0 && cell.scrub_repairs != 0) {
        std::fprintf(stderr,
                     "FAIL: scrub repairs with the scrubber off (p=%.2f)\n",
                     p);
        ++failures;
      }
      if (cell.rows_lost != 0) {
        std::fprintf(stderr,
                     "FAIL: %ld rows lost with an intact replica alive "
                     "(p=%.2f scrub=%.0f)\n",
                     static_cast<long>(cell.rows_lost), p, scrub);
        ++failures;
      }
      if (cell.mttr_s <= 0) {
        std::fprintf(stderr,
                     "FAIL: k-safety never restored (p=%.2f scrub=%.0f)\n",
                     p, scrub);
        ++failures;
      }
    }
  }
  ctable.Print(std::cout);
  std::cout << "\nExpected shape: every damaged restart is *detected* and "
               "degrades (wire-limited re-replication, so replay time "
               "jumps vs the intact restart) while MTTR stays flat — "
               "promotion already restored k without the damaged disk. "
               "Detections grow with corruption probability, and a "
               "nonzero scrub rate finds and repairs the live node's "
               "damage from the surviving replica.\n";
  bench::WriteCsv("recovery_mttr_corruption.csv",
                  {"corruption_p", "scrub_rate_kbps", "mttr_s", "replay_s",
                   "damage_detected", "fallbacks", "rereplicates",
                   "scrub_repairs"},
                  {p_col, scrub_col, cmttr_col, creplay_col, det_col, fb_col,
                   rr_col, fix_col});
  bench::WriteRunTelemetry("recovery_mttr", &telemetry);
  return failures == 0 ? 0 : 1;
}
