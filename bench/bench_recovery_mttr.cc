/// Recovery MTTR: mean time to restore k-safety and the goodput dip
/// after a primary crash, as functions of partition size (virtual
/// db_size_mb) and re-replication chunk rate. A 3-node k=1 cluster
/// serves a steady read/write mix; node 2 crashes mid-run (promotion
/// failover, zero committed rows lost), restarts two seconds later
/// (checkpoint + command-log replay on the virtual clock), and chunked
/// re-replication restores every bucket to full replication factor.
///
/// Output: MTTR table + bench_out CSV (recovery_mttr.csv) + one nominal
/// cell's telemetry dump (recovery_mttr_metrics.json / _events.txt).

#include <algorithm>
#include <cstdio>
#include <functional>
#include <iostream>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "cluster/engine.h"
#include "common/table_writer.h"
#include "sim/simulator.h"
#include "storage/schema.h"
#include "txn/procedure.h"

using namespace pstore;

namespace {

constexpr double kCrashSecond = 10.0;
constexpr double kRestartSecond = 12.0;

struct CellResult {
  double db_size_mb = 0;
  double rebuild_rate_kbps = 0;
  double mttr_s = -1;          ///< Crash -> k-safety restored.
  double replay_s = 0;         ///< Restart -> node back up.
  double baseline_tps = 0;     ///< Mean committed/s before the crash.
  double dip_tps = 0;          ///< Worst committed/s after the crash.
  int64_t promotions = 0;
  int64_t rebuild_chunks = 0;
  int64_t rows_lost = 0;
};

/// One (partition size, chunk rate) cell; `telemetry` optionally
/// receives the run's metrics/spans/events.
CellResult RunCell(double db_size_mb, double rebuild_rate_kbps,
                   double seconds, obs::TelemetryBundle* telemetry) {
  Catalog catalog;
  const TableId table = *catalog.AddTable(Schema(
      "KV", {{"k", ColumnType::kInt64}, {"v", ColumnType::kInt64}}, 0));
  ProcedureRegistry registry;
  const ProcedureId get = *registry.Register(ProcedureDef{
      "Get",
      [table](ExecutionContext& ctx, const TxnRequest& req) {
        TxnResult r;
        auto row = ctx.Get(table, req.key);
        if (!row.ok()) {
          r.status = row.status();
        } else {
          r.rows.push_back(std::move(row).MoveValueUnsafe());
        }
        return r;
      },
      1.0});
  const ProcedureId put = *registry.Register(ProcedureDef{
      "Put",
      [table](ExecutionContext& ctx, const TxnRequest& req) {
        TxnResult r;
        r.status = ctx.Upsert(
            table, Row({Value(req.key), req.args.empty()
                                            ? Value(int64_t{0})
                                            : req.args[0]}));
        return r;
      },
      1.0});

  Simulator sim;
  EngineConfig config;
  config.num_buckets = 64;
  config.partitions_per_node = 2;
  config.max_nodes = 3;
  config.initial_nodes = 3;
  config.txn_service_us_mean = 2000.0;  // 500 txn/s per partition.
  config.txn_service_cv = 0.0;
  config.replication.enabled = true;
  config.replication.k = 1;
  config.replication.db_size_mb = db_size_mb;
  config.replication.rebuild_chunk_kb = 100.0;
  config.replication.rebuild_rate_kbps = rebuild_rate_kbps;
  config.replication.wire_kbps = 102400.0;
  config.replication.checkpoint_period = 5 * kSecond;
  ClusterEngine engine(&sim, catalog, registry, config);
  if (telemetry != nullptr && obs::Enabled()) {
    engine.set_telemetry(telemetry->view());
  }
  const int64_t rows = 600;
  for (int64_t k = 0; k < rows; ++k) {
    if (!engine.LoadRow(table, Row({Value(k), Value(k)})).ok()) return {};
  }

  // Steady 400 txn/s, one write in four (writes feed the command log
  // and the synchronous backup applies).
  const double rate_tps = 400.0;
  const auto arrivals = static_cast<int64_t>(rate_tps * seconds);
  for (int64_t i = 0; i < arrivals; ++i) {
    TxnRequest req;
    req.key = (i * 48271) % rows;
    if (i % 4 == 0) {
      req.proc = put;
      req.args.push_back(Value(i));
    } else {
      req.proc = get;
    }
    const SimTime at =
        static_cast<SimTime>(static_cast<double>(i) * 1e6 / rate_tps);
    sim.ScheduleAt(at, [&engine, req]() { engine.Submit(req); });
  }

  // The fault script: crash node 2, restart it two seconds later.
  sim.ScheduleAt(SecondsToDuration(kCrashSecond),
                 [&engine]() { (void)engine.CrashNode(2); });
  sim.ScheduleAt(SecondsToDuration(kRestartSecond),
                 [&engine]() { (void)engine.RestartNode(2); });

  // Samplers: committed/s for the goodput dip, and the first virtual
  // time at which every bucket is back at full replication factor.
  std::vector<int64_t> committed_per_s;
  SimTime k_restored_at = -1;
  auto sample = std::make_shared<std::function<void(int64_t)>>();
  *sample = [&](int64_t last_committed) {
    committed_per_s.push_back(engine.txns_committed() - last_committed);
    if (k_restored_at < 0 && sim.Now() >= SecondsToDuration(kCrashSecond) &&
        engine.replication()->degraded_buckets() == 0) {
      k_restored_at = sim.Now();
    }
    if (sim.Now() < SecondsToDuration(seconds)) {
      sim.Schedule(kSecond, [&, c = engine.txns_committed()]() {
        (*sample)(c);
      });
    }
  };
  sim.Schedule(kSecond, [&]() { (*sample)(0); });
  // Tighter probe for the restoration instant (1 s sampling would
  // quantize fast rebuilds to a full second).
  auto probe = std::make_shared<std::function<void()>>();
  *probe = [&]() {
    if (k_restored_at < 0 &&
        engine.replication()->degraded_buckets() == 0) {
      k_restored_at = sim.Now();
    }
    if (k_restored_at < 0 && sim.Now() < SecondsToDuration(seconds)) {
      sim.Schedule(10 * kMillisecond, [&]() { (*probe)(); });
    }
  };
  sim.ScheduleAt(SecondsToDuration(kCrashSecond) + 1,
                 [&]() { (*probe)(); });

  sim.RunUntil(SecondsToDuration(seconds));

  CellResult cell;
  cell.db_size_mb = db_size_mb;
  cell.rebuild_rate_kbps = rebuild_rate_kbps;
  if (k_restored_at >= 0) {
    cell.mttr_s =
        DurationToSeconds(k_restored_at - SecondsToDuration(kCrashSecond));
  }
  cell.replay_s = DurationToSeconds(engine.total_recovery_time());
  const auto crash_idx = static_cast<size_t>(kCrashSecond);
  double base_sum = 0;
  for (size_t i = 1; i < crash_idx && i < committed_per_s.size(); ++i) {
    base_sum += static_cast<double>(committed_per_s[i]);
  }
  cell.baseline_tps = crash_idx > 1 ? base_sum / (crash_idx - 1) : 0;
  cell.dip_tps = cell.baseline_tps;
  for (size_t i = crash_idx;
       i < committed_per_s.size() && i < crash_idx + 5; ++i) {
    cell.dip_tps =
        std::min(cell.dip_tps, static_cast<double>(committed_per_s[i]));
  }
  cell.promotions = engine.replication()->promotions();
  cell.rebuild_chunks = engine.replication()->rebuild_chunks_landed();
  cell.rows_lost = engine.rows_lost();
  // Callback gauges capture the stack-local engine; evaluate them into
  // plain gauges now so the dump in main() cannot call freed state.
  if (telemetry != nullptr) telemetry->metrics.FreezeCallbackGauges();
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  bench::PrintBanner(
      "Recovery MTTR",
      "k-safety restoration time and goodput dip after a crash",
      "promotion failover keeps serving (no bulk teleport); chunked "
      "re-replication restores k at the configured rate, so MTTR scales "
      "with partition size / chunk rate");

  const double seconds = bench::DoubleFlag(argc, argv, "seconds", 30.0);
  const std::vector<double> sizes_mb = {5.0, 20.0, 80.0};
  const std::vector<double> rates_kbps = {1024.0, 10240.0, 102400.0};
  const double nominal_size = 20.0, nominal_rate = 10240.0;

  TableWriter table({"db (MB)", "rate (kB/s)", "MTTR (s)", "replay (s)",
                     "base (txn/s)", "dip (txn/s)", "promotions",
                     "chunks"});
  std::vector<double> size_col, rate_col, mttr_col, replay_col, base_col,
      dip_col, promo_col, chunk_col;
  obs::TelemetryBundle telemetry;
  int failures = 0;
  for (const double size : sizes_mb) {
    for (const double rate : rates_kbps) {
      const bool nominal = size == nominal_size && rate == nominal_rate;
      const CellResult cell =
          RunCell(size, rate, seconds, nominal ? &telemetry : nullptr);
      table.AddRow({TableWriter::Fmt(size, 0), TableWriter::Fmt(rate, 0),
                    TableWriter::Fmt(cell.mttr_s, 3),
                    TableWriter::Fmt(cell.replay_s, 3),
                    TableWriter::Fmt(cell.baseline_tps, 0),
                    TableWriter::Fmt(cell.dip_tps, 0),
                    TableWriter::Fmt(static_cast<double>(cell.promotions),
                                     0),
                    TableWriter::Fmt(
                        static_cast<double>(cell.rebuild_chunks), 0)});
      size_col.push_back(size);
      rate_col.push_back(rate);
      mttr_col.push_back(cell.mttr_s);
      replay_col.push_back(cell.replay_s);
      base_col.push_back(cell.baseline_tps);
      dip_col.push_back(cell.dip_tps);
      promo_col.push_back(static_cast<double>(cell.promotions));
      chunk_col.push_back(static_cast<double>(cell.rebuild_chunks));
      // Acceptance: single crash with k=1 never loses a committed row,
      // k-safety is restored within the run, and replay takes real
      // (nonzero) virtual time.
      if (cell.rows_lost != 0) {
        std::fprintf(stderr, "FAIL: %ld rows lost (db=%.0f rate=%.0f)\n",
                     static_cast<long>(cell.rows_lost), size, rate);
        ++failures;
      }
      if (cell.mttr_s <= 0) {
        std::fprintf(stderr,
                     "FAIL: k-safety never restored (db=%.0f rate=%.0f)\n",
                     size, rate);
        ++failures;
      }
      if (cell.replay_s <= 0) {
        std::fprintf(stderr,
                     "FAIL: recovery replay took no virtual time "
                     "(db=%.0f rate=%.0f)\n",
                     size, rate);
        ++failures;
      }
    }
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape: MTTR grows with partition size and "
               "shrinks with chunk rate; the goodput dip is transient "
               "(promotion, replay and apply work, not data loss).\n";
  bench::WriteCsv("recovery_mttr.csv",
                  {"db_size_mb", "rebuild_rate_kbps", "mttr_s", "replay_s",
                   "baseline_tps", "dip_tps", "promotions",
                   "rebuild_chunks"},
                  {size_col, rate_col, mttr_col, replay_col, base_col,
                   dip_col, promo_col, chunk_col});
  bench::WriteRunTelemetry("recovery_mttr", &telemetry);
  return failures == 0 ? 0 : 1;
}
