/// Micro-benchmarks (google-benchmark) for the hot components: the DP
/// planner (runs every control interval online), SPAR fit/predict/refit,
/// the migration schedule generator, partition-map assignment and
/// rebalancing, and the engine's transaction path on the virtual clock.
///
/// Unlike the figure harnesses, this binary measures *wall-clock* cost,
/// so its output feeds the regression gate: a custom reporter collects
/// every case into bench_out/BENCH_micro_perf.json (schema in
/// bench_util.h) and tools/bench_compare diffs that against the
/// committed baseline in bench/baselines/.

#include <benchmark/benchmark.h>

#include <cmath>
#include <vector>

#include "bench_util.h"
#include "cluster/engine.h"
#include "common/rng.h"
#include "core/reactive_controller.h"
#include "migration/migration_executor.h"
#include "migration/parallel_schedule.h"
#include "obs/telemetry.h"
#include "planner/dp_planner.h"
#include "prediction/spar.h"
#include "sim/simulator.h"
#include "storage/partition_map.h"
#include "storage/schema.h"
#include "txn/procedure.h"

namespace pstore {
namespace {

MoveModelConfig PlannerConfig() {
  MoveModelConfig config;
  config.q = 285.0;
  config.partitions_per_node = 6;
  config.d_minutes = 85.0;
  config.interval_minutes = 5.0;
  return config;
}

void BM_DpPlannerSineHorizon(benchmark::State& state) {
  const int32_t horizon = static_cast<int32_t>(state.range(0));
  DpPlanner planner((MoveModel(PlannerConfig())));
  std::vector<double> load(static_cast<size_t>(horizon) + 1);
  for (size_t t = 0; t < load.size(); ++t) {
    load[t] = 1500 + 1200 * std::sin(0.3 * static_cast<double>(t));
  }
  const int32_t n0 = planner.NodesForLoad(load[0]);
  for (auto _ : state) {
    benchmark::DoNotOptimize(planner.BestMoves(load, n0));
  }
}
BENCHMARK(BM_DpPlannerSineHorizon)->Arg(12)->Arg(24)->Arg(56)->Arg(288);

void BM_SparPredict(benchmark::State& state) {
  SparConfig config;
  config.period = 288;
  config.num_periods = 7;
  config.num_recent = 6;
  std::vector<double> series(288 * 30);
  for (size_t t = 0; t < series.size(); ++t) {
    series[t] = 100 + 50 * std::sin(2 * M_PI * (t % 288) / 288.0);
  }
  SparPredictor predictor(config);
  if (!predictor.Fit(series, 12).ok()) state.SkipWithError("fit failed");
  const int64_t t = static_cast<int64_t>(series.size()) - 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(predictor.Forecast(series, t, 12));
  }
}
BENCHMARK(BM_SparPredict);

void BM_SparFit(benchmark::State& state) {
  SparConfig config;
  config.period = 288;
  config.num_periods = 7;
  config.num_recent = 6;
  std::vector<double> series(288 * 28);
  for (size_t t = 0; t < series.size(); ++t) {
    series[t] = 100 + 50 * std::sin(2 * M_PI * (t % 288) / 288.0);
  }
  for (auto _ : state) {
    SparPredictor predictor(config);
    benchmark::DoNotOptimize(predictor.Fit(series, 4));
  }
}
BENCHMARK(BM_SparFit);

// One predictive-controller refit tick: the model was fitted up to slot
// L, six new measurements arrived, Refit must absorb them. Starts each
// iteration from a copy of the same fitted predictor so every tick does
// identical work.
void BM_SparRefitTick(benchmark::State& state) {
  SparConfig config;
  config.period = 288;
  config.num_periods = 7;
  config.num_recent = 6;
  std::vector<double> series(288 * 28);
  for (size_t t = 0; t < series.size(); ++t) {
    series[t] = 100 + 50 * std::sin(2 * M_PI * (t % 288) / 288.0);
  }
  std::vector<double> prefix(series.begin(), series.end() - 6);
  SparPredictor fitted(config);
  if (!fitted.Fit(prefix, 4).ok()) state.SkipWithError("fit failed");
  for (auto _ : state) {
    SparPredictor predictor = fitted;
    benchmark::DoNotOptimize(predictor.Refit(series, 4));
  }
}
BENCHMARK(BM_SparRefitTick);

void BM_BuildMoveSchedule(benchmark::State& state) {
  const int32_t a = static_cast<int32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildMoveSchedule(3, a));
  }
}
BENCHMARK(BM_BuildMoveSchedule)->Arg(14)->Arg(40);

// Full (before, after) sweep of the schedule generator, covering both
// scale-out and scale-in shapes at the sizes the controllers request.
void BM_MigrationScheduleGeneration(benchmark::State& state) {
  const int32_t b = static_cast<int32_t>(state.range(0));
  const int32_t a = static_cast<int32_t>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildMoveSchedule(b, a));
  }
}
BENCHMARK(BM_MigrationScheduleGeneration)
    ->Args({3, 14})
    ->Args({14, 3})
    ->Args({6, 40})
    ->Args({14, 84});

void BM_PartitionMapRebalance(benchmark::State& state) {
  PartitionMap map(1024, 18);
  for (auto _ : state) {
    benchmark::DoNotOptimize(map.Rebalanced(84));
  }
}
BENCHMARK(BM_PartitionMapRebalance);

// Assignment churn: the per-bucket update path that crash failover and
// migration hammer (a failover reassigns every bucket of a dead node).
void BM_PartitionMapAssign(benchmark::State& state) {
  constexpr int32_t kBuckets = 1024;
  constexpr int32_t kPartitions = 84;
  PartitionMap map(kBuckets, kPartitions);
  Rng rng(7);
  for (auto _ : state) {
    for (int32_t i = 0; i < kBuckets; ++i) {
      const BucketId b = static_cast<BucketId>(rng.NextBounded(kBuckets));
      const PartitionId p =
          static_cast<PartitionId>(rng.NextBounded(kPartitions));
      map.Assign(b, p);
    }
    benchmark::DoNotOptimize(map.PartitionOfBucket(0));
  }
  state.SetItemsProcessed(state.iterations() * kBuckets);
}
BENCHMARK(BM_PartitionMapAssign);

struct EngineFixture {
  Simulator sim;
  ProcedureId put{};
  std::unique_ptr<ClusterEngine> engine;

  EngineFixture() {
    Catalog catalog;
    const TableId table = *catalog.AddTable(Schema(
        "KV", {{"k", ColumnType::kInt64}, {"v", ColumnType::kInt64}}, 0));
    ProcedureRegistry registry;
    put = *registry.Register(ProcedureDef{
        "Put",
        [table](ExecutionContext& ctx, const TxnRequest& req) {
          TxnResult r;
          r.status = ctx.Upsert(table,
                                Row({Value(req.key), Value(int64_t{1})}));
          return r;
        },
        1.0});
    EngineConfig config;
    config.num_buckets = 1024;
    config.partitions_per_node = 6;
    config.max_nodes = 4;
    config.initial_nodes = 4;
    config.txn_service_us_mean = 100.0;
    config.txn_service_cv = 0.1;
    engine = std::make_unique<ClusterEngine>(&sim, catalog, registry, config);
  }
};

void BM_EngineTxnPath(benchmark::State& state) {
  EngineFixture fx;
  int64_t key = 0;
  for (auto _ : state) {
    TxnRequest req;
    req.proc = fx.put;
    req.key = ++key;
    fx.engine->Submit(std::move(req));
    fx.sim.RunUntil(fx.sim.Now() + 200);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EngineTxnPath);

// Group intake: 64 transactions arrive at the same instant and the
// engine drains them — the shape the admission path sees at high load.
void BM_EngineTxnPathBatch(benchmark::State& state) {
  constexpr int64_t kBatch = 64;
  EngineFixture fx;
  int64_t key = 0;
  for (auto _ : state) {
    std::vector<TxnRequest> reqs(kBatch);
    for (TxnRequest& req : reqs) {
      req.proc = fx.put;
      req.key = ++key;
    }
    fx.engine->SubmitBatch(std::move(reqs));
    fx.sim.RunUntil(fx.sim.Now() + kBatch * 200);
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_EngineTxnPathBatch);

// One reactive-controller monitor tick over a live engine: sample the
// submitted-rate counters, smooth, compare against the watermarks. The
// watermarks are pinned so no tick ever triggers a migration — this
// isolates the recurring monitoring cost every elastic run pays.
void BM_ControllerTick(benchmark::State& state) {
  EngineFixture fx;
  MigrationOptions migration;
  migration.chunk_kb = 100;
  migration.rate_kbps = 10000;
  migration.wire_kbps = 100000;
  migration.db_size_mb = 10;
  MigrationExecutor migrator(fx.engine.get(), migration);
  ReactiveConfig reactive;
  reactive.q = 100.0;
  reactive.q_hat = 125.0;
  reactive.monitor_period = kSecond;
  reactive.low_watermark = 0.0;  // Never scale in from the idle load.
  ReactiveController controller(fx.engine.get(), &migrator, reactive);
  controller.Start();
  int64_t key = 0;
  for (auto _ : state) {
    TxnRequest req;
    req.proc = fx.put;
    req.key = ++key;
    fx.engine->Submit(std::move(req));
    fx.sim.RunUntil(fx.sim.Now() + reactive.monitor_period);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ControllerTick);

// The engine txn path with a TxnTraceRecorder attached, at sampling
// rate range(0)%. Rate 0 is the default-off configuration and must cost
// the same as BM_EngineTxnPath (one cached-null pointer test); rate 100
// bounds the worst-case per-txn tracing overhead. The record cap keeps
// memory flat once the trace fills; later samples take the counted-drop
// path, which is the steady state of a long traced run.
void BM_ObsSamplingOverhead(benchmark::State& state) {
  EngineFixture fx;
  obs::TelemetryBundle telemetry;
  obs::TxnTraceRecorder::Config tc;
  tc.sample_rate = static_cast<double>(state.range(0)) / 100.0;
  tc.max_records = 1 << 16;
  telemetry.txn_traces.Configure(tc);
  fx.engine->set_telemetry(telemetry.view());
  int64_t key = 0;
  for (auto _ : state) {
    TxnRequest req;
    req.proc = fx.put;
    req.key = ++key;
    fx.engine->Submit(std::move(req));
    fx.sim.RunUntil(fx.sim.Now() + 200);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsSamplingOverhead)->Arg(0)->Arg(100);

/// Console output as usual, plus every per-iteration run collected as a
/// BenchCaseResult for the JSON result file the regression gate reads.
class JsonCollectingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      bench::BenchCaseResult result;
      result.name = run.benchmark_name();
      result.value = run.GetAdjustedRealTime();  // default unit: ns/op
      result.unit = "ns/op";
      const auto it = run.counters.find("items_per_second");
      if (it != run.counters.end()) result.items_per_s = it->second;
      result.iterations = static_cast<int64_t>(run.iterations);
      cases_.push_back(std::move(result));
    }
    ConsoleReporter::ReportRuns(runs);
  }

  const std::vector<bench::BenchCaseResult>& cases() const { return cases_; }

 private:
  std::vector<bench::BenchCaseResult> cases_;
};

}  // namespace
}  // namespace pstore

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  pstore::JsonCollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (!pstore::bench::WriteBenchJson("micro_perf", "perf",
                                     reporter.cases())) {
    return 1;
  }
  return 0;
}
