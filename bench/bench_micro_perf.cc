/// Micro-benchmarks (google-benchmark) for the hot components: the DP
/// planner (runs every control interval online), SPAR prediction, the
/// migration schedule generator, partition-map rebalancing, and the
/// engine's transaction path on the virtual clock.

#include <benchmark/benchmark.h>

#include <cmath>
#include <vector>

#include "cluster/engine.h"
#include "migration/parallel_schedule.h"
#include "planner/dp_planner.h"
#include "prediction/spar.h"
#include "sim/simulator.h"
#include "storage/partition_map.h"
#include "storage/schema.h"
#include "txn/procedure.h"

namespace pstore {
namespace {

MoveModelConfig PlannerConfig() {
  MoveModelConfig config;
  config.q = 285.0;
  config.partitions_per_node = 6;
  config.d_minutes = 85.0;
  config.interval_minutes = 5.0;
  return config;
}

void BM_DpPlannerSineHorizon(benchmark::State& state) {
  const int32_t horizon = static_cast<int32_t>(state.range(0));
  DpPlanner planner((MoveModel(PlannerConfig())));
  std::vector<double> load(static_cast<size_t>(horizon) + 1);
  for (size_t t = 0; t < load.size(); ++t) {
    load[t] = 1500 + 1200 * std::sin(0.3 * static_cast<double>(t));
  }
  const int32_t n0 = planner.NodesForLoad(load[0]);
  for (auto _ : state) {
    benchmark::DoNotOptimize(planner.BestMoves(load, n0));
  }
}
BENCHMARK(BM_DpPlannerSineHorizon)->Arg(12)->Arg(24)->Arg(56);

void BM_SparPredict(benchmark::State& state) {
  SparConfig config;
  config.period = 288;
  config.num_periods = 7;
  config.num_recent = 6;
  std::vector<double> series(288 * 30);
  for (size_t t = 0; t < series.size(); ++t) {
    series[t] = 100 + 50 * std::sin(2 * M_PI * (t % 288) / 288.0);
  }
  SparPredictor predictor(config);
  if (!predictor.Fit(series, 12).ok()) state.SkipWithError("fit failed");
  const int64_t t = static_cast<int64_t>(series.size()) - 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(predictor.Forecast(series, t, 12));
  }
}
BENCHMARK(BM_SparPredict);

void BM_SparFit(benchmark::State& state) {
  SparConfig config;
  config.period = 288;
  config.num_periods = 7;
  config.num_recent = 6;
  std::vector<double> series(288 * 28);
  for (size_t t = 0; t < series.size(); ++t) {
    series[t] = 100 + 50 * std::sin(2 * M_PI * (t % 288) / 288.0);
  }
  for (auto _ : state) {
    SparPredictor predictor(config);
    benchmark::DoNotOptimize(predictor.Fit(series, 4));
  }
}
BENCHMARK(BM_SparFit);

void BM_BuildMoveSchedule(benchmark::State& state) {
  const int32_t a = static_cast<int32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildMoveSchedule(3, a));
  }
}
BENCHMARK(BM_BuildMoveSchedule)->Arg(14)->Arg(40);

void BM_PartitionMapRebalance(benchmark::State& state) {
  PartitionMap map(1024, 18);
  for (auto _ : state) {
    benchmark::DoNotOptimize(map.Rebalanced(84));
  }
}
BENCHMARK(BM_PartitionMapRebalance);

void BM_EngineTxnPath(benchmark::State& state) {
  Simulator sim;
  Catalog catalog;
  const TableId table = *catalog.AddTable(Schema(
      "KV", {{"k", ColumnType::kInt64}, {"v", ColumnType::kInt64}}, 0));
  ProcedureRegistry registry;
  const ProcedureId put = *registry.Register(ProcedureDef{
      "Put",
      [table](ExecutionContext& ctx, const TxnRequest& req) {
        TxnResult r;
        r.status = ctx.Upsert(table,
                              Row({Value(req.key), Value(int64_t{1})}));
        return r;
      },
      1.0});
  EngineConfig config;
  config.num_buckets = 1024;
  config.partitions_per_node = 6;
  config.max_nodes = 4;
  config.initial_nodes = 4;
  config.txn_service_us_mean = 100.0;
  config.txn_service_cv = 0.1;
  ClusterEngine engine(&sim, catalog, registry, config);

  int64_t key = 0;
  for (auto _ : state) {
    TxnRequest req;
    req.proc = put;
    req.key = ++key;
    engine.Submit(std::move(req));
    sim.RunUntil(sim.Now() + 200);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EngineTxnPath);

}  // namespace
}  // namespace pstore

BENCHMARK_MAIN();
