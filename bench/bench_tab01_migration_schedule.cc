/// Table 1: "Schedule of parallel migrations when scaling from 3
/// machines to 14 machines." Prints our generated three-phase schedule
/// (11 rounds; a naive block-only schedule needs 12) with the same
/// sender -> receiver notation as the paper.

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "migration/parallel_schedule.h"

using namespace pstore;

int main(int argc, char** argv) {
  bench::PrintBanner(
      "Table 1", "Parallel migration schedule, 3 -> 14 machines",
      "three phases keep all senders busy; 11 rounds vs 12 naive");

  const int32_t b = static_cast<int32_t>(bench::IntFlag(argc, argv, "b", 3));
  const int32_t a = static_cast<int32_t>(bench::IntFlag(argc, argv, "a", 14));
  auto schedule = BuildMoveSchedule(b, a);
  if (!schedule.ok()) {
    std::fprintf(stderr, "%s\n", schedule.status().ToString().c_str());
    return 1;
  }
  std::cout << schedule->ToString();

  const int32_t s = schedule->small_side();
  const int32_t delta = schedule->delta();
  // A naive schedule fills whole blocks of s receivers, then the final
  // partial block with only r receivers (underusing senders):
  // ceil(delta/s - 1) * s full-block rounds + s rounds for the last
  // full block + s rounds for the r stragglers.
  const int32_t r = delta % s;
  const int32_t naive_rounds =
      delta <= s ? s : (delta / s) * s + (r == 0 ? 0 : s);
  std::printf(
      "\nRounds: %zu (three-phase) vs %d (naive blocks) — the paper's "
      "example saves one full round.\n",
      schedule->rounds.size(), naive_rounds);
  std::printf("Average machines allocated during move: %.3f\n",
              schedule->AverageMachines());
  return 0;
}
