/// Figure 12: "Performance of different allocation strategies and values
/// of Q simulated over 4.5 months of B2W's load." Each point is one full
/// simulation; varying Q (or the reactive/simple buffer) traces a
/// capacity-cost curve per strategy. Costs are normalized to the
/// P-Store-SPAR run with default parameters (Q = 65% of saturation,
/// predictions inflated 15%).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "common/table_writer.h"
#include "prediction/spar.h"
#include "sim/strategies.h"
#include "workload/b2w_trace.h"

using namespace pstore;

namespace {

constexpr double kSaturation = 438.0;
constexpr double kQHat = 350.0;  // 80% of saturation
constexpr int32_t kSlot = 5;

CapacitySimConfig SimConfig(double q) {
  CapacitySimConfig config;
  config.move_model.q = q;
  config.move_model.partitions_per_node = 6;
  config.move_model.d_minutes = 85.0;  // 77 min + 10% planning buffer
  config.move_model.interval_minutes = kSlot;
  config.q_hat = kQHat;
  config.max_machines = 40;
  return config;
}

std::vector<double> SlotSeries(const std::vector<double>& minute_load) {
  std::vector<double> slots;
  for (size_t i = 0; i + kSlot <= minute_load.size(); i += kSlot) {
    double acc = 0;
    for (int32_t j = 0; j < kSlot; ++j) acc += minute_load[i + j];
    slots.push_back(acc / kSlot);
  }
  return slots;
}

/// Oracle over the full slot series.
class SlotOracle : public LoadPredictor {
 public:
  explicit SlotOracle(std::vector<double> slots) : slots_(std::move(slots)) {}
  std::string name() const override { return "Oracle"; }
  Status Fit(const std::vector<double>&, int32_t) override {
    return Status::OK();
  }
  int64_t MinHistory() const override { return 0; }
  Result<std::vector<double>> Forecast(const std::vector<double>&, int64_t t,
                                       int32_t horizon) const override {
    std::vector<double> out;
    for (int32_t h = 1; h <= horizon; ++h) {
      const int64_t idx = t + h;
      out.push_back(idx < static_cast<int64_t>(slots_.size())
                        ? slots_[static_cast<size_t>(idx)]
                        : slots_.back());
    }
    return out;
  }

 private:
  std::vector<double> slots_;
};

struct Point {
  std::string strategy;
  double knob;  // Q or buffer
  double cost;
  double pct_insufficient;
};

}  // namespace

int main(int argc, char** argv) {
  bench::PrintBanner(
      "Figure 12",
      "Capacity-cost curves over 4.5 months (August-December, with Black "
      "Friday)",
      "P-Store Oracle best, SPAR close behind; reactive needs a big "
      "buffer to be safe; Simple and Static break down");

  // 4.5-month trace at ~2800 txn/s peak.
  auto raw = GenerateB2wTrace(B2wAugustToDecember(20160801));
  if (!raw.ok()) {
    std::fprintf(stderr, "%s\n", raw.status().ToString().c_str());
    return 1;
  }
  double regular_peak = 0;  // peak excluding Black Friday week
  for (size_t i = 0; i < 100u * 1440; ++i) {
    regular_peak = std::max(regular_peak, (*raw)[i]);
  }
  std::vector<double> load(raw->size());
  for (size_t i = 0; i < load.size(); ++i) {
    load[i] = (*raw)[i] / regular_peak * 2800.0;
  }
  const int64_t train_minutes = 28 * 1440;
  const int64_t end_minute = static_cast<int64_t>(load.size());
  const std::vector<double> slots = SlotSeries(load);
  const int64_t sim_minutes = end_minute - train_minutes;

  // Fit SPAR once on the training prefix.
  SparConfig spar_config;
  spar_config.period = 1440 / kSlot;
  spar_config.num_periods = 7;
  spar_config.num_recent = 6;
  const int32_t horizon = 12;
  auto fit_spar = [&]() {
    auto predictor = std::make_unique<SparPredictor>(spar_config);
    std::vector<double> train(slots.begin(),
                              slots.begin() + train_minutes / kSlot);
    Status st = predictor->Fit(train, horizon);
    if (!st.ok()) {
      std::fprintf(stderr, "SPAR fit failed: %s\n", st.ToString().c_str());
      std::exit(1);
    }
    return predictor;
  };

  std::vector<Point> points;
  double default_pstore_cost = -1;

  // --- P-Store (SPAR and Oracle) across Q values ------------------------
  const std::vector<double> q_fractions = {0.45, 0.55, 0.65, 0.75, 0.85};
  for (bool oracle : {false, true}) {
    for (double fq : q_fractions) {
      const double q = kSaturation * fq;
      PStoreStrategyConfig ps;
      ps.move_model = SimConfig(q).move_model;
      ps.horizon_intervals = horizon;
      ps.prediction_inflation = oracle ? 0.0 : 0.15;
      ps.max_machines = 40;
      std::unique_ptr<LoadPredictor> predictor;
      if (oracle) {
        predictor = std::make_unique<SlotOracle>(slots);
      } else {
        predictor = fit_spar();
      }
      PStoreStrategy strategy(ps, std::move(predictor),
                              oracle ? "P-Store Oracle" : "P-Store SPAR");
      CapacitySimulator sim(SimConfig(q));
      auto result = sim.Run(load, &strategy, train_minutes, end_minute);
      if (!result.ok()) {
        std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
        return 1;
      }
      points.push_back(Point{strategy.name(), fq,
                             result->total_machine_minutes,
                             result->pct_time_insufficient});
      if (!oracle && std::fabs(fq - 0.65) < 1e-9) {
        default_pstore_cost = result->total_machine_minutes;
      }
    }
  }

  // --- Reactive across headroom buffers ---------------------------------
  for (double buffer : {0.05, 0.15, 0.30, 0.50, 0.80}) {
    ReactiveStrategyConfig rc;
    rc.q = kSaturation * 0.65;
    rc.q_hat = kQHat;
    rc.headroom = buffer;
    ReactiveStrategy strategy(rc);
    CapacitySimulator sim(SimConfig(rc.q));
    auto result = sim.Run(load, &strategy, train_minutes, end_minute);
    if (!result.ok()) return 1;
    points.push_back(Point{"Reactive", buffer,
                           result->total_machine_minutes,
                           result->pct_time_insufficient});
  }

  // --- Simple (morning/night) across sizing buffers ----------------------
  double train_peak = 0, train_trough = 1e18;
  for (int64_t t = 0; t < train_minutes; ++t) {
    train_peak = std::max(train_peak, load[static_cast<size_t>(t)]);
    train_trough = std::min(train_trough, load[static_cast<size_t>(t)]);
  }
  for (double buffer : {0.0, 0.2, 0.5, 1.0}) {
    const double q = kSaturation * 0.65;
    const int32_t day = static_cast<int32_t>(
        std::ceil(train_peak * (1 + buffer) / q));
    const int32_t night = std::max<int32_t>(
        1, static_cast<int32_t>(std::ceil(train_trough * (1 + buffer) * 3 /
                                          q)));
    SimpleStrategy strategy(day, night, 6.0, 23.0);
    CapacitySimulator sim(SimConfig(q));
    auto result = sim.Run(load, &strategy, train_minutes, end_minute);
    if (!result.ok()) return 1;
    points.push_back(Point{"Simple", buffer, result->total_machine_minutes,
                           result->pct_time_insufficient});
  }

  // --- Static across sizes -----------------------------------------------
  for (int32_t n : {4, 7, 10, 14, 20}) {
    StaticStrategy strategy(n);
    CapacitySimulator sim(SimConfig(kSaturation * 0.65));
    auto result = sim.Run(load, &strategy, train_minutes, end_minute, n);
    if (!result.ok()) return 1;
    points.push_back(Point{"Static", n, result->total_machine_minutes,
                           result->pct_time_insufficient});
  }

  // --- Report -------------------------------------------------------------
  if (default_pstore_cost <= 0) default_pstore_cost = points[2].cost;
  TableWriter table({"strategy", "knob (Q frac / buffer / N)",
                     "cost (normalized)", "% time insufficient"});
  std::vector<double> costs, insufficiencies;
  for (const Point& p : points) {
    table.AddRow({p.strategy, TableWriter::Fmt(p.knob, 2),
                  TableWriter::Fmt(p.cost / default_pstore_cost, 3),
                  TableWriter::Fmt(p.pct_insufficient, 3)});
    costs.push_back(p.cost / default_pstore_cost);
    insufficiencies.push_back(p.pct_insufficient);
  }
  table.Print(std::cout);
  bench::WriteCsv("fig12_capacity_cost.csv",
                  {"cost_normalized", "pct_insufficient"},
                  {costs, insufficiencies});
  std::printf("\nSimulated %lld minutes (~%.1f months) per point, %zu "
              "points.\n",
              static_cast<long long>(sim_minutes),
              static_cast<double>(sim_minutes) / 43200.0, points.size());
  std::cout << "Expected shape: at equal cost, P-Store curves sit below "
               "(fewer insufficient minutes than) Reactive; Simple/Static "
               "need far more cost to get safe because they cannot react "
               "to Black Friday.\n";
  return 0;
}
