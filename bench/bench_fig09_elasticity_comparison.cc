/// Figure 9: "Comparison of elasticity approaches" — the headline
/// end-to-end experiment. Four runs over the same multi-day B2W window
/// at 10x speed: (a) static 10 machines, (b) static 4 machines,
/// (c) reactive (E-Store-style), (d) P-Store with SPAR. Prints each
/// run's throughput/latency/machine series and summary counters; the
/// series land in bench_out/ for plotting.

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "core/experiment.h"

using namespace pstore;

namespace {

ExperimentConfig BaseConfig(int argc, char** argv) {
  ExperimentConfig config;
  config.replay_days =
      static_cast<int32_t>(bench::IntFlag(argc, argv, "days", 2));
  config.train_days =
      static_cast<int32_t>(bench::IntFlag(argc, argv, "train_days", 28));
  config.speedup = bench::DoubleFlag(argc, argv, "speedup", 10.0);
  config.peak_txn_rate =
      bench::DoubleFlag(argc, argv, "peak_txn_rate", 2400.0);
  config.trace = B2wRegularTraffic(
      config.train_days + config.replay_days + 1, 20160715);
  return config;
}

void DumpCsv(const std::string& name, const ExperimentResult& result) {
  std::vector<double> t_s, tput;
  for (size_t w = 0; w < result.throughput_txn_s.size(); ++w) {
    t_s.push_back(static_cast<double>(w) * 10.0);
    tput.push_back(result.throughput_txn_s[w]);
  }
  std::vector<double> lat_t, lat_mean, lat_p99;
  for (const auto& w : result.latency_windows) {
    lat_t.push_back(DurationToSeconds(w.start));
    lat_mean.push_back(w.mean / 1000.0);
    lat_p99.push_back(static_cast<double>(w.p99) / 1000.0);
  }
  bench::WriteCsv("fig09_" + name + "_throughput.csv",
                  {"time_s", "txn_per_s"}, {t_s, tput});
  bench::WriteCsv("fig09_" + name + "_latency.csv",
                  {"time_s", "mean_ms", "p99_ms"},
                  {lat_t, lat_mean, lat_p99});
}

}  // namespace

int main(int argc, char** argv) {
  bench::PrintBanner(
      "Figure 9", "Elasticity approaches on the B2W workload",
      "static-10 wastes machines; static-4 and reactive violate latency; "
      "P-Store reconfigures ahead of load with few violations");

  struct RunSpec {
    ElasticityStrategy strategy;
    int32_t static_nodes;
    const char* tag;
  };
  const RunSpec specs[] = {
      {ElasticityStrategy::kStatic, 10, "static10"},
      {ElasticityStrategy::kStatic, 4, "static4"},
      {ElasticityStrategy::kReactive, 10, "reactive"},
      {ElasticityStrategy::kPStoreSpar, 10, "pstore"},
  };

  for (const RunSpec& spec : specs) {
    ExperimentConfig config = BaseConfig(argc, argv);
    config.strategy = spec.strategy;
    config.static_nodes = spec.static_nodes;
    // Per-run telemetry: controller/migration/cluster metrics sampled
    // every 10 virtual seconds. Disarmed builds skip it entirely, so
    // their figure CSVs stay bit-identical to uninstrumented builds.
    obs::TelemetryBundle telemetry;
    obs::TimeseriesExporter exporter(&telemetry.metrics);
    if (obs::Enabled()) {
      config.telemetry = telemetry.view();
      config.telemetry_exporter = &exporter;
    }
    auto result = RunElasticityExperiment(config);
    if (!result.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", spec.tag,
                   result.status().ToString().c_str());
      return 1;
    }
    if (spec.strategy == ElasticityStrategy::kStatic) {
      std::printf("\n=== (%s) Static allocation, %d machines ===\n",
                  spec.tag, spec.static_nodes);
    }
    bench::PrintExperiment(*result);
    DumpCsv(spec.tag, *result);
    bench::WriteRunTelemetry(std::string("fig09_") + spec.tag, &telemetry,
                             &exporter);
  }

  std::cout << "\nExpected shape (paper Figure 9): the reactive run shows "
               "latency spikes at the start of every load ramp (it "
               "reconfigures at peak capacity); P-Store's capacity line "
               "stays above the throughput curve throughout.\n";
  return 0;
}
