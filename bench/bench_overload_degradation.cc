/// Overload degradation: goodput and tail latency as offered load sweeps
/// past capacity, with overload control off (unbounded FIFO queues) vs
/// on (bounded queues + dequeue deadline + priority shedding). The
/// bounded configuration should hold goodput on a plateau near the
/// node's effective capacity (Section 4's Eq. 7 applied at admission:
/// depth L ~ mu * T) with a bounded p99, while the unbounded one lets
/// queues — and therefore latency — grow without limit, collapsing
/// goodput (completions within the SLO) to zero past saturation.
///
/// Output: goodput-vs-offered-load table + bench_out CSV
/// (overload_degradation.csv).

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/table_writer.h"
#include "sim/simulator.h"
#include "cluster/engine.h"
#include "storage/schema.h"
#include "txn/procedure.h"

using namespace pstore;

namespace {

struct CellResult {
  double offered_tps = 0;
  double goodput_tps = 0;   ///< Commits within the SLO, per offered second.
  double p99_ms = 0;        ///< Over completed transactions.
  double shed_rate = 0;     ///< Shed / submitted.
  int64_t max_depth = 0;    ///< Deepest partition queue ever observed.
};

/// One (load factor, limits on/off) cell: a fresh single-node cluster
/// driven for `seconds` at `offered_tps`, then drained to completion.
CellResult RunCell(double offered_tps, bool limits, double seconds,
                   SimDuration slo) {
  Catalog catalog;
  const TableId table = *catalog.AddTable(Schema(
      "KV", {{"k", ColumnType::kInt64}, {"v", ColumnType::kInt64}}, 0));
  ProcedureRegistry registry;
  const ProcedureId get = *registry.Register(ProcedureDef{
      "Get",
      [table](ExecutionContext& ctx, const TxnRequest& req) {
        TxnResult r;
        auto row = ctx.Get(table, req.key);
        if (!row.ok()) {
          r.status = row.status();
        } else {
          r.rows.push_back(std::move(row).MoveValueUnsafe());
        }
        return r;
      },
      1.0});

  Simulator sim;
  EngineConfig config;
  config.num_buckets = 64;
  config.partitions_per_node = 2;
  config.max_nodes = 1;
  config.initial_nodes = 1;
  config.txn_service_us_mean = 2000.0;  // 500 txn/s/partition, 1000/node
  config.txn_service_cv = 0.0;
  if (limits) {
    config.overload.enabled = true;
    config.overload.max_queue_depth = 16;
    config.overload.queue_deadline = 200 * kMillisecond;
    config.overload.policy = overload::AdmissionPolicy::kPriorityShed;
    // The breaker never trips here: this bench isolates the queue
    // bound + deadline (Eq. 7) — a tripped breaker sheds whole windows
    // and would hide the plateau. Breaker dynamics are exercised by
    // chaos_run --spike and the overload test suite.
    config.overload.breaker.min_samples =
        std::numeric_limits<int64_t>::max();
  }
  ClusterEngine engine(&sim, catalog, registry, config);
  const int64_t rows = 500;
  for (int64_t k = 0; k < rows; ++k) {
    if (!engine.LoadRow(table, Row({Value(k), Value(k)})).ok()) return {};
  }

  int64_t good = 0;
  std::vector<int64_t> latencies_us;
  const int64_t arrivals =
      static_cast<int64_t>(offered_tps * seconds);
  latencies_us.reserve(static_cast<size_t>(arrivals));
  for (int64_t i = 0; i < arrivals; ++i) {
    TxnRequest req;
    req.proc = get;
    req.key = (i * 48271) % rows;
    // Every 10th transaction is checkout-priority: under kPriorityShed
    // it displaces queued background reads instead of being rejected.
    if (i % 10 == 0) req.priority = kPriorityCritical;
    const SimTime at = static_cast<SimTime>(
        static_cast<double>(i) * 1e6 / offered_tps);
    sim.ScheduleAt(at, [&engine, &good, &latencies_us, &sim, req, at,
                        slo]() {
      engine.Submit(req, [&good, &latencies_us, &sim, at,
                          slo](const TxnResult& result) {
        if (result.shed || !result.status.ok()) return;
        const int64_t latency = sim.Now() - at;
        latencies_us.push_back(latency);
        if (latency <= slo) ++good;
      });
    });
  }

  // Offered window, then drain: unbounded queues at 3x load need about
  // 2x the window again to empty at capacity.
  sim.RunUntil(SecondsToDuration(seconds * 4));

  CellResult cell;
  cell.offered_tps = offered_tps;
  cell.goodput_tps = static_cast<double>(good) / seconds;
  if (!latencies_us.empty()) {
    std::sort(latencies_us.begin(), latencies_us.end());
    const size_t idx = static_cast<size_t>(
        0.99 * static_cast<double>(latencies_us.size() - 1));
    cell.p99_ms = static_cast<double>(latencies_us[idx]) / 1000.0;
  }
  cell.shed_rate = engine.txns_submitted() > 0
                       ? static_cast<double>(engine.txns_shed()) /
                             static_cast<double>(engine.txns_submitted())
                       : 0.0;
  for (PartitionId p = 0; p < engine.total_partitions(); ++p) {
    cell.max_depth = std::max(
        cell.max_depth,
        static_cast<int64_t>(engine.executor(p)->max_queue_depth()));
  }
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  bench::PrintBanner(
      "Overload degradation",
      "Goodput and p99 vs offered load, limits off/on",
      "bounded queues + deadline shedding hold goodput near capacity "
      "(Eq. 7: L ~ mu * T); unbounded FIFOs collapse past saturation");

  const double capacity = 1000.0;  // 2 partitions x 500 txn/s
  const double seconds = bench::DoubleFlag(argc, argv, "seconds", 30.0);
  const SimDuration slo = static_cast<SimDuration>(
      bench::DoubleFlag(argc, argv, "slo_ms", 250.0) * 1000.0);

  const std::vector<double> factors = {0.5, 0.75, 1.0, 1.25,
                                       1.5, 2.0,  2.5, 3.0};
  TableWriter table({"offered/cap", "limits", "goodput (txn/s)",
                     "p99 (ms)", "shed rate", "max depth"});
  std::vector<double> factor_col, limits_col, goodput_col, p99_col,
      shed_col, depth_col;
  double plateau = 0;  // best bounded-mode goodput past saturation
  for (const double factor : factors) {
    for (const bool limits : {false, true}) {
      const CellResult cell =
          RunCell(factor * capacity, limits, seconds, slo);
      table.AddRow({TableWriter::Fmt(factor, 2), limits ? "on" : "off",
                    TableWriter::Fmt(cell.goodput_tps, 1),
                    TableWriter::Fmt(cell.p99_ms, 1),
                    TableWriter::Fmt(cell.shed_rate, 3),
                    TableWriter::Fmt(static_cast<double>(cell.max_depth),
                                     0)});
      factor_col.push_back(factor);
      limits_col.push_back(limits ? 1.0 : 0.0);
      goodput_col.push_back(cell.goodput_tps);
      p99_col.push_back(cell.p99_ms);
      shed_col.push_back(cell.shed_rate);
      depth_col.push_back(static_cast<double>(cell.max_depth));
      // Tracked cells for the perf gate (DESIGN.md §12). The grid is
      // virtual-clock deterministic, so these are exact. Goodput is
      // recorded as its inverse (us per good txn) so that a goodput
      // *drop* — the regression we care about — raises the value and
      // trips bench_compare's one-sided threshold.
      const std::string cell_name = std::string("f") +
                                    TableWriter::Fmt(factor, 2) +
                                    (limits ? "_on" : "_off");
      if (cell.goodput_tps > 0) {
        bench::RecordBenchCase({"good_txn_cost/" + cell_name,
                                1e6 / cell.goodput_tps, "us/txn", 0.0, 0});
      }
      bench::RecordBenchCase(
          {"p99/" + cell_name, cell.p99_ms, "ms", 0.0, 0});
      if (limits && factor >= 1.0) {
        plateau = std::max(plateau, cell.goodput_tps);
      }
    }
  }
  table.Print(std::cout);
  std::printf(
      "\nBounded-mode goodput plateau past saturation: %.1f txn/s "
      "(capacity %.0f)\n",
      plateau, capacity);
  bench::WriteCsv("overload_degradation.csv",
                  {"offered_over_capacity", "limits_on", "goodput_tps",
                   "p99_ms", "shed_rate", "max_queue_depth"},
                  {factor_col, limits_col, goodput_col, p99_col, shed_col,
                   depth_col});
  // The acceptance bar: with limits on, goodput past saturation stays
  // within 10% of capacity.
  if (plateau < capacity * 0.9) {
    std::fprintf(stderr,
                 "overload degradation: plateau %.1f below 90%% of "
                 "capacity %.0f\n",
                 plateau, capacity);
    return 1;
  }
  return 0;
}
