/// Figure 7: "Increasing throughput on a single machine." The offered
/// rate ramps up until a single 6-partition node saturates; the paper
/// finds saturation at 438 txn/s and sets Q-hat = 350 (80%) and
/// Q = 285 (65%). Our engine's per-transaction service cost is
/// calibrated to reproduce that saturation point; this bench verifies
/// the calibration end-to-end through the real execution path.

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "common/table_writer.h"
#include "sim/simulator.h"
#include "workload/b2w_client.h"

using namespace pstore;

int main(int argc, char** argv) {
  bench::PrintBanner("Figure 7",
                     "Single-node throughput ramp (6 partitions)",
                     "saturation ~438 txn/s; Q-hat = 350 (80%), Q = 285 "
                     "(65%)");

  const double step_txn = bench::DoubleFlag(argc, argv, "step", 25.0);
  const double max_rate = bench::DoubleFlag(argc, argv, "max_rate", 600.0);
  const double seconds_per_step =
      bench::DoubleFlag(argc, argv, "step_seconds", 30.0);

  Simulator sim;
  Catalog catalog;
  auto tables = RegisterB2wTables(&catalog);
  ProcedureRegistry registry;
  auto procs = RegisterB2wProcedures(&registry, *tables);

  EngineConfig engine_config;  // paper calibration: 13.7 ms, 6 partitions
  engine_config.max_nodes = 1;
  engine_config.initial_nodes = 1;
  ClusterEngine engine(&sim, catalog, registry, engine_config);

  // Staircase trace: each slot holds one offered rate; slot = 10 s of
  // virtual time (speedup 6 compresses a trace minute).
  std::vector<double> staircase;
  const int slots_per_step =
      static_cast<int>(seconds_per_step / 10.0 + 0.5);
  for (double rate = 50.0; rate <= max_rate; rate += step_txn) {
    for (int s = 0; s < slots_per_step; ++s) staircase.push_back(rate);
  }

  B2wClientConfig client_config;
  client_config.speedup = 6.0;  // 10 s slots
  client_config.absolute_scale = 1.0;
  client_config.initial_carts = 20000;
  client_config.initial_checkouts = 8000;
  client_config.initial_stock = 4000;
  B2wClient client(&engine, *tables, *procs, staircase, client_config);
  Status loaded = client.PreloadData();
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.ToString().c_str());
    return 1;
  }

  client.Start(0, static_cast<int64_t>(staircase.size()));
  sim.RunUntil(static_cast<SimDuration>(staircase.size()) * 10 * kSecond +
               5 * kSecond);
  engine.mutable_latencies().Flush(sim.Now());

  // Aggregate per step.
  TableWriter table({"offered (txn/s)", "throughput (txn/s)",
                     "avg latency (ms)", "p99 (ms)"});
  const auto& windows = engine.latencies().windows();
  std::vector<double> offered_col, tput_col, avg_col, p99_col;
  double saturation = 0;
  for (size_t step = 0; step * slots_per_step < staircase.size(); ++step) {
    const double offered = staircase[step * slots_per_step];
    const SimTime begin =
        static_cast<SimTime>(step) * slots_per_step * 10 * kSecond;
    const SimTime end = begin + slots_per_step * 10 * kSecond;
    int64_t count = 0;
    double lat_sum = 0;
    int64_t p99_max = 0;
    for (const auto& w : windows) {
      if (w.start < begin || w.start >= end) continue;
      count += w.count;
      lat_sum += w.mean * static_cast<double>(w.count);
      p99_max = std::max(p99_max, w.p99);
    }
    const double seconds = DurationToSeconds(end - begin);
    const double throughput = static_cast<double>(count) / seconds;
    const double avg_ms =
        count > 0 ? lat_sum / static_cast<double>(count) / 1000.0 : 0;
    table.AddRow({TableWriter::Fmt(offered, 0),
                  TableWriter::Fmt(throughput, 1),
                  TableWriter::Fmt(avg_ms, 1),
                  TableWriter::Fmt(static_cast<double>(p99_max) / 1000.0,
                                   1)});
    offered_col.push_back(offered);
    tput_col.push_back(throughput);
    avg_col.push_back(avg_ms);
    p99_col.push_back(static_cast<double>(p99_max) / 1000.0);
    // Saturation: offered exceeds achieved by >3% or queueing delay
    // dominates service time (the paper's latency knee, Figure 7).
    if (saturation == 0 &&
        (throughput < offered * 0.97 || avg_ms > 200.0)) {
      saturation = offered;
    }
  }
  table.Print(std::cout);
  if (saturation == 0) saturation = max_rate;

  std::printf("\nSaturation point: ~%.0f txn/s (paper: 438)\n", saturation);
  std::printf("Q-hat (80%% of saturation): %.0f txn/s (paper: 350)\n",
              saturation * 0.8);
  std::printf("Q (65%% of saturation):     %.0f txn/s (paper: 285)\n",
              saturation * 0.65);
  bench::WriteCsv("fig07_saturation.csv",
                  {"offered", "throughput", "avg_latency_ms", "p99_ms"},
                  {offered_col, tput_col, avg_col, p99_col});
  return 0;
}
