/// Figure 4: "Servers allocated and effective capacity during migration,
/// assuming one partition per server. Time in units of D." Three cases:
/// 3 -> 5 (all at once), 3 -> 9 (blocks), 3 -> 14 (three phases).
/// For each we print the allocation step function from the migration
/// schedule and Equation 7's effective capacity, both in units of
/// machine-equivalents.

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "common/table_writer.h"
#include "migration/parallel_schedule.h"
#include "planner/move_model.h"

using namespace pstore;

namespace {

void RenderCase(int32_t b, int32_t a) {
  MoveModelConfig config;
  config.q = 1.0;  // capacity in machine-equivalents
  config.partitions_per_node = 1;
  config.d_minutes = 1.0;  // time in units of D
  config.interval_minutes = 0.001;
  MoveModel model(config);

  auto schedule = BuildMoveSchedule(b, a);
  if (!schedule.ok()) {
    std::fprintf(stderr, "schedule failed\n");
    return;
  }
  const double duration_d = model.MoveTimeMinutes(b, a);
  const size_t rounds = schedule->rounds.size();

  std::printf("\nCase %d -> %d: duration %.4f D, %zu rounds, avg machines "
              "%.3f (Algorithm 4: %.3f)\n",
              b, a, duration_d, rounds, schedule->AverageMachines(),
              model.AvgMachinesAllocated(b, a));

  std::vector<double> time_d, allocated, eff_cap;
  const int samples_per_round = 8;
  for (size_t r = 0; r < rounds; ++r) {
    for (int s = 0; s < samples_per_round; ++s) {
      const double f =
          (static_cast<double>(r) + static_cast<double>(s) /
                                        samples_per_round) /
          static_cast<double>(rounds);
      time_d.push_back(f * duration_d);
      allocated.push_back(
          schedule->MachinesDuringRound(static_cast<int32_t>(r)));
      eff_cap.push_back(model.EffectiveCapacity(b, a, f));
    }
  }
  bench::PrintSeries("servers allocated", allocated, 64);
  bench::PrintSeries("effective capacity", eff_cap, 64);

  char name[64];
  std::snprintf(name, sizeof(name), "fig04_case_%d_to_%d.csv", b, a);
  bench::WriteCsv(name, {"time_D", "allocated", "effective_capacity"},
                  {time_d, allocated, eff_cap});
}

}  // namespace

int main() {
  bench::PrintBanner(
      "Figure 4",
      "Servers allocated and effective capacity during migration",
      "cases: 3->5 all-at-once, 3->9 blocks, 3->14 three phases; "
      "effective capacity lags allocation for large moves");
  RenderCase(3, 5);
  RenderCase(3, 9);
  RenderCase(3, 14);
  std::cout << "\nNote how in 3 -> 14 the effective capacity (bottleneck: "
               "the original 3 senders) stays well below the allocated "
               "machine count until late in the move — the reason the "
               "planner uses Equation 7 instead of cap(N).\n";
  return 0;
}
