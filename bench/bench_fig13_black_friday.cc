/// Figure 13: "Actual load on B2W's DB and effective capacity of three
/// allocation strategies simulated over two 4-day periods" — a regular
/// week (left) where even the Simple strategy looks fine, and the Black
/// Friday window (right) where only P-Store keeps capacity above load.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "common/table_writer.h"
#include "prediction/spar.h"
#include "sim/strategies.h"
#include "workload/b2w_trace.h"

using namespace pstore;

namespace {

constexpr double kSaturation = 438.0;
constexpr int32_t kSlot = 5;

CapacitySimConfig SimConfig() {
  CapacitySimConfig config;
  config.move_model.q = kSaturation * 0.65;
  config.move_model.partitions_per_node = 6;
  config.move_model.d_minutes = 85.0;
  config.move_model.interval_minutes = kSlot;
  config.q_hat = kSaturation * 0.8;
  config.max_machines = 40;
  config.record_series = true;
  return config;
}

std::vector<double> Window(const std::vector<double>& series, int64_t begin,
                           int64_t len) {
  return std::vector<double>(
      series.begin() + begin,
      series.begin() + std::min<int64_t>(begin + len,
                                         static_cast<int64_t>(
                                             series.size())));
}

}  // namespace

int main() {
  bench::PrintBanner(
      "Figure 13",
      "Load vs effective capacity: normal 4 days and Black Friday",
      "'Simple' tracks the pattern until the pattern breaks; P-Store "
      "absorbs the Black Friday surge");

  B2wTraceConfig trace_config = B2wAugustToDecember(20160801);
  auto raw = GenerateB2wTrace(trace_config);
  if (!raw.ok()) return 1;
  double regular_peak = 0;
  for (size_t i = 0; i < 100u * 1440; ++i) {
    regular_peak = std::max(regular_peak, (*raw)[i]);
  }
  std::vector<double> load(raw->size());
  for (size_t i = 0; i < load.size(); ++i) {
    load[i] = (*raw)[i] / regular_peak * 2800.0;
  }
  const int64_t train_minutes = 28 * 1440;

  // Slot series + SPAR fit.
  std::vector<double> slots;
  for (size_t i = 0; i + kSlot <= load.size(); i += kSlot) {
    double acc = 0;
    for (int32_t j = 0; j < kSlot; ++j) acc += load[i + j];
    slots.push_back(acc / kSlot);
  }
  SparConfig spar_config;
  spar_config.period = 1440 / kSlot;
  spar_config.num_periods = 7;
  spar_config.num_recent = 6;
  auto spar = std::make_unique<SparPredictor>(spar_config);
  {
    std::vector<double> train(slots.begin(),
                              slots.begin() + train_minutes / kSlot);
    Status st = spar->Fit(train, 12);
    if (!st.ok()) return 1;
  }

  PStoreStrategyConfig ps;
  ps.move_model = SimConfig().move_model;
  ps.horizon_intervals = 12;
  ps.prediction_inflation = 0.15;
  ps.max_machines = 40;
  PStoreStrategy pstore(ps, std::move(spar), "P-Store SPAR");

  // Simple/Static sized from training data the way an operator would:
  // the *typical* (median) daily peak plus a buffer, not the all-time
  // max — promotions already exceed the typical day, and Black Friday
  // exceeds everything (the point of the figure).
  std::vector<double> daily_peaks;
  for (int64_t d = 0; d < train_minutes / 1440; ++d) {
    double peak_of_day = 0;
    for (int64_t m = 0; m < 1440; ++m) {
      peak_of_day = std::max(
          peak_of_day, load[static_cast<size_t>(d * 1440 + m)]);
    }
    daily_peaks.push_back(peak_of_day);
  }
  std::sort(daily_peaks.begin(), daily_peaks.end());
  const double train_peak = daily_peaks[daily_peaks.size() / 2];
  double train_trough = 1e18;
  for (int64_t t = 0; t < train_minutes; ++t) {
    train_trough = std::min(train_trough, load[static_cast<size_t>(t)]);
  }
  const double q = kSaturation * 0.65;
  SimpleStrategy simple(
      static_cast<int32_t>(std::ceil(train_peak * 1.15 / q)),
      std::max<int32_t>(1,
                        static_cast<int32_t>(
                            std::ceil(train_trough * 3.0 / q))),
      6.0, 23.0);
  StaticStrategy static_strategy(
      static_cast<int32_t>(std::ceil(train_peak * 1.15 / q)));

  CapacitySimulator sim(SimConfig());
  const int64_t end_minute = static_cast<int64_t>(load.size());
  auto pstore_run = sim.Run(load, &pstore, train_minutes, end_minute);
  auto simple_run = sim.Run(load, &simple, train_minutes, end_minute);
  auto static_run = sim.Run(load, &static_strategy, train_minutes,
                            end_minute);
  if (!pstore_run.ok() || !simple_run.ok() || !static_run.ok()) return 1;

  // Two 4-day windows relative to the simulated range.
  const int64_t normal_begin = 40 * 1440 - train_minutes;  // a regular week
  const int64_t bf_begin =
      (static_cast<int64_t>(trace_config.black_friday_day) - 2) * 1440 -
      train_minutes;
  const int64_t window_len = 4 * 1440;

  struct Panel {
    const char* name;
    int64_t begin;
  };
  for (const Panel panel : {Panel{"normal_week", normal_begin},
                            Panel{"black_friday", bf_begin}}) {
    std::printf("\n--- %s (4 days) ---\n", panel.name);
    const auto demand =
        Window(load, train_minutes + panel.begin, window_len);
    const auto pstore_cap =
        Window(pstore_run->effective_capacity, panel.begin, window_len);
    const auto simple_cap =
        Window(simple_run->effective_capacity, panel.begin, window_len);
    const auto static_cap =
        Window(static_run->effective_capacity, panel.begin, window_len);
    bench::PrintSeries("actual load", demand);
    bench::PrintSeries("P-Store SPAR capacity", pstore_cap);
    bench::PrintSeries("Simple capacity", simple_cap);
    bench::PrintSeries("Static capacity", static_cap);

    auto deficit_minutes = [&](const std::vector<double>& cap) {
      int64_t n = 0;
      for (size_t i = 0; i < demand.size() && i < cap.size(); ++i) {
        if (demand[i] > cap[i]) ++n;
      }
      return n;
    };
    std::printf(
        "  minutes with insufficient capacity: P-Store=%lld Simple=%lld "
        "Static=%lld\n",
        static_cast<long long>(deficit_minutes(pstore_cap)),
        static_cast<long long>(deficit_minutes(simple_cap)),
        static_cast<long long>(deficit_minutes(static_cap)));
    bench::WriteCsv(std::string("fig13_") + panel.name + ".csv",
                    {"load", "pstore_cap", "simple_cap", "static_cap"},
                    {demand, pstore_cap, simple_cap, static_cap});
  }
  std::cout << "\nExpected shape: on the normal week all three have "
               "capacity above load (Simple looks fine); on Black Friday "
               "only P-Store ramps far enough, Simple and Static fall "
               "below the surge.\n";
  return 0;
}
