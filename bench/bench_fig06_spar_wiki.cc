/// Figure 6: "Evaluation of SPAR's predictions for ... Wikipedia's
/// per-hour page requests" — English and German editions. (a) 60-minute
/// (= 1 slot) ahead predictions over 24 hours; (b) MRE vs tau for 1..6
/// hours. Paper: German error stays under ~10% up to 2 h and ~13% at
/// 6 h; English is more predictable.

#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "common/table_writer.h"
#include "prediction/spar.h"
#include "workload/wiki_trace.h"

using namespace pstore;

namespace {

struct LanguageResult {
  std::vector<double> mre_pct;  // indexed by tau-1
};

LanguageResult RunLanguage(const std::string& name,
                           const WikiTraceConfig& config,
                           int32_t train_days) {
  auto trace = GenerateWikiTrace(config);
  if (!trace.ok()) {
    std::fprintf(stderr, "%s\n", trace.status().ToString().c_str());
    return {};
  }

  SparConfig spar;
  spar.period = 24;      // hourly slots, daily seasonality
  spar.num_periods = 7;  // previous week
  spar.num_recent = 6;   // previous 6 hours
  SparPredictor predictor(spar);
  std::vector<double> train(trace->begin(),
                            trace->begin() + train_days * 24);
  Status fitted = predictor.Fit(train, 6);
  if (!fitted.ok()) {
    std::fprintf(stderr, "fit failed: %s\n", fitted.ToString().c_str());
    return {};
  }

  // (a) one day of tau = 1 h predictions.
  std::vector<double> actual, predicted, hour_axis;
  const int64_t day_start = static_cast<int64_t>(train_days + 2) * 24;
  for (int64_t t = day_start; t < day_start + 24; ++t) {
    auto p = predictor.ForecastAt(*trace, t - 1, 1);
    if (!p.ok()) continue;
    hour_axis.push_back(static_cast<double>(t - day_start));
    actual.push_back((*trace)[static_cast<size_t>(t)]);
    predicted.push_back(*p);
  }
  std::printf("\n(a) %s: 1-hour-ahead predictions over 24 h\n",
              name.c_str());
  bench::PrintSeries("actual (req/hour)", actual);
  bench::PrintSeries("SPAR prediction", predicted);
  bench::WriteCsv("fig06a_" + name + ".csv",
                  {"hour", "actual", "predicted"},
                  {hour_axis, actual, predicted});

  // (b) MRE vs tau.
  LanguageResult result;
  const int64_t eval_begin = static_cast<int64_t>(train_days) * 24;
  const int64_t eval_end = static_cast<int64_t>(trace->size());
  for (int32_t tau = 1; tau <= 6; ++tau) {
    double total = 0;
    int64_t n = 0;
    for (int64_t t = eval_begin; t + tau < eval_end; ++t) {
      auto p = predictor.ForecastAt(*trace, t, tau);
      if (!p.ok()) continue;
      const double a = (*trace)[static_cast<size_t>(t + tau)];
      if (a <= 0) continue;
      total += std::fabs(*p - a) / a;
      ++n;
    }
    result.mre_pct.push_back(100.0 * total / static_cast<double>(n));
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bench::PrintBanner("Figure 6",
                     "SPAR on Wikipedia hourly page views (EN and DE)",
                     "German is less periodic -> higher error; both stay "
                     "useful out to tau = 6 h");
  const int32_t train_days =
      static_cast<int32_t>(bench::IntFlag(argc, argv, "train_days", 28));

  const LanguageResult en =
      RunLanguage("english", WikiEnglish(62), train_days);
  const LanguageResult de = RunLanguage("german", WikiGerman(62), train_days);

  std::cout << "\n(b) prediction accuracy vs forecasting period:\n";
  TableWriter table({"tau (hours)", "English MRE %", "German MRE %"});
  std::vector<double> taus, en_col, de_col;
  for (int32_t tau = 1; tau <= 6; ++tau) {
    const double e = en.mre_pct.empty() ? 0 : en.mre_pct[tau - 1];
    const double d = de.mre_pct.empty() ? 0 : de.mre_pct[tau - 1];
    table.AddRow({TableWriter::Fmt(int64_t{tau}), TableWriter::Fmt(e, 2),
                  TableWriter::Fmt(d, 2)});
    taus.push_back(tau);
    en_col.push_back(e);
    de_col.push_back(d);
  }
  table.Print(std::cout);
  bench::WriteCsv("fig06b_wiki_mre.csv",
                  {"tau_hours", "english_mre_pct", "german_mre_pct"},
                  {taus, en_col, de_col});
  std::cout << "Expected shape: German MRE > English MRE at every tau; "
               "both grow with tau (paper: DE <10% at 2 h, ~13% at 6 h).\n";
  return 0;
}
