/// Ablation: the three-phase migration schedule (Section 4.4.1) vs a
/// naive block-only schedule, across cluster sizes: rounds required
/// (move duration) and average machines allocated (move cost). The
/// paper's 3 -> 14 example saves one round; the saving grows with the
/// remainder r.

#include <algorithm>
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/table_writer.h"
#include "migration/parallel_schedule.h"
#include "planner/move_model.h"

using namespace pstore;

int main() {
  bench::PrintBanner(
      "Ablation (schedule)",
      "Three-phase parallel migration vs naive block schedule",
      "Table 1 / Section 4.4.1: phases keep every sender busy");

  TableWriter table({"move", "3-phase rounds", "naive rounds", "saved",
                     "avg machines (3-phase)", "avg machines (naive)"});

  for (const auto& [b, a] :
       std::initializer_list<std::pair<int32_t, int32_t>>{
           {3, 14}, {3, 11}, {4, 15}, {5, 23}, {2, 9}, {6, 40}, {3, 9},
           {3, 5}}) {
    auto schedule = BuildMoveSchedule(b, a);
    if (!schedule.ok()) return 1;
    const int32_t s = schedule->small_side();
    const int32_t delta = schedule->delta();
    const int32_t r = delta % s;
    // Naive: full blocks of s (each s rounds), then the final r
    // receivers limited to r parallel transfers -> s more rounds.
    const int32_t naive_rounds =
        delta <= s ? s : (delta / s) * s + (r == 0 ? 0 : s);
    // Naive average machines: blocks allocated at block start, the last
    // r machines for the final s rounds.
    double naive_avg;
    if (delta <= s) {
      naive_avg = s + delta;
    } else {
      double total = 0;
      const int32_t full_blocks = delta / s;
      for (int32_t g = 0; g < full_blocks; ++g) {
        total += static_cast<double>(s) * (s + (g + 1) * s);
      }
      if (r != 0) total += static_cast<double>(s) * (s + delta);
      naive_avg = total / naive_rounds;
    }
    const int32_t rounds = static_cast<int32_t>(schedule->rounds.size());
    char move[16];
    std::snprintf(move, sizeof(move), "%d -> %d", b, a);
    table.AddRow({move, TableWriter::Fmt(int64_t{rounds}),
                  TableWriter::Fmt(int64_t{naive_rounds}),
                  TableWriter::Fmt(int64_t{naive_rounds - rounds}),
                  TableWriter::Fmt(schedule->AverageMachines(), 2),
                  TableWriter::Fmt(naive_avg, 2)});
  }
  table.Print(std::cout);
  std::cout << "Saved rounds translate 1:1 into shorter reconfigurations "
               "(each round is D/(P*s*l)); the saving is largest when the "
               "remainder r is close to s.\n";
  return 0;
}
