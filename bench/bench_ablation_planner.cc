/// Ablation: what the planner's two distinctive ingredients buy.
///  (1) Effective-capacity awareness (Equation 7 vs assuming cap(A)
///      immediately): a naive planner schedules scale-outs too late and
///      leaves the system underprovisioned while data is in flight.
///  (2) Scale-in confirmation (3 cycles vs none): without it, noise
///      triggers reconfiguration flapping.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "common/table_writer.h"
#include "planner/dp_planner.h"
#include "prediction/spar.h"
#include "sim/strategies.h"
#include "workload/b2w_trace.h"

using namespace pstore;

namespace {

constexpr double kQ = 285.0;
constexpr int32_t kSlot = 5;

CapacitySimConfig SimConfig() {
  CapacitySimConfig config;
  config.move_model.q = kQ;
  config.move_model.partitions_per_node = 6;
  config.move_model.d_minutes = 85.0;
  config.move_model.interval_minutes = kSlot;
  config.q_hat = 350.0;
  config.max_machines = 40;
  return config;
}

/// A planner-free strategy that sizes for the predicted peak over the
/// *next move duration* but assumes full capacity the moment a move
/// starts (no Equation 7). It mimics P-Store with eff-cap disabled: it
/// starts the scale-out only when the predicted load first exceeds
/// cap(current).
class NaiveCapacityStrategy : public AllocationStrategy {
 public:
  NaiveCapacityStrategy(std::unique_ptr<LoadPredictor> predictor,
                        int32_t horizon)
      : predictor_(std::move(predictor)), horizon_(horizon) {}
  std::string name() const override { return "No-eff-cap planner"; }
  void Reset() override {
    slot_series_.clear();
    slots_filled_ = 0;
  }
  AllocationDecision Decide(const std::vector<double>& load, int64_t minute,
                            int32_t current) override {
    const int64_t complete_slots = minute / kSlot;
    while (slots_filled_ < complete_slots) {
      double acc = 0;
      for (int32_t j = 0; j < kSlot; ++j) {
        acc += load[static_cast<size_t>(slots_filled_ * kSlot + j)];
      }
      slot_series_.push_back(acc / kSlot);
      ++slots_filled_;
    }
    const int64_t t = slots_filled_ - 1;
    if (t < predictor_->MinHistory()) {
      return AllocationDecision{current, 1.0};
    }
    auto forecast = predictor_->Forecast(slot_series_, t, horizon_);
    if (!forecast.ok()) return AllocationDecision{current, 1.0};
    // Naive rule: if the next 2 slots exceed current steady capacity,
    // jump straight to the size the horizon peak needs; if everything
    // fits on fewer machines, shrink. No in-flight capacity modeling.
    const double soon =
        std::max((*forecast)[0], (*forecast)[std::min<size_t>(
                                     1, forecast->size() - 1)]) *
        1.15;
    const double peak =
        *std::max_element(forecast->begin(), forecast->end()) * 1.15;
    if (soon > kQ * current) {
      return AllocationDecision{
          static_cast<int32_t>(std::ceil(peak / kQ)), 1.0};
    }
    if (peak < kQ * (current - 1) * 0.8 && current > 1) {
      return AllocationDecision{current - 1, 1.0};
    }
    return AllocationDecision{current, 1.0};
  }

 private:
  std::unique_ptr<LoadPredictor> predictor_;
  int32_t horizon_;
  std::vector<double> slot_series_;
  int64_t slots_filled_ = 0;
};

}  // namespace

int main() {
  bench::PrintBanner(
      "Ablation (planner)",
      "Effective-capacity awareness and scale-in confirmation",
      "DESIGN.md section 6: the DP's Equation-7 feasibility checks and "
      "the 3-cycle scale-in rule");

  auto raw = GenerateB2wTrace(B2wRegularTraffic(42, 20160715));
  if (!raw.ok()) return 1;
  double peak = 0;
  for (double v : *raw) peak = std::max(peak, v);
  std::vector<double> load(raw->size());
  for (size_t i = 0; i < load.size(); ++i) {
    load[i] = (*raw)[i] / peak * 2800.0;
  }
  const int64_t train_minutes = 28 * 1440;
  std::vector<double> slots;
  for (size_t i = 0; i + kSlot <= load.size(); i += kSlot) {
    double acc = 0;
    for (int32_t j = 0; j < kSlot; ++j) acc += load[i + j];
    slots.push_back(acc / kSlot);
  }
  SparConfig spar_config;
  spar_config.period = 1440 / kSlot;
  spar_config.num_periods = 7;
  spar_config.num_recent = 6;
  auto make_spar = [&]() {
    auto p = std::make_unique<SparPredictor>(spar_config);
    std::vector<double> train(slots.begin(),
                              slots.begin() + train_minutes / kSlot);
    Status st = p->Fit(train, 12);
    if (!st.ok()) std::exit(1);
    return p;
  };

  CapacitySimulator sim(SimConfig());
  const int64_t end = static_cast<int64_t>(load.size());
  TableWriter table({"variant", "cost (machine-min)", "% insufficient",
                     "moves"});

  auto run = [&](AllocationStrategy* strategy) {
    auto result = sim.Run(load, strategy, train_minutes, end);
    if (!result.ok()) std::exit(1);
    table.AddRow({strategy->name(),
                  TableWriter::Fmt(result->total_machine_minutes, 0),
                  TableWriter::Fmt(result->pct_time_insufficient, 3),
                  TableWriter::Fmt(result->moves_started)});
    return *result;
  };

  PStoreStrategyConfig ps;
  ps.move_model = SimConfig().move_model;
  ps.horizon_intervals = 12;
  ps.prediction_inflation = 0.15;
  ps.max_machines = 40;

  PStoreStrategy full(ps, make_spar(), "P-Store (full)");
  auto full_result = run(&full);

  NaiveCapacityStrategy naive(make_spar(), 12);
  auto naive_result = run(&naive);

  PStoreStrategyConfig no_confirm = ps;
  no_confirm.scale_in_confirmations = 1;
  PStoreStrategy flappy(no_confirm, make_spar(),
                        "P-Store (no scale-in confirmation)");
  auto flappy_result = run(&flappy);

  table.Print(std::cout);
  std::printf(
      "\nEffective-capacity ablation: the naive planner has %.2fx the "
      "insufficient minutes of the full planner.\n",
      naive_result.pct_time_insufficient /
          std::max(0.001, full_result.pct_time_insufficient));
  std::printf(
      "Scale-in confirmation ablation: removing it issued %lld moves vs "
      "%lld (reconfiguration flapping).\n",
      static_cast<long long>(flappy_result.moves_started),
      static_cast<long long>(full_result.moves_started));
  return 0;
}
