/// Figure 2: "Ideal capacity and actual servers allocated to handle a
/// sinusoidal demand curve" — the motivating schematic. We generate a
/// sine demand, compute (a) the ideal capacity curve (demand + small
/// buffer) and (b) the integral step allocation ceil(demand * (1+buf)/Q),
/// and report the cost gap between the two.

#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "common/table_writer.h"

using namespace pstore;

int main(int argc, char** argv) {
  bench::PrintBanner("Figure 2",
                     "Ideal capacity vs. integral server allocation",
                     "capacity must follow demand but only in whole servers");

  const double q = bench::DoubleFlag(argc, argv, "q", 285.0);
  const double buffer = bench::DoubleFlag(argc, argv, "buffer", 0.10);
  const int minutes = 2 * 1440;

  std::vector<double> demand(minutes), ideal(minutes), steps(minutes);
  for (int t = 0; t < minutes; ++t) {
    const double phase = 2 * M_PI * (t % 1440) / 1440.0;
    demand[static_cast<size_t>(t)] = 1500.0 - 1200.0 * std::cos(phase);
    ideal[static_cast<size_t>(t)] =
        demand[static_cast<size_t>(t)] * (1 + buffer);
    steps[static_cast<size_t>(t)] =
        std::ceil(ideal[static_cast<size_t>(t)] / q) * q;
  }

  bench::PrintSeries("demand (txn/s)", demand);
  bench::PrintSeries("ideal capacity", ideal);
  bench::PrintSeries("step allocation (servers*Q)", steps);

  double ideal_cost = 0, step_cost = 0, peak_cost = 0;
  double peak = 0;
  for (double v : ideal) peak = std::max(peak, v);
  for (int t = 0; t < minutes; ++t) {
    ideal_cost += ideal[static_cast<size_t>(t)] / q;
    step_cost += steps[static_cast<size_t>(t)] / q;
    peak_cost += std::ceil(peak / q);
  }
  TableWriter table({"allocation", "machine-minutes", "vs ideal"});
  table.AddRow({"ideal (fractional)", TableWriter::Fmt(ideal_cost, 0),
                "1.00x"});
  table.AddRow({"step (integral servers)", TableWriter::Fmt(step_cost, 0),
                TableWriter::Fmt(step_cost / ideal_cost, 2) + "x"});
  table.AddRow({"static peak", TableWriter::Fmt(peak_cost, 0),
                TableWriter::Fmt(peak_cost / ideal_cost, 2) + "x"});
  table.Print(std::cout);
  std::cout << "Shape check: step allocation hugs the demand curve; static "
               "peak wastes ~" << TableWriter::Fmt(
                   100.0 * (peak_cost - step_cost) / peak_cost, 0)
            << "% of machine-minutes.\n";

  bench::WriteCsv("fig02_capacity_steps.csv",
                  {"demand", "ideal", "steps"}, {demand, ideal, steps});
  return 0;
}
