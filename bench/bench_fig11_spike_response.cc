/// Figure 11: "Comparison of two different rates of data movement when
/// P-Store reacts to an unexpected load spike." A flash crowd hits near
/// the daily peak; SPAR cannot anticipate it, the planner goes
/// infeasible, and P-Store falls back to reactive scale-out at rate R
/// (ride it out) or R x 8 (faster but with migration interference).
/// Paper: at R, violations 16/101/143 (p50/p95/p99); at R x 8, 22/44/51.

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/table_writer.h"
#include "core/experiment.h"

using namespace pstore;

int main(int argc, char** argv) {
  bench::PrintBanner(
      "Figure 11", "P-Store reacting to an unexpected load spike",
      "rate R: longer underprovisioning; rate R x 8: shorter but with a "
      "higher transient latency peak — fewer total violation seconds");

  const int32_t train_days =
      static_cast<int32_t>(bench::IntFlag(argc, argv, "train_days", 28));
  TableWriter table({"migration rate", "p50 viol.", "p95 viol.",
                     "p99 viol.", "worst p99 (ms)", "infeasible cycles"});

  for (double multiplier : {1.0, 8.0}) {
    ExperimentConfig config;
    config.strategy = ElasticityStrategy::kPStoreSpar;
    config.replay_days = 1;
    config.train_days = train_days;
    // Spike day: a ~2x flash crowd at 14:00 on the replayed day.
    config.trace = B2wSpikeDay(train_days, 20160901);
    config.trace.spike_boost = 1.0;
    config.controller_overridden = false;
    config.peak_txn_rate =
        bench::DoubleFlag(argc, argv, "peak_txn_rate", 1900.0);
    ExperimentConfig tuned = config;
    // Thread the fallback multiplier through the controller defaults.
    tuned.controller.infeasible_rate_multiplier = multiplier;
    // Per-run telemetry (safety-net trips, forecast error, migration
    // spans); disarmed builds attach nothing.
    obs::TelemetryBundle telemetry;
    obs::TimeseriesExporter exporter(&telemetry.metrics);
    if (obs::Enabled()) {
      tuned.telemetry = telemetry.view();
      tuned.telemetry_exporter = &exporter;
    }
    // RunElasticityExperiment derives controller settings unless
    // overridden; copy the multiplier by marking a partial override.
    auto result = RunElasticityExperiment(tuned);
    if (!result.ok()) {
      std::fprintf(stderr, "run failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    int64_t worst_p99 = 0;
    for (const auto& w : result->latency_windows) {
      worst_p99 = std::max(worst_p99, w.p99);
    }
    char label[32];
    std::snprintf(label, sizeof(label), "Rate R x %.0f", multiplier);
    table.AddRow({label, TableWriter::Fmt(result->violations_p50),
                  TableWriter::Fmt(result->violations_p95),
                  TableWriter::Fmt(result->violations_p99),
                  TableWriter::Fmt(static_cast<double>(worst_p99) / 1000.0,
                                   1),
                  TableWriter::Fmt(result->infeasible_cycles)});
    bench::PrintExperiment(*result);
    char prefix[32];
    std::snprintf(prefix, sizeof(prefix), "fig11_rate_x%.0f", multiplier);
    bench::WriteRunTelemetry(prefix, &telemetry, &exporter);
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape: R x 8 ends the violation period sooner "
               "(fewer p95/p99 violation seconds) even though the spike's "
               "instantaneous latency is worse while migrating fast.\n";
  return 0;
}
