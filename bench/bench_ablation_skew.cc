/// Ablation: the skew-manager extension (the paper's future-work item —
/// P-Store assumes uniform load across partitions; E-Store-style hot
/// data relocation covers the cases where that breaks). A flash sale
/// concentrates traffic on a handful of keys; with the skew manager off,
/// their partitions saturate while the cluster has headroom; with it on,
/// the hot buckets are relocated and tail latency recovers.

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/table_writer.h"
#include "core/skew_manager.h"
#include "migration/migration_executor.h"
#include "sim/simulator.h"
#include "workload/b2w_client.h"

using namespace pstore;

namespace {

struct SkewRunResult {
  int64_t p99_us = 0;
  int64_t max_us = 0;
  double max_partition_over_mean = 0;
  int64_t buckets_moved = 0;
};

SkewRunResult RunOne(bool manage_skew) {
  Simulator sim;
  Catalog catalog;
  auto tables = RegisterB2wTables(&catalog);
  ProcedureRegistry registry;
  auto procs = RegisterB2wProcedures(&registry, *tables);

  EngineConfig engine_config;
  engine_config.max_nodes = 4;
  engine_config.initial_nodes = 4;
  ClusterEngine engine(&sim, catalog, registry, engine_config);

  // Uniform background at ~60% of cluster capacity.
  std::vector<double> flat(40, 850.0);
  B2wClientConfig client_config;
  client_config.speedup = 6.0;
  client_config.absolute_scale = 1.0;
  client_config.initial_carts = 20000;
  client_config.initial_checkouts = 8000;
  client_config.initial_stock = 4000;
  B2wClient client(&engine, *tables, *procs, flat, client_config);
  if (!client.PreloadData().ok()) return {};

  MigrationOptions migration;
  MigrationExecutor migrator(&engine, migration);
  SkewManagerConfig skew_config;
  skew_config.monitor_period = 5 * kSecond;
  skew_config.imbalance_threshold = 1.25;
  skew_config.max_buckets_per_cycle = 6;
  skew_config.kb_per_bucket = 1106.0 * 1024.0 / engine_config.num_buckets;
  SkewManager manager(&engine, &migrator, skew_config);
  if (manage_skew) manager.Start();

  client.Start(0, static_cast<int64_t>(flat.size()));

  // Flash sale: three SKU-clusters of carts become scorching hot from
  // t = 30 s (about 25% of all traffic onto 3 buckets).
  Rng rng(4242);
  for (int hot = 0; hot < 3; ++hot) {
    const int64_t hot_cart = 1000 + hot;  // fixed ids -> fixed buckets
    for (int i = 0; i < 12000; ++i) {
      TxnRequest get;
      get.proc = procs->get_cart;
      get.key = hot_cart;
      sim.ScheduleAt(30 * kSecond + static_cast<SimTime>(
                                        rng.NextDouble() * 300 * kSecond),
                     [&engine, get]() { engine.Submit(get); });
    }
    // Seed the hot cart so reads commit.
    TxnRequest seed;
    seed.proc = procs->add_line_to_cart;
    seed.key = hot_cart;
    seed.args = {Value(int64_t{1}), Value(int64_t{99}), Value(int64_t{1}),
                 Value(9.99)};
    engine.Submit(seed);
  }

  sim.RunUntil(SecondsToDuration(400));
  engine.mutable_latencies().Flush(sim.Now());

  SkewRunResult result;
  result.p99_us = engine.latency_histogram().Percentile(99);
  result.max_us = engine.latency_histogram().max();
  result.buckets_moved = manager.buckets_moved();

  const auto& counts = engine.partition_access_counts();
  double mean = 0;
  int64_t max_count = 0;
  for (int32_t p = 0; p < engine.active_partitions(); ++p) {
    mean += static_cast<double>(counts[static_cast<size_t>(p)]);
    max_count = std::max(max_count, counts[static_cast<size_t>(p)]);
  }
  mean /= engine.active_partitions();
  result.max_partition_over_mean =
      mean > 0 ? static_cast<double>(max_count) / mean : 0;
  return result;
}

}  // namespace

int main() {
  bench::PrintBanner(
      "Ablation (skew)",
      "Hot-bucket relocation under a flash sale (future-work extension)",
      "P-Store's uniformity assumption breaks under key skew; E-Store-"
      "style relocation restores balance");

  const SkewRunResult off = RunOne(false);
  const SkewRunResult on = RunOne(true);

  TableWriter table({"variant", "p99 (ms)", "max (ms)",
                     "hottest partition / mean", "buckets relocated"});
  table.AddRow({"skew manager OFF",
                TableWriter::Fmt(off.p99_us / 1000.0, 1),
                TableWriter::Fmt(off.max_us / 1000.0, 1),
                TableWriter::Fmt(off.max_partition_over_mean, 2),
                TableWriter::Fmt(off.buckets_moved)});
  table.AddRow({"skew manager ON",
                TableWriter::Fmt(on.p99_us / 1000.0, 1),
                TableWriter::Fmt(on.max_us / 1000.0, 1),
                TableWriter::Fmt(on.max_partition_over_mean, 2),
                TableWriter::Fmt(on.buckets_moved)});
  table.Print(std::cout);
  std::cout << "Expected shape: with the manager on, the hottest-partition "
               "ratio drops toward 1 and the latency tail shrinks.\n";
  return 0;
}
