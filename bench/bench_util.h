#pragma once

#include <string>
#include <vector>

#include "core/experiment.h"
#include "obs/exporter.h"
#include "obs/telemetry.h"

/// \file bench_util.h
/// Shared output helpers for the figure/table reproduction harnesses.
/// Every bench prints: a banner naming the paper artifact it regenerates,
/// aligned tables with the numbers, and terminal sparklines for series
/// (full series also land in CSV files under bench_out/ for re-plotting).

namespace pstore {
namespace bench {

/// Prints the "=== Figure N: ... ===" banner with context.
void PrintBanner(const std::string& artifact, const std::string& title,
                 const std::string& paper_note);

/// Prints a labeled series as a sparkline plus min/mean/max.
void PrintSeries(const std::string& label, const std::vector<double>& values,
                 size_t width = 72);

/// Writes a CSV of named columns under bench_out/<file>; prints where.
void WriteCsv(const std::string& file,
              const std::vector<std::string>& names,
              const std::vector<std::vector<double>>& columns);

/// Writes one run's telemetry under bench_out/<prefix>_metrics.json,
/// <prefix>_metrics.csv (when an exporter sampled the run) and
/// <prefix>_events.txt. No-op in disarmed (PSTORE_OBS=OFF) builds, so
/// figure CSV output stays bit-identical to uninstrumented builds.
void WriteRunTelemetry(const std::string& prefix,
                       obs::TelemetryBundle* telemetry,
                       const obs::TimeseriesExporter* exporter = nullptr);

// --- Bench result JSON (performance program, DESIGN.md §12) -----------

/// Schema version stamped into every BENCH_*.json file. Bump when the
/// layout changes; tools/bench_compare refuses mismatched versions.
inline constexpr int kBenchJsonSchemaVersion = 1;

/// One recorded case in a BENCH_*.json result file.
struct BenchCaseResult {
  std::string name;
  double value = 0.0;        ///< ns/op for perf cases, metric value else.
  std::string unit;          ///< "ns/op" for cases bench_compare gates.
  double items_per_s = 0.0;  ///< 0 when the case reports no item rate.
  int64_t iterations = 0;    ///< 0 for virtual-clock metric cases.
};

/// Writes a schema-versioned single-run result file to
/// bench_out/BENCH_<bench>.json. `kind` is "perf" (wall-clock ns/op
/// cases, gated by tools/bench_compare) or "metrics" (virtual-clock
/// result summaries, tracked but not gated). Returns false (after
/// printing a warning) when the file cannot be written.
bool WriteBenchJson(const std::string& bench, const std::string& kind,
                    const std::vector<BenchCaseResult>& cases);

/// Banner/series calls feed an in-process collector so every figure
/// harness emits bench_out/BENCH_<slug>.json at exit with zero
/// per-bench changes: PrintBanner names the file (slug of the artifact)
/// and PrintSeries contributes min/mean/max metric cases. Harnesses
/// that want extra cases call RecordBenchCase directly.
void RecordBenchCase(const BenchCaseResult& result);

/// Parses "--key=value" integer flags (returns fallback when absent).
int64_t IntFlag(int argc, char** argv, const std::string& key,
                int64_t fallback);

/// Parses "--key=value" double flags.
double DoubleFlag(int argc, char** argv, const std::string& key,
                  double fallback);

/// Renders one experiment result as the Figure 9-style block: machine
/// allocation, throughput, latency sparklines and summary counters.
void PrintExperiment(const ExperimentResult& result);

}  // namespace bench
}  // namespace pstore
