/// Partition availability: goodput and p99 latency through a network
/// partition, as functions of partition duration and lease timeout. A
/// 3-node k=1 cluster (net substrate enabled) serves a steady read/write
/// mix; at t=10s one node is isolated from the rest of the cluster and
/// the controller for the configured window. Short partitions (below the
/// suspicion timeout) ride out on retransmission alone; long ones walk
/// the fencing chain — suspicion, lease expiry (self-fencing), fenced
/// failover that promotes the isolated node's buckets to reachable
/// backups — so availability during the cut is bounded by the lease
/// timeout, never by the partition length.
///
/// Output: availability table + bench_out CSV
/// (partition_availability.csv) + one nominal cell's telemetry dump.

#include <algorithm>
#include <cstdio>
#include <functional>
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "cluster/engine.h"
#include "common/table_writer.h"
#include "sim/simulator.h"
#include "storage/schema.h"
#include "txn/procedure.h"

using namespace pstore;

namespace {

constexpr double kPartitionSecond = 10.0;
constexpr double kRunSeconds = 45.0;
constexpr double kDrainSeconds = 30.0;
constexpr int64_t kRows = 600;
constexpr double kRateTps = 400.0;

struct CellResult {
  double partition_s = 0;
  double lease_s = 0;
  double baseline_tps = 0;   ///< Mean committed/s before the cut.
  double during_tps = 0;     ///< Mean committed/s while the cut is open.
  double unavailable_s = 0;  ///< Seconds with zero commits, whole run.
  double recovery_s = 0;     ///< Heal -> goodput back at 90% of baseline.
  int64_t p99_steady_us = 0;   ///< Worst per-second p99 before the cut.
  int64_t p99_disrupt_us = 0;  ///< Worst per-second p99 after it opens.
  int64_t suspicions = 0;
  int64_t fenced_failovers = 0;
  int64_t fenced_rejections = 0;
  int64_t fenced_commits = 0;
  int64_t rows_lost = 0;
  int64_t rows_at_end = 0;
  int64_t degraded_at_end = 0;
};

/// One (partition duration, lease timeout) cell. The rest of the timer
/// chain scales with the lease so the configuration stays legal:
/// heartbeat 250ms < lease/2 (suspicion) < lease < 2*lease (failover).
CellResult RunCell(double partition_s, double lease_s,
                   obs::TelemetryBundle* telemetry) {
  Catalog catalog;
  const TableId table = *catalog.AddTable(Schema(
      "KV", {{"k", ColumnType::kInt64}, {"v", ColumnType::kInt64}}, 0));
  ProcedureRegistry registry;
  const ProcedureId get = *registry.Register(ProcedureDef{
      "Get",
      [table](ExecutionContext& ctx, const TxnRequest& req) {
        TxnResult r;
        auto row = ctx.Get(table, req.key);
        if (!row.ok()) {
          r.status = row.status();
        } else {
          r.rows.push_back(std::move(row).MoveValueUnsafe());
        }
        return r;
      },
      1.0});
  const ProcedureId put = *registry.Register(ProcedureDef{
      "Put",
      [table](ExecutionContext& ctx, const TxnRequest& req) {
        TxnResult r;
        r.status = ctx.Upsert(
            table, Row({Value(req.key), req.args.empty()
                                            ? Value(int64_t{0})
                                            : req.args[0]}));
        return r;
      },
      1.0});

  Simulator sim;
  EngineConfig config;
  config.num_buckets = 64;
  config.partitions_per_node = 2;
  config.max_nodes = 3;
  config.initial_nodes = 3;
  config.txn_service_us_mean = 2000.0;  // 500 txn/s per partition.
  config.txn_service_cv = 0.0;
  config.replication.enabled = true;
  config.replication.k = 1;
  config.replication.db_size_mb = 10.0;
  config.replication.rebuild_chunk_kb = 100.0;
  config.replication.rebuild_rate_kbps = 10240.0;
  config.replication.wire_kbps = 102400.0;
  config.replication.checkpoint_period = 5 * kSecond;
  config.net.enabled = true;
  config.net.lease_timeout = SecondsToDuration(lease_s);
  config.net.suspicion_timeout = SecondsToDuration(lease_s / 2.0);
  config.net.failover_timeout = SecondsToDuration(lease_s * 2.0);
  ClusterEngine engine(&sim, catalog, registry, config);
  if (telemetry != nullptr && obs::Enabled()) {
    engine.set_telemetry(telemetry->view());
  }
  for (int64_t k = 0; k < kRows; ++k) {
    if (!engine.LoadRow(table, Row({Value(k), Value(k)})).ok()) return {};
  }

  // Steady load, one write in four (writes feed the synchronous backup
  // applies that the partition must not dual-commit).
  const auto arrivals = static_cast<int64_t>(kRateTps * kRunSeconds);
  for (int64_t i = 0; i < arrivals; ++i) {
    TxnRequest req;
    req.key = (i * 48271) % kRows;
    if (i % 4 == 0) {
      req.proc = put;
      req.args.push_back(Value(i));
    } else {
      req.proc = get;
    }
    const SimTime at =
        static_cast<SimTime>(static_cast<double>(i) * 1e6 / kRateTps);
    sim.ScheduleAt(at, [&engine, req]() { engine.Submit(req); });
  }

  // The fault: isolate node 2 (with its heartbeats) from the rest of
  // the cluster and the controller for the configured window.
  sim.ScheduleAt(SecondsToDuration(kPartitionSecond), [&engine,
                                                      partition_s]() {
    engine.net()->OpenPartition({2}, SecondsToDuration(partition_s));
  });

  // Goodput sampler: committed/s. The engine's latency windows count
  // every completion — fenced rejections included — so they measure
  // client-observed response time, not goodput.
  std::vector<int64_t> committed_per_s;
  auto sample = std::make_shared<std::function<void(int64_t)>>();
  *sample = [&](int64_t last_committed) {
    committed_per_s.push_back(engine.txns_committed() - last_committed);
    if (sim.Now() < SecondsToDuration(kRunSeconds)) {
      sim.Schedule(kSecond, [&, c = engine.txns_committed()]() {
        (*sample)(c);
      });
    }
  };
  sim.Schedule(kSecond, [&]() { (*sample)(0); });

  sim.RunUntil(SecondsToDuration(kRunSeconds));
  // Drain: heal aftermath — heartbeats resume, rebuilds restore k.
  sim.RunUntil(SecondsToDuration(kRunSeconds + kDrainSeconds));
  engine.mutable_latencies().Flush(sim.Now());

  CellResult cell;
  cell.partition_s = partition_s;
  cell.lease_s = lease_s;
  const double heal_second = kPartitionSecond + partition_s;
  // p99 from the engine's per-second latency windows (client-observed
  // response time across commits, aborts and fenced rejections alike).
  for (const auto& w : engine.latencies().windows()) {
    if (DurationToSeconds(w.start) < kPartitionSecond) {
      cell.p99_steady_us = std::max(cell.p99_steady_us, w.p99);
    } else {
      cell.p99_disrupt_us = std::max(cell.p99_disrupt_us, w.p99);
    }
  }
  // Goodput from the committed/s samples: committed_per_s[i] covers
  // virtual second [i, i+1).
  double base_sum = 0;
  size_t base_n = 0;
  for (size_t i = 1; i < committed_per_s.size(); ++i) {
    const auto second = static_cast<double>(i);
    if (second < kPartitionSecond) {
      base_sum += static_cast<double>(committed_per_s[i]);
      ++base_n;
    } else if (second < heal_second) {
      cell.during_tps += static_cast<double>(committed_per_s[i]);
    }
    if (second < kRunSeconds - 1 && committed_per_s[i] == 0) {
      cell.unavailable_s += 1.0;
    }
  }
  cell.baseline_tps = base_n > 0 ? base_sum / static_cast<double>(base_n)
                                 : 0;
  cell.during_tps /= std::max(partition_s, 1.0);
  cell.recovery_s = -1;
  for (size_t i = static_cast<size_t>(kPartitionSecond);
       i < committed_per_s.size(); ++i) {
    if (static_cast<double>(i) >= heal_second &&
        static_cast<double>(committed_per_s[i]) >=
            0.9 * cell.baseline_tps) {
      cell.recovery_s = static_cast<double>(i) - heal_second;
      break;
    }
  }
  cell.suspicions = engine.suspicions();
  cell.fenced_failovers = engine.fenced_failovers();
  cell.fenced_rejections = engine.fenced_rejections();
  cell.fenced_commits = engine.fenced_commits();
  cell.rows_lost = engine.rows_lost();
  cell.rows_at_end = engine.TotalRowCount();
  cell.degraded_at_end = engine.replication()->degraded_buckets();
  if (telemetry != nullptr) telemetry->metrics.FreezeCallbackGauges();
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  bench::PrintBanner(
      "Partition availability",
      "goodput and p99 through a network partition, by partition "
      "duration and lease timeout",
      "fenced failover bounds the outage by the lease chain, not the "
      "partition length: short cuts ride out on retransmission, long "
      "ones promote the isolated node's buckets after it self-fences — "
      "never dual-committing");

  (void)bench::DoubleFlag(argc, argv, "seconds", kRunSeconds);
  const std::vector<double> partition_secs = {1.0, 4.0, 12.0};
  const std::vector<double> lease_secs = {1.0, 2.0, 4.0};
  const double nominal_partition = 12.0, nominal_lease = 2.0;

  TableWriter table({"cut (s)", "lease (s)", "base (txn/s)",
                     "during (txn/s)", "dark (s)", "recover (s)",
                     "p99 pre (ms)", "p99 cut (ms)", "failovers",
                     "rejected"});
  std::vector<double> cut_col, lease_col, base_col, during_col, dark_col,
      recover_col, p99_pre_col, p99_cut_col, suspicion_col, failover_col,
      reject_col;
  obs::TelemetryBundle telemetry;
  int failures = 0;
  for (const double cut : partition_secs) {
    for (const double lease : lease_secs) {
      const bool nominal = cut == nominal_partition &&
                           lease == nominal_lease;
      const CellResult cell =
          RunCell(cut, lease, nominal ? &telemetry : nullptr);
      {
        // Tracked by tools/perf_gate.sh (virtual-clock seconds, gated
        // with --unit=s --no-normalize). recovery_s is -1 when goodput
        // never crossed 90% of baseline; clamp so ratios stay sane.
        char prefix[64];
        std::snprintf(prefix, sizeof(prefix), "avail/cut%.0f_lease%.0f",
                      cut, lease);
        const std::string p(prefix);
        bench::RecordBenchCase(
            {p + "/dark_s", cell.unavailable_s, "s", 0.0, 0});
        bench::RecordBenchCase(
            {p + "/recover_s", std::max(cell.recovery_s, 0.0), "s", 0.0,
             0});
      }
      table.AddRow(
          {TableWriter::Fmt(cut, 0), TableWriter::Fmt(lease, 0),
           TableWriter::Fmt(cell.baseline_tps, 0),
           TableWriter::Fmt(cell.during_tps, 0),
           TableWriter::Fmt(cell.unavailable_s, 0),
           TableWriter::Fmt(cell.recovery_s, 1),
           TableWriter::Fmt(
               static_cast<double>(cell.p99_steady_us) / 1000.0, 1),
           TableWriter::Fmt(
               static_cast<double>(cell.p99_disrupt_us) / 1000.0, 1),
           TableWriter::Fmt(static_cast<double>(cell.fenced_failovers),
                            0),
           TableWriter::Fmt(static_cast<double>(cell.fenced_rejections),
                            0)});
      cut_col.push_back(cut);
      lease_col.push_back(lease);
      base_col.push_back(cell.baseline_tps);
      during_col.push_back(cell.during_tps);
      dark_col.push_back(cell.unavailable_s);
      recover_col.push_back(cell.recovery_s);
      p99_pre_col.push_back(static_cast<double>(cell.p99_steady_us));
      p99_cut_col.push_back(static_cast<double>(cell.p99_disrupt_us));
      suspicion_col.push_back(static_cast<double>(cell.suspicions));
      failover_col.push_back(static_cast<double>(cell.fenced_failovers));
      reject_col.push_back(static_cast<double>(cell.fenced_rejections));
      // Acceptance: the fencing chain never dual-commits, a partition
      // (unlike a crash) never loses committed rows, the cluster heals
      // to full replication factor, and the workload's upserts touch
      // only preloaded keys so the row count is conserved exactly.
      if (cell.fenced_commits != 0) {
        std::fprintf(stderr,
                     "FAIL: %ld fenced commits — split brain "
                     "(cut=%.0f lease=%.0f)\n",
                     static_cast<long>(cell.fenced_commits), cut, lease);
        ++failures;
      }
      if (cell.rows_lost != 0 || cell.rows_at_end != kRows) {
        std::fprintf(stderr,
                     "FAIL: rows lost=%ld at_end=%ld (cut=%.0f "
                     "lease=%.0f)\n",
                     static_cast<long>(cell.rows_lost),
                     static_cast<long>(cell.rows_at_end), cut, lease);
        ++failures;
      }
      if (cell.degraded_at_end != 0) {
        std::fprintf(stderr,
                     "FAIL: %ld buckets still degraded after drain "
                     "(cut=%.0f lease=%.0f)\n",
                     static_cast<long>(cell.degraded_at_end), cut, lease);
        ++failures;
      }
      if (cell.baseline_tps <= 0) {
        std::fprintf(stderr,
                     "FAIL: no baseline goodput (cut=%.0f lease=%.0f)\n",
                     cut, lease);
        ++failures;
      }
    }
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape: cuts shorter than the suspicion "
               "timeout barely dent goodput; cuts past the failover "
               "timeout go dark on the isolated node's buckets for "
               "roughly the lease chain (not the cut length), then "
               "fenced failover restores service from promoted "
               "backups.\n";
  bench::WriteCsv("partition_availability.csv",
                  {"partition_s", "lease_s", "baseline_tps", "during_tps",
                   "unavailable_s", "recovery_s", "p99_steady_us",
                   "p99_disrupt_us", "suspicions", "fenced_failovers",
                   "fenced_rejections"},
                  {cut_col, lease_col, base_col, during_col, dark_col,
                   recover_col, p99_pre_col, p99_cut_col, suspicion_col,
                   failover_col, reject_col});
  bench::WriteRunTelemetry("partition_availability", &telemetry);
  return failures == 0 ? 0 : 1;
}
