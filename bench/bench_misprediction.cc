/// Misprediction robustness (DESIGN.md §16): SLA violations and
/// capacity cost versus flash-crowd surge magnitude for three control
/// modes — predictive-only (forecast trusted blindly), reactive-only
/// (the E-Store baseline), and hybrid (predictive with the
/// forecast-divergence guard armed). Each cell is one deterministic
/// discrete-event simulation of a seasonal load whose forecast the
/// predictor has learned exactly, plus an unforecast multiplicative
/// surge the forecast never sees.
///
/// Expected shape: fault-free (surge 1x) the hybrid matches
/// predictive-only's capacity-cost savings over reactive because the
/// guard never fires; under a surge the hybrid's divergence handoff
/// tracks reactive-only's SLA violations while predictive-only, still
/// believing its stale forecast, scales in mid-surge and bleeds
/// violations.
///
/// Output: per-cell table + bench_out CSV (misprediction.csv) + bench
/// JSON cases. Exits non-zero when the hybrid fails either acceptance
/// bar (within 10% of reactive-only violations under surge; >= 80% of
/// predictive-only's fault-free savings).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "cluster/engine.h"
#include "common/table_writer.h"
#include "core/predictive_controller.h"
#include "core/reactive_controller.h"
#include "migration/migration_executor.h"
#include "prediction/spar.h"
#include "sim/simulator.h"
#include "storage/schema.h"
#include "txn/procedure.h"

using namespace pstore;

namespace {

enum class Mode { kPredictive, kReactive, kHybrid };

const char* ModeName(Mode mode) {
  switch (mode) {
    case Mode::kPredictive: return "predictive";
    case Mode::kReactive: return "reactive";
    case Mode::kHybrid: return "hybrid";
  }
  return "?";
}

constexpr double kBaseRate = 200.0;   ///< Seasonal mean, txn/s.
constexpr double kSwing = 80.0;       ///< Seasonal amplitude, txn/s.
constexpr double kSeasonSec = 60.0;   ///< Seasonal period.
constexpr double kRunSeconds = 150.0;
constexpr double kSurgeStart = 20.0;
constexpr double kSurgeEnd = 80.0;
constexpr SimDuration kSlo = 100 * kMillisecond;

/// Offered seasonal rate at virtual time `t` (seconds). Phase-aligned
/// with the 2 s slot history the predictor is seeded with.
double SeasonalRate(double t) {
  return kBaseRate + kSwing * std::sin(2.0 * M_PI * t / kSeasonSec);
}

struct CellResult {
  int64_t committed = 0;
  int64_t violations = 0;    ///< Commits slower than the SLO.
  double node_seconds = 0;   ///< Integral of active nodes over the run.
  int64_t moves = 0;
  int64_t vetoes = 0;        ///< Hybrid only.
  int64_t repairs = 0;       ///< Hybrid only.
};

/// One (mode, surge) cell: seasonal load for kRunSeconds with a
/// multiplicative surge in [kSurgeStart, kSurgeEnd), then a drain.
CellResult RunCell(Mode mode, double surge) {
  Catalog catalog;
  const TableId table = *catalog.AddTable(Schema(
      "KV", {{"k", ColumnType::kInt64}, {"v", ColumnType::kInt64}}, 0));
  ProcedureRegistry registry;
  const ProcedureId get = *registry.Register(ProcedureDef{
      "Get",
      [table](ExecutionContext& ctx, const TxnRequest& req) {
        TxnResult r;
        auto row = ctx.Get(table, req.key);
        if (!row.ok()) {
          r.status = row.status();
        } else {
          r.rows.push_back(std::move(row).MoveValueUnsafe());
        }
        return r;
      },
      1.0});

  Simulator sim;
  EngineConfig config;
  config.num_buckets = 64;
  config.partitions_per_node = 2;
  config.max_nodes = 8;
  config.initial_nodes = 3;
  // 16 ms per txn x 2 partitions = 125 txn/s per node: the engine's
  // real saturation matches the sizing model's q_hat, so undersized
  // cells genuinely queue and violate the SLO.
  config.txn_service_us_mean = 16000.0;
  config.txn_service_cv = 0.0;
  ClusterEngine engine(&sim, catalog, registry, config);
  const int64_t rows = 200;
  for (int64_t k = 0; k < rows; ++k) {
    if (!engine.LoadRow(table, Row({Value(k), Value(k)})).ok()) return {};
  }

  MigrationOptions migration;
  migration.chunk_kb = 100;
  migration.rate_kbps = 5000;
  migration.wire_kbps = 50000;
  migration.db_size_mb = 10;
  MigrationExecutor migrator(&engine, migration);

  // Both predictive modes share the SPAR model, fitted on four minutes
  // of the exact seasonal signal (2 s slots) — a perfect forecast of
  // everything except the surge.
  SparConfig spar_config;
  spar_config.period = 30;
  spar_config.num_periods = 2;
  spar_config.num_recent = 5;
  SparPredictor spar(spar_config);
  std::unique_ptr<PredictiveController> predictive;
  std::unique_ptr<ReactiveController> reactive;
  if (mode == Mode::kReactive) {
    ReactiveConfig rc;
    rc.q = 100.0;
    rc.q_hat = 125.0;
    rc.high_watermark = 0.9;
    // A reactive-only deployment that must survive unforecast surges
    // carries standing headroom and scales in cautiously (Figure 12:
    // reactive needs a large buffer to be safe) — that buffer is
    // exactly the capacity cost prediction avoids fault-free.
    rc.headroom = 0.50;
    rc.monitor_period = kSecond;
    rc.scale_in_hold = 20 * kSecond;
    reactive = std::make_unique<ReactiveController>(&engine, &migrator, rc);
    reactive->Start();
  } else {
    std::vector<double> history;
    for (int32_t i = 0; i < 120; ++i) {
      history.push_back(kBaseRate +
                        kSwing * std::sin(2.0 * M_PI * i / 30.0));
    }
    ControllerConfig pc;
    pc.move_model.q = 100.0;
    pc.move_model.partitions_per_node = 2;
    pc.move_model.d_minutes = 0.6;
    pc.move_model.interval_minutes = 2.0 / 60.0;
    pc.q_hat = 125.0;
    pc.horizon_intervals = 8;
    pc.prediction_inflation = 0.15;
    pc.guard.enabled = (mode == Mode::kHybrid);
    if (!spar.Fit(history, pc.horizon_intervals).ok()) return {};
    predictive = std::make_unique<PredictiveController>(&engine, &migrator,
                                                        &spar, pc);
    predictive->SeedHistory(std::move(history));
    predictive->Start();
  }

  CellResult cell;
  auto generate = std::make_shared<std::function<void(int64_t)>>();
  *generate = [&sim, &engine, &cell, get, rows, surge,
               self = generate.get()](int64_t i) {
    const double t = static_cast<double>(sim.Now()) / 1e6;
    if (t >= kRunSeconds) return;
    TxnRequest req;
    req.proc = get;
    req.key = (i * 48271) % rows;
    const SimTime at = sim.Now();
    engine.Submit(req, [&cell, &sim, at](const TxnResult& result) {
      if (result.shed || !result.status.ok()) return;
      ++cell.committed;
      if (sim.Now() - at > kSlo) ++cell.violations;
    });
    double rate = SeasonalRate(t);
    if (t >= kSurgeStart && t < kSurgeEnd) rate *= surge;
    const auto gap = static_cast<SimDuration>(1e6 / rate);
    sim.Schedule(gap < 1 ? 1 : gap, [self, i]() { (*self)(i + 1); });
  };
  sim.Schedule(0, [self = generate.get()]() { (*self)(0); });

  // Capacity cost: one-second samples of the active node count.
  for (int32_t s = 1; s <= static_cast<int32_t>(kRunSeconds); ++s) {
    sim.ScheduleAt(static_cast<SimTime>(s) * kSecond, [&engine, &cell]() {
      cell.node_seconds += static_cast<double>(engine.active_nodes());
    });
  }

  sim.RunUntil(SecondsToDuration(kRunSeconds));
  if (predictive != nullptr) predictive->Stop();
  if (reactive != nullptr) reactive->Stop();
  sim.RunUntil(SecondsToDuration(kRunSeconds + 20.0));

  cell.moves = static_cast<int64_t>(migrator.history().size());
  if (std::getenv("MISPRED_DEBUG") != nullptr) {
    std::printf("-- mode=%s surge=%.1f\n", ModeName(mode), surge);
    for (const MoveRecord& r : migrator.history()) {
      std::printf("   move %d->%d start=%.1fs end=%.1fs%s%s\n",
                  r.from_nodes, r.to_nodes,
                  static_cast<double>(r.start) / 1e6,
                  static_cast<double>(r.end) / 1e6,
                  r.aborted ? " ABORTED" : "", r.truncated ? " TRUNC" : "");
    }
  }
  if (predictive != nullptr) {
    cell.vetoes = predictive->guard_vetoes();
    cell.repairs = predictive->plan_repairs();
  }
  return cell;
}

}  // namespace

int main(int, char**) {
  bench::PrintBanner(
      "Misprediction",
      "SLA violations and capacity cost vs surge magnitude, by control "
      "mode",
      "hybrid tracks reactive-only's violations under an unforecast "
      "flash crowd while keeping predictive-only's fault-free capacity "
      "savings (DESIGN.md \xC2\xA7" "16)");

  const std::vector<double> surges = {1.0, 1.5, 2.0, 3.0};
  const std::vector<Mode> modes = {Mode::kPredictive, Mode::kReactive,
                                   Mode::kHybrid};
  TableWriter table({"surge", "mode", "committed", "SLA violations",
                     "violation %", "cost (node-s)", "moves", "vetoes",
                     "repairs"});
  std::vector<double> surge_col, mode_col, committed_col, violation_col,
      cost_col;
  // results[surge index][mode index]
  std::vector<std::vector<CellResult>> results;
  for (const double surge : surges) {
    results.emplace_back();
    for (const Mode mode : modes) {
      const CellResult cell = RunCell(mode, surge);
      results.back().push_back(cell);
      const double pct =
          cell.committed > 0
              ? 100.0 * static_cast<double>(cell.violations) /
                    static_cast<double>(cell.committed)
              : 0.0;
      table.AddRow({TableWriter::Fmt(surge, 1), ModeName(mode),
                    TableWriter::Fmt(static_cast<double>(cell.committed), 0),
                    TableWriter::Fmt(static_cast<double>(cell.violations), 0),
                    TableWriter::Fmt(pct, 2),
                    TableWriter::Fmt(cell.node_seconds, 0),
                    TableWriter::Fmt(static_cast<double>(cell.moves), 0),
                    TableWriter::Fmt(static_cast<double>(cell.vetoes), 0),
                    TableWriter::Fmt(static_cast<double>(cell.repairs), 0)});
      surge_col.push_back(surge);
      mode_col.push_back(static_cast<double>(
          static_cast<int>(mode)));
      committed_col.push_back(static_cast<double>(cell.committed));
      violation_col.push_back(static_cast<double>(cell.violations));
      cost_col.push_back(cell.node_seconds);
      const std::string cell_name = std::string("s") +
                                    TableWriter::Fmt(surge, 1) + "_" +
                                    ModeName(mode);
      bench::RecordBenchCase({"sla_violations/" + cell_name,
                              static_cast<double>(cell.violations), "txn",
                              0.0, 0});
      bench::RecordBenchCase(
          {"capacity/" + cell_name, cell.node_seconds, "node-s", 0.0, 0});
    }
  }
  table.Print(std::cout);
  bench::WriteCsv("misprediction.csv",
                  {"surge", "mode", "committed", "sla_violations",
                   "node_seconds"},
                  {surge_col, mode_col, committed_col, violation_col,
                   cost_col});

  // --- Acceptance ---------------------------------------------------------
  int status = 0;
  // Fault-free: the hybrid must keep >= 80% of predictive-only's
  // capacity-cost savings over reactive (the guard never fires, so the
  // two predictive modes should be nearly indistinguishable).
  const double cost_pred = results[0][0].node_seconds;
  const double cost_react = results[0][1].node_seconds;
  const double cost_hybrid = results[0][2].node_seconds;
  const double savings_pred = cost_react - cost_pred;
  const double savings_hybrid = cost_react - cost_hybrid;
  std::printf(
      "\nFault-free capacity savings vs reactive: predictive %.0f "
      "node-s, hybrid %.0f node-s (%.0f%% retained)\n",
      savings_pred, savings_hybrid,
      savings_pred > 0 ? 100.0 * savings_hybrid / savings_pred : 0.0);
  if (savings_pred <= 0) {
    std::fprintf(stderr,
                 "misprediction: predictive-only shows no fault-free "
                 "savings over reactive (%.0f vs %.0f node-s)\n",
                 cost_pred, cost_react);
    status = 1;
  } else if (savings_hybrid < 0.8 * savings_pred) {
    std::fprintf(stderr,
                 "misprediction: hybrid retains only %.0f%% of "
                 "predictive-only's fault-free savings (need >= 80%%)\n",
                 100.0 * savings_hybrid / savings_pred);
    status = 1;
  }
  // Under surge: hybrid within 10% of reactive-only's SLA violations
  // (+25 txn of absolute slack so near-zero cells cannot flake).
  for (size_t i = 1; i < surges.size(); ++i) {
    const int64_t react = results[i][1].violations;
    const int64_t hybrid = results[i][2].violations;
    const double bound =
        static_cast<double>(react) * 1.10 + 25.0;
    std::printf(
        "Surge %.1fx violations: predictive %lld, reactive %lld, "
        "hybrid %lld (bound %.0f)\n",
        surges[i], static_cast<long long>(results[i][0].violations),
        static_cast<long long>(react), static_cast<long long>(hybrid),
        bound);
    if (static_cast<double>(hybrid) > bound) {
      std::fprintf(stderr,
                   "misprediction: surge %.1fx hybrid violations %lld "
                   "exceed reactive-only bound %.0f\n",
                   surges[i], static_cast<long long>(hybrid), bound);
      status = 1;
    }
  }
  return status;
}
