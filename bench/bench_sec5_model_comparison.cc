/// Section 5 (discussion): "under tau = 60 minutes, the MRE for
/// predicting the B2W load is 10.4%, 12.2%, and 12.5% under SPAR, ARMA,
/// and AR, respectively." This bench fits all three models on the same
/// 4-week training window and compares their MRE at tau = 60.

#include <cmath>
#include <cstdio>
#include <iostream>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "common/table_writer.h"
#include "prediction/ar.h"
#include "prediction/spar.h"
#include "workload/b2w_trace.h"

using namespace pstore;

int main(int argc, char** argv) {
  bench::PrintBanner("Section 5",
                     "Model comparison at tau = 60 min on B2W load",
                     "paper: SPAR 10.4%, ARMA 12.2%, AR 12.5%");

  const int32_t train_days =
      static_cast<int32_t>(bench::IntFlag(argc, argv, "train_days", 28));
  const int32_t eval_days =
      static_cast<int32_t>(bench::IntFlag(argc, argv, "eval_days", 4));
  auto trace =
      GenerateB2wTrace(B2wRegularTraffic(train_days + eval_days + 1, 555));
  if (!trace.ok()) {
    std::fprintf(stderr, "%s\n", trace.status().ToString().c_str());
    return 1;
  }
  std::vector<double> train(trace->begin(),
                            trace->begin() + train_days * 1440);

  std::vector<std::unique_ptr<LoadPredictor>> models;
  models.push_back(std::make_unique<SparPredictor>());
  models.push_back(std::make_unique<ArmaPredictor>(30, 10));
  models.push_back(std::make_unique<ArPredictor>(30));

  TableWriter table({"model", "MRE % (tau=60)", "paper reports"});
  const char* paper[] = {"10.4%", "12.2%", "12.5%"};
  const int64_t eval_begin = static_cast<int64_t>(train_days) * 1440;
  const int64_t eval_end =
      static_cast<int64_t>(train_days + eval_days) * 1440;

  std::vector<double> mres;
  int idx = 0;
  for (auto& model : models) {
    // AR/ARMA only need the tau=60 coefficient set, but Fit trains all
    // horizons up to 60; restrict them to tau=60 by fitting horizon 60.
    Status fitted = model->Fit(train, 60);
    if (!fitted.ok()) {
      std::fprintf(stderr, "%s fit failed: %s\n", model->name().c_str(),
                   fitted.ToString().c_str());
      return 1;
    }
    double total = 0;
    int64_t n = 0;
    for (int64_t t = eval_begin; t + 60 < eval_end; t += 11) {
      auto p = model->ForecastAt(*trace, t, 60);
      if (!p.ok()) continue;
      const double a = (*trace)[static_cast<size_t>(t + 60)];
      if (a <= 0) continue;
      total += std::fabs(*p - a) / a;
      ++n;
    }
    const double mre = 100.0 * total / static_cast<double>(n);
    mres.push_back(mre);
    table.AddRow({model->name(), TableWriter::Fmt(mre, 2), paper[idx++]});
  }
  table.Print(std::cout);
  std::cout << "Expected shape: SPAR <= ARMA <= AR (SPAR's periodic terms "
               "capture the diurnal pattern the pure AR models miss).\n";
  if (mres.size() == 3 && mres[0] <= mres[1] + 0.5 &&
      mres[0] <= mres[2] + 0.5) {
    std::cout << "SHAPE OK: SPAR is the most accurate model.\n";
  } else {
    std::cout << "SHAPE WARNING: ordering differs from the paper.\n";
  }
  return 0;
}
