/// Figure 1: "Load on one of B2W's databases over three days. Load peaks
/// during daytime hours and dips at night." Regenerated from the
/// synthetic B2W trace (see DESIGN.md for the substitution): prints the
/// three-day per-minute series and checks the headline ~10x peak/trough
/// ratio.

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "common/table_writer.h"
#include "workload/b2w_trace.h"

using namespace pstore;

int main(int argc, char** argv) {
  bench::PrintBanner(
      "Figure 1", "B2W load over three days (requests/min)",
      "peak load is about 10x the trough; strong diurnal pattern");

  const int64_t start_day = bench::IntFlag(argc, argv, "start_day", 30);
  auto trace = GenerateB2wTrace(
      B2wRegularTraffic(static_cast<int32_t>(start_day) + 3));
  if (!trace.ok()) {
    std::fprintf(stderr, "trace generation failed: %s\n",
                 trace.status().ToString().c_str());
    return 1;
  }

  std::vector<double> window(trace->begin() + start_day * 1440,
                             trace->begin() + (start_day + 3) * 1440);
  bench::PrintSeries("load (requests/min)", window);

  TableWriter table({"day", "trough (rpm)", "peak (rpm)", "peak/trough"});
  for (int d = 0; d < 3; ++d) {
    auto begin = window.begin() + d * 1440;
    const double lo = *std::min_element(begin, begin + 1440);
    const double hi = *std::max_element(begin, begin + 1440);
    table.AddRow({TableWriter::Fmt(int64_t{start_day + d}),
                  TableWriter::Fmt(lo, 0), TableWriter::Fmt(hi, 0),
                  TableWriter::Fmt(hi / lo, 1)});
  }
  table.Print(std::cout);

  std::vector<double> minutes(window.size());
  for (size_t i = 0; i < window.size(); ++i) {
    minutes[i] = static_cast<double>(i);
  }
  bench::WriteCsv("fig01_b2w_load.csv", {"minute", "requests_per_min"},
                  {minutes, window});
  return 0;
}
