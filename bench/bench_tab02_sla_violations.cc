/// Table 2: "Comparison of elasticity approaches in terms of number of
/// SLA violations for 50th, 95th and 99th percentile latency, and
/// average machines allocated." A violation is a second in which the
/// percentile exceeds 500 ms. Paper values (3-day runs):
///   Static-10: 0 / 13 / 25,  10.00 machines
///   Static-4:  0 / 157 / 249, 4.00 machines
///   Reactive:  35 / 220 / 327, 4.02 machines
///   P-Store:   0 / 37 / 92,   5.05 machines

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/table_writer.h"
#include "core/experiment.h"

using namespace pstore;

int main(int argc, char** argv) {
  bench::PrintBanner(
      "Table 2", "SLA violations (>500 ms) and machines allocated",
      "P-Store: ~1/3 the reactive violations at ~50% of peak cost");

  struct RunSpec {
    ElasticityStrategy strategy;
    int32_t static_nodes;
    const char* label;
  };
  const RunSpec specs[] = {
      {ElasticityStrategy::kStatic, 10, "Static allocation, 10 servers"},
      {ElasticityStrategy::kStatic, 4, "Static allocation, 4 servers"},
      {ElasticityStrategy::kReactive, 10, "Reactive provisioning"},
      {ElasticityStrategy::kPStoreSpar, 10, "P-Store"},
  };
  const int32_t days =
      static_cast<int32_t>(bench::IntFlag(argc, argv, "days", 1));

  TableWriter table({"Elasticity approach", "p50 viol.", "p95 viol.",
                     "p99 viol.", "avg machines"});
  int64_t reactive_p99 = -1, pstore_p99 = -1;
  double static10_avg = 0, pstore_avg = 0;
  for (const RunSpec& spec : specs) {
    ExperimentConfig config;
    config.strategy = spec.strategy;
    config.static_nodes = spec.static_nodes;
    config.replay_days = days;
    config.trace = B2wRegularTraffic(config.train_days + days + 1, 20160715);
    auto result = RunElasticityExperiment(config);
    if (!result.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", spec.label,
                   result.status().ToString().c_str());
      return 1;
    }
    table.AddRow({spec.label, TableWriter::Fmt(result->violations_p50),
                  TableWriter::Fmt(result->violations_p95),
                  TableWriter::Fmt(result->violations_p99),
                  TableWriter::Fmt(result->avg_machines, 2)});
    if (spec.strategy == ElasticityStrategy::kReactive) {
      reactive_p99 = result->violations_p99;
    }
    if (spec.strategy == ElasticityStrategy::kPStoreSpar) {
      pstore_p99 = result->violations_p99;
      pstore_avg = result->avg_machines;
    }
    if (spec.strategy == ElasticityStrategy::kStatic &&
        spec.static_nodes == 10) {
      static10_avg = result->avg_machines;
    }
  }
  table.Print(std::cout);

  std::cout << "\nShape checks vs the paper:\n";
  if (pstore_p99 >= 0 && reactive_p99 > 0) {
    std::printf(
        "  P-Store p99 violations = %.0f%% of reactive (paper: ~28%%)\n",
        100.0 * static_cast<double>(pstore_p99) /
            static_cast<double>(reactive_p99));
  }
  if (static10_avg > 0) {
    std::printf(
        "  P-Store used %.0f%% of peak provisioning's machines (paper: "
        "~50%%)\n",
        100.0 * pstore_avg / static10_avg);
  }
  return 0;
}
