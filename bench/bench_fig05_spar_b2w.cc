/// Figure 5: "Evaluation of SPAR's predictions for B2W."
///  (a) actual vs 60-minute-ahead SPAR predictions over a 24-hour
///      period outside the training set;
///  (b) mean relative error vs forecasting period tau (10..60 min).
/// Paper settings: T = 1440 slots/day, n = 7 previous periods (one
/// week), m = 30 recent minutes; 4 weeks of training data; the paper
/// reports MRE ~6-10% over this tau range, 10.4% at tau = 60.

#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "common/table_writer.h"
#include "prediction/predictor.h"
#include "prediction/spar.h"
#include "workload/b2w_trace.h"

using namespace pstore;

int main(int argc, char** argv) {
  bench::PrintBanner("Figure 5", "SPAR predictions for the B2W load",
                     "(a) tau=60 min predictions over 24 h; (b) MRE vs tau; "
                     "paper: ~10.4% MRE at tau=60");

  const int32_t train_days =
      static_cast<int32_t>(bench::IntFlag(argc, argv, "train_days", 28));
  const int32_t eval_days =
      static_cast<int32_t>(bench::IntFlag(argc, argv, "eval_days", 5));
  auto trace = GenerateB2wTrace(
      B2wRegularTraffic(train_days + eval_days + 2, 20160701));
  if (!trace.ok()) {
    std::fprintf(stderr, "%s\n", trace.status().ToString().c_str());
    return 1;
  }

  SparConfig config;  // paper defaults: T=1440, n=7, m=30
  SparPredictor predictor(config);
  std::vector<double> train(trace->begin(),
                            trace->begin() + train_days * 1440);
  Status fitted = predictor.Fit(train, 60);
  if (!fitted.ok()) {
    std::fprintf(stderr, "fit failed: %s\n", fitted.ToString().c_str());
    return 1;
  }

  // (a) 24-hour actual vs predicted at tau = 60.
  std::vector<double> actual, predicted, minute_axis;
  const int64_t day_start = static_cast<int64_t>(train_days + 1) * 1440;
  for (int64_t t = day_start; t < day_start + 1440; t += 2) {
    auto p = predictor.ForecastAt(*trace, t - 60, 60);
    if (!p.ok()) continue;
    minute_axis.push_back(static_cast<double>(t - day_start));
    actual.push_back((*trace)[static_cast<size_t>(t)]);
    predicted.push_back(*p);
  }
  std::cout << "\n(a) 60-minute-ahead predictions over 24 h:\n";
  bench::PrintSeries("actual load (rpm)", actual);
  bench::PrintSeries("SPAR prediction", predicted);
  bench::WriteCsv("fig05a_spar_b2w_day.csv",
                  {"minute", "actual", "predicted"},
                  {minute_axis, actual, predicted});

  // (b) MRE vs tau.
  std::cout << "\n(b) prediction accuracy vs forecasting period:\n";
  TableWriter table({"tau (min)", "MRE %"});
  std::vector<double> taus, mres;
  const int64_t eval_begin = static_cast<int64_t>(train_days) * 1440;
  const int64_t eval_end =
      static_cast<int64_t>(train_days + eval_days) * 1440;
  for (int32_t tau = 10; tau <= 60; tau += 10) {
    double total = 0;
    int64_t n = 0;
    for (int64_t t = eval_begin; t + tau < eval_end; t += 7) {
      auto p = predictor.ForecastAt(*trace, t, tau);
      if (!p.ok()) continue;
      const double a = (*trace)[static_cast<size_t>(t + tau)];
      if (a <= 0) continue;
      total += std::fabs(*p - a) / a;
      ++n;
    }
    const double mre = 100.0 * total / static_cast<double>(n);
    table.AddRow({TableWriter::Fmt(int64_t{tau}), TableWriter::Fmt(mre, 2)});
    taus.push_back(tau);
    mres.push_back(mre);
  }
  table.Print(std::cout);
  bench::WriteCsv("fig05b_spar_b2w_mre.csv", {"tau_min", "mre_pct"},
                  {taus, mres});
  std::cout << "Expected shape: MRE grows gracefully with tau and stays "
               "around ~10% at tau=60 (paper: 10.4%).\n";
  return 0;
}
