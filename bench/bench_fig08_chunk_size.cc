/// Figure 8: "50th and 99th percentile latencies when reconfiguring with
/// different chunk sizes compared to a static system. Total throughput
/// varies so per-machine throughput is fixed at Q-hat." We run a 1 -> 2
/// scale-out while the source node serves Q-hat = 350 txn/s, sweeping
/// the migration chunk size; bigger chunks finish faster but produce
/// long executor bursts and thus p99 spikes.

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "common/table_writer.h"
#include "migration/migration_executor.h"
#include "sim/simulator.h"
#include "workload/b2w_client.h"

using namespace pstore;

namespace {

struct ChunkResult {
  std::string label;
  double reconfig_seconds = 0;
  int64_t p50_us = 0;
  int64_t p99_us = 0;
  int64_t max_us = 0;
};

ChunkResult RunOne(double chunk_kb, bool migrate, double max_seconds) {
  Simulator sim;
  Catalog catalog;
  auto tables = RegisterB2wTables(&catalog);
  ProcedureRegistry registry;
  auto procs = RegisterB2wProcedures(&registry, *tables);

  EngineConfig engine_config;
  engine_config.max_nodes = 2;
  engine_config.initial_nodes = 1;
  ClusterEngine engine(&sim, catalog, registry, engine_config);

  MigrationOptions migration;  // paper: R = 244 kB/s, 1106 MB database
  migration.chunk_kb = chunk_kb;
  // Rate scales with chunk size in the paper's Figure 8 experiments
  // (chunks are spaced >= ~100 ms): larger chunks -> faster overall.
  migration.rate_kbps = 244.0 * chunk_kb / 1000.0;

  // "Total throughput varies so per-machine throughput is fixed at
  // Q-hat": as the move progresses, offered load tracks the effective
  // capacity so the source machine stays pinned at Q-hat = 350 txn/s.
  const double move_start_s = 10.0;
  const double streams = 6.0;  // P * min(1, 1) partition pairs
  const double expected_move_s =
      migration.db_size_mb * 1024.0 / 2.0 / streams / migration.rate_kbps;
  const double seconds =
      migrate ? std::min(max_seconds, move_start_s + expected_move_s + 60.0)
              : std::min(max_seconds, 300.0);
  std::vector<double> staircase;
  for (double t = 0; t < seconds; t += 10.0) {
    double fraction_moved = 0.0;
    if (migrate && t > move_start_s) {
      fraction_moved = std::min(1.0, (t - move_start_s) / expected_move_s);
    }
    staircase.push_back(350.0 / (1.0 - 0.5 * fraction_moved));
  }

  B2wClientConfig client_config;
  client_config.speedup = 6.0;  // 10 s slots
  client_config.absolute_scale = 1.0;
  client_config.initial_carts = 10000;
  client_config.initial_checkouts = 4000;
  client_config.initial_stock = 2000;
  B2wClient client(&engine, *tables, *procs, staircase, client_config);
  Status loaded = client.PreloadData();
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.ToString().c_str());
    return {};
  }

  MigrationExecutor migrator(&engine, migration);

  client.Start(0, static_cast<int64_t>(staircase.size()));
  ChunkResult result;
  if (migrate) {
    sim.Schedule(SecondsToDuration(move_start_s), [&]() {
      Status st = migrator.StartMove(2, nullptr);
      (void)st;
    });
  }
  sim.RunUntil(SecondsToDuration(seconds));
  engine.mutable_latencies().Flush(sim.Now());

  if (migrate && !migrator.history().empty() &&
      migrator.history()[0].end > 0) {
    result.reconfig_seconds = DurationToSeconds(
        migrator.history()[0].end - migrator.history()[0].start);
  }
  result.p50_us = engine.latency_histogram().Percentile(50);
  result.p99_us = engine.latency_histogram().Percentile(99);
  result.max_us = engine.latency_histogram().max();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bench::PrintBanner(
      "Figure 8", "Latency vs migration chunk size at Q-hat load",
      "1000 kB chunks barely hurt p99; 8000 kB chunks spike latency");

  const double seconds = bench::DoubleFlag(argc, argv, "max_seconds", 500.0);
  TableWriter table({"configuration", "reconfig time (s)", "p50 (ms)",
                     "p99 (ms)", "max (ms)"});

  ChunkResult still = RunOne(1000, /*migrate=*/false, seconds);
  table.AddRow({"Static (no move)", "-",
                TableWriter::Fmt(still.p50_us / 1000.0, 1),
                TableWriter::Fmt(still.p99_us / 1000.0, 1),
                TableWriter::Fmt(still.max_us / 1000.0, 1)});

  for (double chunk : {1000.0, 2000.0, 4000.0, 6000.0, 8000.0}) {
    ChunkResult r = RunOne(chunk, /*migrate=*/true, seconds);
    char label[32];
    std::snprintf(label, sizeof(label), "%.0f kB chunks", chunk);
    table.AddRow({label, TableWriter::Fmt(r.reconfig_seconds, 1),
                  TableWriter::Fmt(r.p50_us / 1000.0, 1),
                  TableWriter::Fmt(r.p99_us / 1000.0, 1),
                  TableWriter::Fmt(r.max_us / 1000.0, 1)});
  }
  table.Print(std::cout);
  std::cout << "Expected shape: p50 is stable everywhere; p99/max grow "
               "with chunk size while reconfiguration time shrinks — the "
               "trade-off that led the paper to pick 1000 kB (and hence "
               "R = 244 kB/s, D = 77 min).\n";
  return 0;
}
