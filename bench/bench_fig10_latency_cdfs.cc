/// Figure 10: "Comparison of elasticity approaches in terms of the top
/// 1% of 50th, 95th and 99th percentile latencies" — CDFs of the worst
/// per-second percentile windows from the Figure 9 runs. Higher/left
/// curves are better; the reactive approach is worst in all three.

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "common/table_writer.h"
#include "core/experiment.h"

using namespace pstore;

namespace {

/// Top-1% values of one percentile across all windows, ascending.
std::vector<double> TopOnePercent(
    const std::vector<WindowedPercentiles::Window>& windows, int which) {
  std::vector<double> values;
  for (const auto& w : windows) {
    if (w.count == 0) continue;
    const int64_t v = which == 50 ? w.p50 : which == 95 ? w.p95 : w.p99;
    values.push_back(static_cast<double>(v) / 1000.0);  // ms
  }
  std::sort(values.begin(), values.end());
  const size_t keep = std::max<size_t>(10, values.size() / 100);
  if (values.size() > keep) {
    values.erase(values.begin(),
                 values.end() - static_cast<ptrdiff_t>(keep));
  }
  return values;
}

double Quantile(const std::vector<double>& ascending, double q) {
  if (ascending.empty()) return 0;
  const size_t idx = static_cast<size_t>(
      q * static_cast<double>(ascending.size() - 1));
  return ascending[idx];
}

}  // namespace

int main(int argc, char** argv) {
  bench::PrintBanner(
      "Figure 10",
      "CDFs of the top 1% of per-second p50/p95/p99 latencies",
      "reactive worst everywhere; static-4 bad at the tails; static-10 "
      "best; P-Store close behind static-10");

  struct RunSpec {
    ElasticityStrategy strategy;
    int32_t static_nodes;
    const char* label;
  };
  const RunSpec specs[] = {
      {ElasticityStrategy::kPStoreSpar, 10, "P-Store"},
      {ElasticityStrategy::kReactive, 10, "Reactive"},
      {ElasticityStrategy::kStatic, 10, "Static-10"},
      {ElasticityStrategy::kStatic, 4, "Static-4"},
  };

  const int32_t days =
      static_cast<int32_t>(bench::IntFlag(argc, argv, "days", 1));

  std::vector<std::vector<WindowedPercentiles::Window>> all_windows;
  for (const RunSpec& spec : specs) {
    ExperimentConfig config;
    config.strategy = spec.strategy;
    config.static_nodes = spec.static_nodes;
    config.replay_days = days;
    config.trace = B2wRegularTraffic(config.train_days + days + 1, 20160715);
    auto result = RunElasticityExperiment(config);
    if (!result.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", spec.label,
                   result.status().ToString().c_str());
      return 1;
    }
    all_windows.push_back(result->latency_windows);
    std::printf("ran %-10s (%zu per-second windows)\n", spec.label,
                result->latency_windows.size());
  }

  for (int which : {50, 95, 99}) {
    std::printf("\n--- top 1%% of per-second p%d latencies (ms) ---\n",
                which);
    TableWriter table({"approach", "cdf 25%", "cdf 50%", "cdf 75%",
                       "cdf 95%", "worst"});
    std::vector<std::string> names;
    std::vector<std::vector<double>> columns;
    for (size_t i = 0; i < all_windows.size(); ++i) {
      const auto top = TopOnePercent(all_windows[i], which);
      table.AddRow({specs[i].label, TableWriter::Fmt(Quantile(top, 0.25), 1),
                    TableWriter::Fmt(Quantile(top, 0.5), 1),
                    TableWriter::Fmt(Quantile(top, 0.75), 1),
                    TableWriter::Fmt(Quantile(top, 0.95), 1),
                    TableWriter::Fmt(Quantile(top, 1.0), 1)});
      names.push_back(specs[i].label);
      columns.push_back(top);
    }
    table.Print(std::cout);
    char file[64];
    std::snprintf(file, sizeof(file), "fig10_top1pct_p%d.csv", which);
    bench::WriteCsv(file, names, columns);
  }
  std::cout << "\nExpected shape: Reactive has the heaviest tail in all "
               "three panels; Static-4 beats P-Store at p50 but loses "
               "badly at p95/p99; Static-10 is best overall.\n";
  return 0;
}
